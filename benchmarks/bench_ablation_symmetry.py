"""Ablation A2: network-transformations symmetry pruning on vs off.

§3.3.1 Step 3 discards neighbour plans that are symmetric to the current
plan before paying for an assessment. This bench runs the same search
budget with pruning enabled and disabled and reports how many *distinct*
plans each mode managed to consider, plus the per-check cost of the
signature computation itself.

Expected shape: with pruning on, a meaningful fraction of generated
neighbours is discarded for free (the paper's 438-plans-in-30 s figure
"includes the ones quickly discarded ... due to network symmetry"), so
more of the budget goes into genuinely new plans.
"""

import time

from repro.app.structure import ApplicationStructure
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.core.search import DeploymentSearch, SearchSpec
from repro.core.transforms import SymmetryChecker

from common import ResultTable, bench_scales, inventory, topology
from repro.core.api import AssessmentConfig

BUDGET_SECONDS = 6.0


def _experiment_symmetry_pruning_effect():
    scale = bench_scales()[0]
    structure = ApplicationStructure.k_of_n(4, 5)
    table = ResultTable(
        "ablation_symmetry",
        f"{'pruning':<9} {'iterations':>11} {'assessed':>9} {'skipped':>8} "
        f"{'skip_rate':>10}",
    )
    outcomes = {}
    for use_symmetry in (True, False):
        assessor = ReliabilityAssessor(topology(scale), inventory(scale), config=AssessmentConfig(rounds=8_000, rng=3))
        search = DeploymentSearch(assessor, use_symmetry=use_symmetry, rng=7)
        result = search.search(SearchSpec(structure, max_seconds=BUDGET_SECONDS))
        skip_rate = result.plans_skipped_symmetric / max(result.plans_considered, 1)
        outcomes[use_symmetry] = result
        table.row(
            f"{str(use_symmetry):<9} {result.iterations:>11} "
            f"{result.plans_assessed:>9} {result.plans_skipped_symmetric:>8} "
            f"{skip_rate:>9.1%}"
        )
    table.save()
    # Shape: pruning actually fires, and never fires when disabled.
    assert outcomes[True].plans_skipped_symmetric > 0
    assert outcomes[False].plans_skipped_symmetric == 0


def test_signature_cost(benchmark):
    """A symmetry check must be much cheaper than an assessment."""
    scale = bench_scales()[0]
    topo = topology(scale)
    structure = ApplicationStructure.k_of_n(4, 5)
    checker = SymmetryChecker(topo, inventory(scale))
    plan = DeploymentPlan.random(topo, structure, rng=5)
    neighbor = plan.random_neighbor(topo, rng=6)
    benchmark(lambda: checker.equivalent(plan, neighbor))

    assessor = ReliabilityAssessor(topo, inventory(scale), config=AssessmentConfig(rounds=10_000, rng=3))
    start = time.perf_counter()
    assessor.assess(plan, structure)
    assess_time = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(10):
        checker.equivalent(plan, neighbor)
    check_time = (time.perf_counter() - start) / 10
    assert check_time < assess_time

def test_symmetry_pruning_effect(benchmark):
    """One-shot benchmarked run of the experiment above."""
    benchmark.pedantic(_experiment_symmetry_pruning_effect, iterations=1, rounds=1)
