"""Table 2: the four fat-tree data centers with external connectivity.

Regenerates the paper's Table 2 — per scale: ports per switch, core /
aggregation / edge / border switch counts, hosts, power supplies — and
times topology construction (not part of the paper's table, but the
substrate cost every other experiment pays once).
"""

import pytest

from repro.topology.presets import PAPER_SCALES, paper_topology

from common import ResultTable, bench_scales, inventory, topology


def _experiment_table2_counts_match_paper():
    table = ResultTable(
        "table2_topologies",
        f"{'scale':<8} {'k':>4} {'cores':>6} {'aggs':>6} {'edges':>6} "
        f"{'borders':>8} {'hosts':>7} {'power':>6} {'links':>7}",
    )
    for scale in bench_scales():
        spec = PAPER_SCALES[scale]
        summary = topology(scale).summarize()
        model = inventory(scale)
        assert summary.core_switches == spec.core_switches
        assert summary.aggregation_switches == spec.aggregation_switches
        assert summary.edge_switches == spec.edge_switches
        assert summary.border_switches == spec.border_switches
        assert summary.hosts == spec.hosts
        assert model.dependency_count() == spec.power_supplies
        table.row(
            f"{scale:<8} {spec.k:>4} {summary.core_switches:>6} "
            f"{summary.aggregation_switches:>6} {summary.edge_switches:>6} "
            f"{summary.border_switches:>8} {summary.hosts:>7} "
            f"{model.dependency_count():>6} {summary.links:>7}"
        )
    table.save()


@pytest.mark.parametrize("scale", bench_scales())
def test_topology_construction_time(benchmark, scale):
    spec = PAPER_SCALES[scale]
    result = benchmark.pedantic(
        lambda: paper_topology(scale, seed=99), iterations=1, rounds=2
    )
    assert result.summarize().hosts == spec.hosts

def test_table2_counts_match_paper(benchmark):
    """One-shot benchmarked run of the experiment above."""
    benchmark.pedantic(_experiment_table2_counts_match_paper, iterations=1, rounds=1)
