"""Benchmark-session configuration.

Run with ``pytest benchmarks/ --benchmark-only``. The experiment tables
are printed live (see ``-s``) and always written to
``benchmarks/results/`` regardless of capture settings.
"""

import sys
import pathlib

# Allow `import common` from bench modules when pytest is run at repo root.
sys.path.insert(0, str(pathlib.Path(__file__).parent))
