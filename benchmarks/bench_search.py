"""Batch-first search loop vs the pre-batch interpreted loop.

Reconstructs the pre-PR annealing hot loop — per-move ``random_neighbor``,
the *uncached* :meth:`SymmetryChecker.equivalent` screen and one
interpreted assessment per surviving neighbour — and races it against the
batch-first :class:`DeploymentSearch` (move descriptors, the move-keyed
:class:`BatchSymmetryFilter`, one shared-CRN ``score_plans`` call per
temperature step, compiled kernel on). Both runs share one seed and one
deterministic tick clock, so the B=1 trajectory must be *bit-identical*:
every trace record (temperature, candidate score, acceptance decision,
best-so-far) is compared tuple-for-tuple before any timing is trusted.

Two workloads:

* ``tiny_loop`` — the Table-2 tiny preset; gates trajectory equality and
  the >= 2x wall-clock speedup of the batch-first stack;
* ``large_walk`` — the k=48 search-benchmark preset (~27k hosts,
  :func:`~repro.topology.presets.search_benchmark_topology`) running a
  fixed move budget under the move-budget temperature schedule; gates
  that the full budget completes inside a wall-clock budget.

Results land in ``BENCH_search.json`` at the repo root.

Usage::

    python benchmarks/bench_search.py            # full comparison
    python benchmarks/bench_search.py --smoke    # CI gate: trajectory
        equality, >= 2x tiny speedup, k=48 budget completion

Also runnable under pytest (``pytest benchmarks/bench_search.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

if __name__ == "__main__":  # standalone: make src/ importable without install
    _ROOT = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(_ROOT / "src"))
    sys.path.insert(0, str(_ROOT / "benchmarks"))

from repro.app.structure import ApplicationStructure
from repro.core.anneal import (
    LinearTemperatureSchedule,
    MoveBudgetTemperatureSchedule,
    accept_neighbor,
)
from repro.core.api import AssessmentConfig
from repro.core.assessment import ReliabilityAssessor
from repro.core.incremental import IncrementalAssessor
from repro.core.objectives import ReliabilityObjective
from repro.core.plan import DeploymentPlan
from repro.core.search import DeploymentSearch, SearchSpec
from repro.core.transforms import SymmetryChecker
from repro.faults.inventory import build_paper_inventory
from repro.topology.presets import (
    SEARCH_BENCHMARK_SCALE,
    paper_topology,
    search_benchmark_topology,
)
from repro.util.rng import make_rng
from repro.util.timing import Deadline

MASTER_SEED = 20170412
SEARCH_SEED = MASTER_SEED  # seeds the annealing RNG of both loops
SMOKE_SPEEDUP_FLOOR = 2.0
#: Wall-clock budget the k=48 fixed-move-budget walk must finish inside
#: (search only; building the 27k-host substrate is reported separately).
LARGE_BUDGET_SECONDS = 240.0

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_PATH = _REPO_ROOT / "BENCH_search.json"


class _TickClock:
    """Deterministic monotonic clock: every read advances a fixed step.

    Both loops read their clock in the same sequence (one ``Deadline``
    construction, then one read per iteration), so with one of these per
    run the two trajectories see identical elapsed times — temperatures
    match bit-for-bit and timing noise cannot fake a divergence.
    """

    def __init__(self, step: float = 1e-4):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def _substrate(scale: str):
    topology = paper_topology(scale, seed=1)
    inventory = build_paper_inventory(topology, seed=2)
    return topology, inventory


def _meets(spec: SearchSpec, assessment, measure: float) -> bool:
    if assessment.score < spec.desired_reliability:
        return False
    if spec.desired_measure is not None and measure < spec.desired_measure:
        return False
    return True


def _legacy_search(
    topology, inventory, spec: SearchSpec, config: AssessmentConfig,
    search_seed: int, clock,
) -> dict:
    """The pre-batch annealing loop, reconstructed draw-for-draw.

    One ``random_neighbor`` per iteration, the uncached
    ``SymmetryChecker.equivalent`` screen, one interpreted incremental
    assessment per survivor, independent best-so-far confirmations — the
    exact loop shape (and RNG discipline) ``DeploymentSearch._run`` had
    before the batch-first rewrite, against which B=1 trajectories are
    gated bit-identical.
    """
    outer = ReliabilityAssessor.from_config(
        topology, inventory,
        config.with_updates(mode="sequential", master_seed=None),
    )
    objective = ReliabilityObjective()
    symmetry = SymmetryChecker(outer.topology, outer.dependency_model)
    rng = make_rng(search_seed)
    deadline = Deadline(spec.max_seconds, clock=clock)
    schedule = LinearTemperatureSchedule(spec.max_seconds)
    crn_master_seed = int(rng.integers(0, 2**63))
    inner = IncrementalAssessor.from_config(
        outer.topology,
        outer.dependency_model,
        AssessmentConfig(
            rounds=outer.rounds,
            engine=outer.engine,
            master_seed=crn_master_seed,
            sample_full_infrastructure=outer.sample_full_infrastructure,
            kernel=config.kernel,
            mode="incremental",
        ),
    )

    current_plan = DeploymentPlan.random(
        outer.topology, spec.structure, rng=rng,
        forbid_shared_rack=spec.forbid_shared_rack,
    )
    current = inner.assess(current_plan, spec.structure)
    current_measure = objective.measure(current_plan, current)
    best_plan, best = current_plan, outer.assess(current_plan, spec.structure)
    plans_assessed = 2
    iterations = 0
    skipped_symmetric = 0
    trace: list[tuple] = []

    def summary(satisfied: bool) -> dict:
        return {
            "trace": trace,
            "iterations": iterations,
            "plans_assessed": plans_assessed,
            "skipped_symmetric": skipped_symmetric,
            "best_score": best.score,
            "best_hosts": sorted(best_plan.hosts()),
            "satisfied": satisfied,
            "elapsed": deadline.elapsed(),
        }

    if _meets(spec, current, current_measure):
        independent = outer.assess(current_plan, spec.structure)
        if _meets(spec, independent, objective.measure(current_plan, independent)):
            best_plan, best = current_plan, independent
            return summary(True)

    while True:
        elapsed = deadline.elapsed()
        if elapsed >= deadline.budget_seconds:
            break
        if spec.max_iterations is not None and iterations >= spec.max_iterations:
            break
        iterations += 1
        temperature = schedule.temperature(elapsed)

        neighbor_plan = current_plan.random_neighbor(outer.topology, rng=rng)
        if symmetry.equivalent(current_plan, neighbor_plan):
            skipped_symmetric += 1
            trace.append((
                iterations, elapsed, temperature,
                current.score, current.score, best.score, False, True,
            ))
            continue
        neighbor = inner.assess(neighbor_plan, spec.structure)
        plans_assessed += 1
        neighbor_measure = objective.measure(neighbor_plan, neighbor)

        if objective.prefers(neighbor_plan, neighbor, best_plan, best):
            confirmation = outer.assess(neighbor_plan, spec.structure)
            plans_assessed += 1
            if objective.prefers(neighbor_plan, confirmation, best_plan, best):
                best_plan, best = neighbor_plan, confirmation

        delta = objective.delta(current_plan, current, neighbor_plan, neighbor)
        accepted = accept_neighbor(delta, temperature, rng)
        trace.append((
            iterations, elapsed, temperature,
            neighbor.score, current.score, best.score, accepted, False,
        ))
        satisfied_candidate = _meets(spec, neighbor, neighbor_measure)
        if accepted:
            current_plan, current = neighbor_plan, neighbor
            current_measure = neighbor_measure
        if satisfied_candidate:
            independent = outer.assess(neighbor_plan, spec.structure)
            if _meets(
                spec, independent, objective.measure(neighbor_plan, independent)
            ):
                best_plan, best = neighbor_plan, independent
                return summary(True)
    return summary(False)


def _batched_search(
    topology, inventory, spec: SearchSpec, config: AssessmentConfig,
    search_seed: int, clock, batch_size: int = 1,
):
    search = DeploymentSearch.from_config(
        topology,
        inventory,
        config,
        rng=search_seed,
        keep_trace=True,
        clock=clock,
        batch_size=batch_size,
    )
    return search.search(spec)


def _record_tuple(record) -> tuple:
    return (
        record.iteration, record.elapsed_seconds, record.temperature,
        record.candidate_score, record.current_score, record.best_score,
        record.accepted, record.skipped_symmetric,
    )


def _trajectory_mismatches(legacy: dict, result) -> int:
    """Count every observable divergence between the two trajectories."""
    new_rows = [_record_tuple(r) for r in result.trace]
    old_rows = legacy["trace"]
    mismatches = abs(len(new_rows) - len(old_rows))
    mismatches += sum(a != b for a, b in zip(old_rows, new_rows))
    mismatches += legacy["iterations"] != result.iterations
    mismatches += legacy["plans_assessed"] != result.plans_assessed
    mismatches += legacy["skipped_symmetric"] != result.plans_skipped_symmetric
    mismatches += legacy["best_score"] != result.best_assessment.score
    mismatches += legacy["best_hosts"] != sorted(result.best_plan.hosts())
    mismatches += legacy["satisfied"] != result.satisfied
    return int(mismatches)


def bench_tiny_loop(rounds: int, moves: int, repeats: int) -> dict:
    """Trajectory equality and wall-clock speedup on the tiny preset.

    The first pass of each loop doubles as the bit-identity check; timing
    is best-of-``repeats`` fresh runs per loop (every run retraces the
    same deterministic trajectory) so one scheduler hiccup cannot fail
    the gate on a noisy runner.
    """
    topology, inventory = _substrate("tiny")
    structure = ApplicationStructure.k_of_n(2, 3)
    spec = SearchSpec(structure, max_seconds=3_600.0, max_iterations=moves)
    interpreted = AssessmentConfig(mode="incremental", rounds=rounds, rng=5)
    batched = interpreted.with_updates(kernel=True)

    legacy = _legacy_search(
        topology, inventory, spec, interpreted, SEARCH_SEED, _TickClock()
    )
    result = _batched_search(
        topology, inventory, spec, batched, SEARCH_SEED, _TickClock()
    )
    mismatches = _trajectory_mismatches(legacy, result)

    legacy_seconds = batched_seconds = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        _legacy_search(
            topology, inventory, spec, interpreted, SEARCH_SEED, _TickClock()
        )
        legacy_seconds = min(legacy_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        _batched_search(
            topology, inventory, spec, batched, SEARCH_SEED, _TickClock()
        )
        batched_seconds = min(batched_seconds, time.perf_counter() - start)

    return {
        "workload": "tiny_loop",
        "scale": "tiny",
        "rounds": rounds,
        "moves": moves,
        "timing_repeats": max(repeats, 1),
        "iterations": result.iterations,
        "plans_assessed": result.plans_assessed,
        "skipped_symmetric": result.plans_skipped_symmetric,
        "interpreted_seconds": legacy_seconds,
        "batched_seconds": batched_seconds,
        "speedup": legacy_seconds / max(batched_seconds, 1e-12),
        "mismatches": mismatches,
    }


def bench_large_walk(
    move_budget: int,
    rounds: int,
    batch_size: int,
    budget_seconds: float = LARGE_BUDGET_SECONDS,
) -> dict:
    """Fixed move budget on the k=48 preset inside a wall-clock budget.

    Runs the batch-first loop under the move-budget temperature schedule
    (host-speed-independent trajectory) with ``max_seconds`` set to the
    wall-clock budget, so a too-slow run visibly fails to consume its
    move budget instead of silently overrunning.
    """
    start = time.perf_counter()
    topology = search_benchmark_topology(seed=1)
    inventory = build_paper_inventory(topology, seed=2)
    substrate_seconds = time.perf_counter() - start

    # The serial 8-instance structure: reliability stays strictly below
    # R_desired = 1, so satisfaction never short-circuits the move budget
    # and every run consumes exactly ``move_budget`` temperature steps.
    structure = ApplicationStructure.k_of_n(8, 8)
    spec = SearchSpec(
        structure, max_seconds=budget_seconds, max_iterations=move_budget
    )
    config = AssessmentConfig(
        mode="incremental", rounds=rounds, rng=5, kernel=True
    )
    search = DeploymentSearch.from_config(
        topology,
        inventory,
        config,
        rng=SEARCH_SEED,
        batch_size=batch_size,
        temperature_schedule=MoveBudgetTemperatureSchedule(move_budget),
    )
    start = time.perf_counter()
    result = search.search(spec)
    search_seconds = time.perf_counter() - start

    return {
        "workload": "large_walk",
        "scale": SEARCH_BENCHMARK_SCALE,
        "hosts": len(topology.hosts),
        "rounds": rounds,
        "move_budget": move_budget,
        "batch_size": batch_size,
        "iterations": result.iterations,
        "candidates_proposed": result.candidates_proposed,
        "batches_scored": result.batches_scored,
        "plans_assessed": result.plans_assessed,
        "best_score": result.best_assessment.score,
        "substrate_seconds": substrate_seconds,
        "search_seconds": search_seconds,
        "budget_seconds": budget_seconds,
        "within_budget": search_seconds <= budget_seconds,
        "completed_budget": bool(
            result.satisfied or result.iterations >= move_budget
        ),
    }


def _report(row: dict) -> str:
    if row["workload"] == "tiny_loop":
        return (
            f"{row['workload']:<11} {row['scale']:<6} rounds={row['rounds']:<6} "
            f"moves={row['moves']:<4} interpreted={row['interpreted_seconds']:.3f}s "
            f"batched={row['batched_seconds']:.3f}s "
            f"speedup={row['speedup']:.2f}x mismatches={row['mismatches']}"
        )
    return (
        f"{row['workload']:<11} {row['scale']:<6} hosts={row['hosts']} "
        f"moves={row['iterations']}/{row['move_budget']} B={row['batch_size']} "
        f"substrate={row['substrate_seconds']:.1f}s "
        f"search={row['search_seconds']:.1f}s/"
        f"{row['budget_seconds']:.0f}s budget"
    )


def _write_results(rows: list[dict]) -> None:
    payload = {
        "benchmark": "batch-first search loop vs pre-batch interpreted loop",
        "search_seed": SEARCH_SEED,
        "smoke_speedup_floor": SMOKE_SPEEDUP_FLOOR,
        "rows": rows,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")


def run_smoke() -> int:
    """CI gate: trajectory equality, the tiny speedup floor, and the
    k=48 move budget finishing inside its wall-clock budget.

    The speedup assertion compares two in-process timings of identical
    workloads (same machine, same load), so it is robust to slow runners
    even though it is a wall-clock ratio.
    """
    tiny = bench_tiny_loop(rounds=2_000, moves=300, repeats=3)
    print(_report(tiny))
    assert tiny["mismatches"] == 0, (
        "B=1 batch-first trajectory diverged from the pre-batch loop"
    )
    assert tiny["speedup"] >= SMOKE_SPEEDUP_FLOOR, (
        f"search-loop speedup {tiny['speedup']:.2f}x below the "
        f"{SMOKE_SPEEDUP_FLOOR:.0f}x floor on the tiny preset"
    )
    large = bench_large_walk(move_budget=12, rounds=1_000, batch_size=8)
    print(_report(large))
    assert large["within_budget"] and large["completed_budget"], (
        f"k=48 walk consumed {large['iterations']}/{large['move_budget']} "
        f"moves in {large['search_seconds']:.1f}s "
        f"(budget {large['budget_seconds']:.0f}s)"
    )
    _write_results([tiny, large])
    print("smoke OK: bit-identical trajectory, speedup floor and budget met")
    return 0


def run_full(rounds: int, moves: int, move_budget: int, batch_size: int) -> int:
    failed = False
    rows = [
        bench_tiny_loop(rounds=rounds, moves=moves, repeats=5),
        bench_large_walk(
            move_budget=move_budget, rounds=rounds, batch_size=batch_size
        ),
    ]
    for row in rows:
        print(_report(row))
    tiny, large = rows
    if tiny["mismatches"]:
        print(f"  !! {tiny['mismatches']} trajectory mismatches")
        failed = True
    if tiny["speedup"] < SMOKE_SPEEDUP_FLOOR:
        print(
            f"  !! speedup {tiny['speedup']:.2f}x below "
            f"{SMOKE_SPEEDUP_FLOOR:.0f}x"
        )
        failed = True
    if not (large["within_budget"] and large["completed_budget"]):
        print("  !! k=48 walk missed its wall-clock budget")
        failed = True
    _write_results(rows)
    return 1 if failed else 0


def test_search_smoke():
    """Pytest entry point mirroring the CI smoke gate."""
    assert run_smoke() == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate: trajectory equality, 2x tiny speedup, k=48 budget",
    )
    parser.add_argument("--rounds", type=int, default=2_000)
    parser.add_argument("--moves", type=int, default=120)
    parser.add_argument("--move-budget", type=int, default=40)
    parser.add_argument("--batch-size", type=int, default=8)
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    return run_full(
        rounds=args.rounds,
        moves=args.moves,
        move_budget=args.move_budget,
        batch_size=args.batch_size,
    )


if __name__ == "__main__":
    sys.exit(main())
