"""Ablation A3: correlated dependencies on vs off (§3.2.3).

Assesses the *same* plans under three dependency models:

* ``none`` — no dependency information (§3.4's minimal mode): hosts and
  switches fail only by themselves, independently;
* ``paper`` — the evaluation's 5 shared power supplies;
* ``rich`` — redundant power pairs, redundant rack cooling, and shared
  OS/library images (the full Fig. 5 shape).

Expected shape: ignoring dependencies overestimates reliability — the
independent-failure assumption is exactly the blind spot reCloud exists
to close — and the penalty is largest for plans that happen to share
supplies. The second table shows the flip side: with the rich inventory,
the *avoidable* (correlated) failure mass grows relative to the
unavoidable per-host floor, so searching pays off even more than under
the paper inventory (this is where the paper's order-of-magnitude gap
lives; see EXPERIMENTS.md).
"""

from repro.app.structure import ApplicationStructure
from repro.baselines.common_practice import enhanced_common_practice_plan
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.core.search import DeploymentSearch, SearchSpec
from repro.faults.dependencies import DependencyModel
from repro.faults.inventory import build_rich_inventory

from common import ResultTable, bench_scales, inventory, topology, workload
from repro.core.api import AssessmentConfig

ROUNDS = 40_000
STRUCTURE = ApplicationStructure.k_of_n(4, 5)


def _models(scale):
    topo = topology(scale)
    return {
        "none": DependencyModel.empty(topo),
        "paper": inventory(scale),
        "rich": build_rich_inventory(topo, seed=4),
    }


def _experiment_dependency_model_effect_on_scores():
    scale = bench_scales()[0]
    topo = topology(scale)
    models = _models(scale)
    plans = {
        "random": DeploymentPlan.random(topo, STRUCTURE, rng=11),
        "rack-diverse": DeploymentPlan.random(
            topo, STRUCTURE, rng=12, forbid_shared_rack=True
        ),
    }
    table = ResultTable(
        "ablation_dependencies",
        f"{'plan':<13} " + " ".join(f"{m:>10}" for m in models),
    )
    scores = {}
    for plan_name, plan in plans.items():
        row = []
        for model_name, model in models.items():
            assessor = ReliabilityAssessor(topo, model, config=AssessmentConfig(rounds=ROUNDS, rng=9))
            score = assessor.assess(plan, STRUCTURE).score
            scores[(plan_name, model_name)] = score
            row.append(f"{score:>10.4f}")
        table.row(f"{plan_name:<13} " + " ".join(row))
    table.save()
    # Shape: ignoring dependencies overestimates reliability.
    for plan_name in plans:
        assert (
            scores[(plan_name, "none")] >= scores[(plan_name, "paper")] - 2e-3
        ), plan_name


def _experiment_search_gain_grows_with_dependency_richness():
    """reCloud's win over the enhanced CP, per dependency model."""
    scale = bench_scales()[0]
    topo = topology(scale)
    table = ResultTable(
        "ablation_dependencies_search",
        f"{'model':<7} {'ECP_R':>9} {'reCloud_R':>10} {'odds_ratio':>11}",
    )
    ratios = {}
    for model_name, model in _models(scale).items():
        if model_name == "none":
            continue
        reference = ReliabilityAssessor(topo, model, config=AssessmentConfig(rounds=ROUNDS, rng=99))
        ecp = enhanced_common_practice_plan(topo, workload(scale), model, 5)
        ecp_score = reference.assess(ecp, STRUCTURE).score
        assessor = ReliabilityAssessor(topo, model, config=AssessmentConfig(rounds=8_000, rng=5))
        search = DeploymentSearch(assessor, rng=7)
        result = search.search(SearchSpec(STRUCTURE, max_seconds=8.0))
        found = reference.assess(result.best_plan, STRUCTURE).score
        ratio = (1 - ecp_score) / max(1 - found, 1e-9)
        ratios[model_name] = ratio
        table.row(
            f"{model_name:<7} {ecp_score:>9.4f} {found:>10.4f} {ratio:>10.2f}x"
        )
    table.save()
    assert ratios["paper"] > 1.0
    assert ratios["rich"] > 1.0

def test_dependency_model_effect_on_scores(benchmark):
    """One-shot benchmarked run of the experiment above."""
    benchmark.pedantic(_experiment_dependency_model_effect_on_scores, iterations=1, rounds=1)

def test_search_gain_grows_with_dependency_richness(benchmark):
    """One-shot benchmarked run of the experiment above."""
    benchmark.pedantic(_experiment_search_gain_grows_with_dependency_richness, iterations=1, rounds=1)
