"""Failure-drill campaign benchmark and CI gate.

Two phases, both pure CPU (the drill is a single-threaded deterministic
simulation — no processes, no sleeps, no timing sensitivity):

* **clean campaign** — the fixed-seed campaign the CI gate runs
  (``--rounds 30 --seed 7``) must finish with zero invariant
  violations, and a re-run of one round must be bit-identical
  (reproducibility is the property everything else rests on).
* **seeded bug** — the same campaign with the ``no-journal-fsync`` bug
  injected must fail, shrink the failing schedule to at most
  :data:`SHRUNK_EVENTS_BUDGET` events, and the written reproducer must
  replay to the same verdict twice. This is the self-test that the
  invariant checkers catch real defects, not just pass clean runs.

Results land in ``BENCH_drill.json`` at the repo root; the failing
reproducer (if the bug phase writes one — it should) stays under the
chosen ``--out`` directory so CI can upload it as an artifact.

Usage::

    python benchmarks/bench_drill.py            # 60-round campaign
    python benchmarks/bench_drill.py --smoke    # CI gate: 30 rounds

Also runnable under pytest (``pytest benchmarks/bench_drill.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

if __name__ == "__main__":  # standalone: make src/ importable without install
    _ROOT = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(_ROOT / "src"))
    sys.path.insert(0, str(_ROOT / "benchmarks"))

from repro.drill.engine import replay_reproducer, run_campaign, run_drill
from repro.drill.schedule import FaultSchedule, random_schedule

from common import ResultTable

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_PATH = _REPO_ROOT / "BENCH_drill.json"

#: The fixed-seed campaign CI gates on (mirrors the acceptance command
#: ``repro drill --rounds 30 --seed 7``).
GATE_ROUNDS = 30
GATE_SEED = 7

#: The seeded bug must shrink to at most this many schedule events.
SHRUNK_EVENTS_BUDGET = 5


def _clean_phase(rounds: int, table: ResultTable, failures: list[str]) -> dict:
    start = time.perf_counter()
    report = run_campaign(rounds=rounds, seed=GATE_SEED)
    elapsed = time.perf_counter() - start
    table.row(
        f"{'clean':<8} {report.rounds_run:>7} {report.total_faults:>7} "
        f"{report.total_crashes:>8} {report.total_submissions:>7} "
        f"{elapsed:>8.1f} {'PASS' if report.passed else 'FAIL':>8}"
    )
    if not report.passed:
        failures.append(
            f"clean campaign failed at round {report.failed_round}: "
            + "; ".join(
                f"{v.invariant}: {v.detail}"
                for v in report.failure.violations
            )
        )
    if report.rounds_run != rounds:
        failures.append(
            f"clean campaign ran {report.rounds_run}/{rounds} rounds"
        )

    # Reproducibility gate: one drill re-run from (seed, schedule) alone
    # must be bit-identical, including every counter it reports.
    import random as _random

    schedule = random_schedule(_random.Random(GATE_SEED), max_events=5)
    first = run_drill(GATE_SEED, schedule)
    second = run_drill(GATE_SEED, schedule)
    if first.to_dict() != second.to_dict():
        failures.append("drill re-run from (seed, schedule) diverged")

    return {
        "rounds": report.rounds_run,
        "passed": report.passed,
        "faults_fired": report.total_faults,
        "crashes": report.total_crashes,
        "submissions": report.total_submissions,
        "seconds": elapsed,
    }


def _bug_phase(
    out_dir: str, table: ResultTable, failures: list[str]
) -> dict:
    start = time.perf_counter()
    report = run_campaign(
        rounds=GATE_ROUNDS,
        seed=GATE_SEED,
        bug="no-journal-fsync",
        out_dir=out_dir,
    )
    elapsed = time.perf_counter() - start
    table.row(
        f"{'bug':<8} {report.rounds_run:>7} {report.total_faults:>7} "
        f"{report.total_crashes:>8} {report.total_submissions:>7} "
        f"{elapsed:>8.1f} {'FAIL' if report.passed else 'CAUGHT':>8}"
    )
    if report.passed:
        failures.append(
            "seeded no-journal-fsync bug survived the campaign undetected"
        )
        return {"caught": False, "seconds": elapsed}

    violated = sorted({v.invariant for v in report.failure.violations})
    if report.shrunk_events is None:
        failures.append("failing schedule was not shrunk")
    elif report.shrunk_events > SHRUNK_EVENTS_BUDGET:
        failures.append(
            f"shrunk reproducer has {report.shrunk_events} events, "
            f"budget is {SHRUNK_EVENTS_BUDGET}"
        )
    if report.reproducer_path is None or not os.path.exists(
        report.reproducer_path
    ):
        failures.append("no reproducer file was written")
        return {"caught": True, "seconds": elapsed, "violated": violated}

    first = replay_reproducer(report.reproducer_path)
    second = replay_reproducer(report.reproducer_path)
    if first.passed:
        failures.append("reproducer replay did not reproduce the failure")
    if first.to_dict() != second.to_dict():
        failures.append("two reproducer replays diverged")
    with open(report.reproducer_path, "r", encoding="utf-8") as handle:
        reproducer = json.load(handle)
    return {
        "caught": True,
        "violated": violated,
        "failed_round": report.failed_round,
        "original_events": report.original_events,
        "shrunk_events": report.shrunk_events,
        "shrink_runs": report.shrink_runs,
        "reproducer": report.reproducer_path,
        "reproducer_events": len(reproducer["schedule"]),
        "seconds": elapsed,
    }


def run_bench(smoke: bool = False, out_dir: str | None = None) -> int:
    rounds = GATE_ROUNDS if smoke else int(
        os.environ.get("REPRO_BENCH_DRILL_ROUNDS", 2 * GATE_ROUNDS)
    )
    table = ResultTable(
        "drill_campaign",
        f"{'phase':<8} {'rounds':>7} {'faults':>7} {'crashes':>8} "
        f"{'reqs':>7} {'sec':>8} {'verdict':>8}",
    )
    failures: list[str] = []
    if out_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-bench-drill-")
        out_dir = scratch.name
    else:
        scratch = None
        os.makedirs(out_dir, exist_ok=True)
    try:
        clean = _clean_phase(rounds, table, failures)
        bug = _bug_phase(out_dir, table, failures)
    finally:
        if scratch is not None:
            scratch.cleanup()
    table.save()
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "gate": {"rounds": rounds, "seed": GATE_SEED},
                "clean": clean,
                "bug": bug,
                "failures": failures,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    if failures:
        print("\n".join(f"FAIL: {f}" for f in failures))
        return 1
    print(
        f"drill OK: {clean['rounds']} clean round(s) "
        f"({clean['faults_fired']} faults, {clean['crashes']} crashes), "
        f"seeded bug caught and shrunk to {bug['shrunk_events']} event(s)"
    )
    return 0


def test_drill_smoke():
    """Pytest entry point mirroring the standalone smoke gate."""
    assert run_bench(smoke=True) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: the fixed 30-round gate campaign",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory for the seeded-bug reproducer (default: temp dir)",
    )
    args = parser.parse_args(argv)
    return run_bench(smoke=args.smoke, out_dir=args.out)


if __name__ == "__main__":
    sys.exit(main())
