"""Multi-zone correlated outages and warm-start incumbent re-search.

Two gates for the zone-aware robustness stack:

* ``zone_outage_exact`` — an *exact* (no sampling) small-case check of
  the correlated-failure semantics: on a two-zone data center, every
  fault tree is evaluated deterministically with zone0's shared roots
  (power feed, cooling plant, control plane) failed. A zone0-pinned plan
  must be dead — the zone takes all of its instances with it — while a
  plan honouring the ``min_outside_primary`` constraint must survive via
  its out-of-zone replica. This pins the reason the zone constraints
  exist to ground truth rather than a Monte Carlo estimate.
* ``incumbent_research`` — the redeployment controller's warm start:
  after a zone outage degrades the incumbent, re-searching *from the
  incumbent* with a small move budget must match the quality of a
  from-scratch search given several times the budget, at >= 2x less
  wall clock. Seeds are fixed, so the scores are reproducible; only the
  timing ratio varies between runs.

Results land in ``BENCH_zones.json`` at the repo root.

Usage::

    python benchmarks/bench_zones.py            # full run
    python benchmarks/bench_zones.py --smoke    # CI gate

Also runnable under pytest (``pytest benchmarks/bench_zones.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

if __name__ == "__main__":  # standalone: make src/ importable without install
    _ROOT = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(_ROOT / "src"))

import numpy as np

from repro.app.structure import ApplicationStructure
from repro.core.anneal import MoveBudgetTemperatureSchedule
from repro.core.api import AssessmentConfig
from repro.core.evaluation import StructureEvaluator
from repro.core.plan import DeploymentPlan, ZoneConstraints
from repro.core.search import DeploymentSearch, SearchSpec
from repro.faults.component import ComponentType
from repro.faults.inventory import build_zone_inventory, zone_shared_root_ids
from repro.routing import engine_for
from repro.routing.base import RoundStates
from repro.runtime.chaos import ZoneOutage
from repro.topology.zones import MultiZoneTopology

MASTER_SEED = 20170412
SMOKE_SPEEDUP_FLOOR = 2.0
#: Warm-start quality slack: the incumbent re-search may trail the
#: from-scratch search by at most this much reliability (seeds are fixed,
#: so in practice the scores are constants; the slack absorbs future
#: re-seeding, not run-to-run noise).
QUALITY_EPSILON = 0.01

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_PATH = _REPO_ROOT / "BENCH_zones.json"


def _substrate(zones: int = 2, k: int = 4):
    topology = MultiZoneTopology(zones=zones, k=k, seed=1)
    inventory = build_zone_inventory(topology, seed=2)
    return topology, inventory


# ----------------------------------------------------------------------
# Workload 1: exact correlated-outage check
# ----------------------------------------------------------------------


def _exact_outage_states(topology, inventory, zone: str) -> RoundStates:
    """One deterministic round with ``zone``'s shared roots failed.

    Every graph element's fault tree is evaluated exactly (no sampling):
    the zone's roots are the only failed basic events, so an element is
    effectively down iff its tree reaches a root through the attached
    OR branch — the correlated blast radius, derived from the trees
    themselves rather than asserted.
    """
    outage = set(zone_shared_root_ids(inventory, zone))
    failed = {}
    for component_id, component in topology.components.items():
        if component.component_type is ComponentType.LINK:
            continue
        down = inventory.tree_for(component_id).evaluate_round(outage)
        failed[component_id] = np.array([down])
    return RoundStates(rounds=1, failed=failed)


def bench_zone_outage_exact() -> dict:
    topology, inventory = _substrate()
    structure = ApplicationStructure.k_of_n(1, 3)
    zone0 = topology.hosts_in_zone("zone0")
    zone1 = topology.hosts_in_zone("zone1")
    pinned = DeploymentPlan.from_mapping({"app": zone0[:3]})
    spread = DeploymentPlan.from_mapping({"app": [zone0[0], zone0[7], zone1[0]]})
    constraints = ZoneConstraints.from_mapping(
        primary_zone="zone0", min_outside_primary=1
    )

    states = _exact_outage_states(topology, inventory, "zone0")
    evaluator = StructureEvaluator(engine_for(topology))
    pinned_alive = bool(evaluator.evaluate(states, pinned, structure)[0])
    spread_alive = bool(evaluator.evaluate(states, spread, structure)[0])
    blast_radius = int(
        sum(bool(vector[0]) for vector in states.failed.values())
    )

    return {
        "workload": "zone_outage_exact",
        "zones": 2,
        "fabric_k": 4,
        "failed_elements": blast_radius,
        "zone_elements": len(topology.zone_elements("zone0")),
        "pinned_satisfies_constraints": constraints.satisfied_by(
            pinned, topology
        ),
        "spread_satisfies_constraints": constraints.satisfied_by(
            spread, topology
        ),
        "pinned_survives": pinned_alive,
        "spread_survives": spread_alive,
    }


# ----------------------------------------------------------------------
# Workload 2: warm-start incumbent re-search vs from-scratch
# ----------------------------------------------------------------------


def _zone_search(topology, inventory, rounds, search_seed, move_budget):
    return DeploymentSearch.from_config(
        topology,
        inventory,
        AssessmentConfig(rounds=rounds, rng=MASTER_SEED),
        rng=search_seed,
        temperature_schedule=MoveBudgetTemperatureSchedule(move_budget),
    )


def bench_incumbent_research(
    rounds: int = 2_000,
    scratch_budget: int = 60,
    incumbent_budget: int = 12,
) -> dict:
    """Race a warm-start re-search against a from-scratch search.

    Both run under the same degraded substrate (zone0 down). The
    from-scratch search gets ``scratch_budget`` annealing moves from a
    random initial plan; the incumbent re-search gets
    ``incumbent_budget`` moves from the pre-outage incumbent — the
    controller's exact situation after a degradation event.
    """
    topology, inventory = _substrate()
    structure = ApplicationStructure.k_of_n(2, 3)
    constraints = ZoneConstraints.from_mapping(
        primary_zone="zone0", min_outside_primary=1
    )

    def spec(budget: int) -> SearchSpec:
        return SearchSpec(
            structure,
            desired_reliability=1.0,
            max_seconds=3_600.0,
            max_iterations=budget,
            zone_constraints=constraints,
        )

    # The incumbent comes from a healthy-substrate search (untimed): the
    # deployment that was optimal before the disaster.
    incumbent = (
        _zone_search(topology, inventory, rounds, MASTER_SEED + 1, 40)
        .search(spec(40))
        .best_plan
    )

    with ZoneOutage(inventory, "zone0"):
        scratch_search = _zone_search(
            topology, inventory, rounds, MASTER_SEED + 2, scratch_budget
        )
        start = time.perf_counter()
        scratch = scratch_search.search(spec(scratch_budget))
        scratch_seconds = time.perf_counter() - start

        warm_search = _zone_search(
            topology, inventory, rounds, MASTER_SEED + 3, incumbent_budget
        )
        start = time.perf_counter()
        warm = warm_search.search(spec(incumbent_budget), initial_plan=incumbent)
        warm_seconds = time.perf_counter() - start

    return {
        "workload": "incumbent_research",
        "rounds": rounds,
        "scratch_budget": scratch_budget,
        "incumbent_budget": incumbent_budget,
        "incumbent_hosts": sorted(incumbent.hosts()),
        "scratch_score": scratch.best_assessment.score,
        "warm_score": warm.best_assessment.score,
        "quality_epsilon": QUALITY_EPSILON,
        "scratch_seconds": scratch_seconds,
        "warm_seconds": warm_seconds,
        "speedup": scratch_seconds / max(warm_seconds, 1e-12),
        "warm_satisfies_constraints": constraints.satisfied_by(
            warm.best_plan, topology
        ),
    }


# ----------------------------------------------------------------------
# Reporting and gates
# ----------------------------------------------------------------------


def _report(row: dict) -> str:
    if row["workload"] == "zone_outage_exact":
        return (
            f"{row['workload']:<18} blast={row['failed_elements']} elements "
            f"pinned={'alive' if row['pinned_survives'] else 'DOWN'} "
            f"spread={'alive' if row['spread_survives'] else 'DOWN'}"
        )
    return (
        f"{row['workload']:<18} scratch={row['scratch_score']:.4f} in "
        f"{row['scratch_seconds']:.2f}s ({row['scratch_budget']} moves) "
        f"warm={row['warm_score']:.4f} in {row['warm_seconds']:.2f}s "
        f"({row['incumbent_budget']} moves) speedup={row['speedup']:.2f}x"
    )


def _check(rows: list[dict]) -> list[str]:
    """Gate failures (empty = all gates met)."""
    exact = next(r for r in rows if r["workload"] == "zone_outage_exact")
    research = next(r for r in rows if r["workload"] == "incumbent_research")
    failures = []
    if exact["pinned_satisfies_constraints"]:
        failures.append("zone0-pinned plan unexpectedly satisfies constraints")
    if not exact["spread_satisfies_constraints"]:
        failures.append("cross-zone spread plan violates constraints")
    if exact["pinned_survives"]:
        failures.append("zone0-pinned plan survived a full zone0 outage")
    if not exact["spread_survives"]:
        failures.append("K-outside-primary plan died with zone0")
    if research["warm_score"] < research["scratch_score"] - QUALITY_EPSILON:
        failures.append(
            f"warm-start quality {research['warm_score']:.4f} trails "
            f"from-scratch {research['scratch_score']:.4f} by more than "
            f"{QUALITY_EPSILON}"
        )
    if research["speedup"] < SMOKE_SPEEDUP_FLOOR:
        failures.append(
            f"incumbent re-search speedup {research['speedup']:.2f}x below "
            f"the {SMOKE_SPEEDUP_FLOOR:.0f}x floor"
        )
    if not research["warm_satisfies_constraints"]:
        failures.append("warm-start result violates the zone constraints")
    return failures


def _write_results(rows: list[dict]) -> None:
    payload = {
        "benchmark": "multi-zone correlated outages and incumbent re-search",
        "master_seed": MASTER_SEED,
        "smoke_speedup_floor": SMOKE_SPEEDUP_FLOOR,
        "quality_epsilon": QUALITY_EPSILON,
        "rows": rows,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")


def run_smoke() -> int:
    """CI gate: exact outage semantics plus the warm-start floor."""
    rows = [
        bench_zone_outage_exact(),
        bench_incumbent_research(rounds=1_000, scratch_budget=60,
                                 incumbent_budget=12),
    ]
    for row in rows:
        print(_report(row))
    failures = _check(rows)
    assert not failures, "; ".join(failures)
    _write_results(rows)
    print(
        "smoke OK: zone-pinned plan dies with its zone, constrained plan "
        "survives, warm re-search meets the speedup floor at equal quality"
    )
    return 0


def run_full(rounds: int, scratch_budget: int, incumbent_budget: int) -> int:
    rows = [
        bench_zone_outage_exact(),
        bench_incumbent_research(
            rounds=rounds,
            scratch_budget=scratch_budget,
            incumbent_budget=incumbent_budget,
        ),
    ]
    for row in rows:
        print(_report(row))
    failures = _check(rows)
    for failure in failures:
        print(f"  !! {failure}")
    _write_results(rows)
    return 1 if failures else 0


def test_zones_smoke():
    """Pytest entry point mirroring the CI smoke gate."""
    assert run_smoke() == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate: exact outage check + 2x warm-start re-search floor",
    )
    parser.add_argument("--rounds", type=int, default=2_000)
    parser.add_argument("--scratch-budget", type=int, default=60)
    parser.add_argument("--incumbent-budget", type=int, default=12)
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    return run_full(
        rounds=args.rounds,
        scratch_budget=args.scratch_budget,
        incumbent_budget=args.incumbent_budget,
    )


if __name__ == "__main__":
    sys.exit(main())
