"""Compiled kernel vs interpreted assessment path.

Times the same workloads through the legacy interpreted pipeline and the
compiled kernel (integer component arena + bit-packed round states +
flattened fault-tree programs), verifies every per-round vector is
*bit-identical*, and reports three speedups:

* ``assess`` — end-to-end sequential assessments on the Table-2 tiny
  preset at the default 10^4 rounds, with the full infrastructure
  sampled (the Table-1 semantics Fig. 7 times);
* ``search_loop`` — the incremental engine replaying a single-VM-move
  random walk with packed vs dense round states;
* ``shared_batch`` — ``score_plans`` scoring a candidate set off one
  common-random-numbers batch vs assessing each plan solo.

Results land in ``BENCH_kernel.json`` at the repo root.

Usage::

    python benchmarks/bench_kernel.py            # full comparison
    python benchmarks/bench_kernel.py --smoke    # CI gate: asserts
        bit-equality and >= 2x end-to-end speedup on the tiny preset

Also runnable under pytest (``pytest benchmarks/bench_kernel.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

if __name__ == "__main__":  # standalone: make src/ importable without install
    _ROOT = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(_ROOT / "src"))
    sys.path.insert(0, str(_ROOT / "benchmarks"))

from repro.app.structure import ApplicationStructure
from repro.core.api import AssessmentConfig
from repro.core.assessment import ReliabilityAssessor
from repro.core.incremental import IncrementalAssessor
from repro.core.plan import DeploymentPlan
from repro.faults.inventory import build_paper_inventory
from repro.sampling.dagger import CommonRandomDaggerSampler
from repro.topology.presets import paper_topology

MASTER_SEED = 20170412
WALK_SEED = 11
SMOKE_SPEEDUP_FLOOR = 2.0

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_PATH = _REPO_ROOT / "BENCH_kernel.json"


def _substrate(scale: str):
    topology = paper_topology(scale, seed=1)
    inventory = build_paper_inventory(topology, seed=2)
    return topology, inventory


def _plans(topology, structure, count: int) -> list[DeploymentPlan]:
    rng = np.random.default_rng(WALK_SEED)
    plan = DeploymentPlan.random(topology, structure, rng=rng)
    plans = [plan]
    for _ in range(count - 1):
        plan = plan.random_neighbor(topology, rng=rng)
        plans.append(plan)
    return plans


def _mismatches(results_a, results_b) -> int:
    return sum(
        not np.array_equal(a, b) for a, b in zip(results_a, results_b, strict=True)
    )


def bench_assess(scale: str, rounds: int, repeats: int) -> dict:
    """End-to-end sequential assessments, interpreted vs kernel.

    Uses the Table-1 semantics the paper's Fig. 7 times — every component
    of the data center sampled (``sample_full_infrastructure=True``) for a
    2-of-8 application over a 12-plan search walk. The first pass checks
    bit-identity; timing is best-of-``repeats`` passes per pipeline so one
    scheduler hiccup cannot fail the gate on a noisy runner.
    """
    topology, inventory = _substrate(scale)
    structure = ApplicationStructure.k_of_n(2, 8)
    plans = _plans(topology, structure, 12)
    base = AssessmentConfig(rounds=rounds, rng=7, sample_full_infrastructure=True)

    legacy = ReliabilityAssessor.from_config(topology, inventory, base)
    kernel = ReliabilityAssessor.from_config(
        topology, inventory, base.with_updates(kernel=True)
    )
    assert kernel.kernel is not None, "kernel disabled on a supported preset"

    # Warmup pass doubling as the bit-identity check: both assessors start
    # from the same rng seed, so pass one is draw-for-draw comparable.
    legacy_results = [legacy.assess(p, structure).per_round for p in plans]
    kernel_results = [kernel.assess(p, structure).per_round for p in plans]
    mismatches = _mismatches(legacy_results, kernel_results)

    legacy_seconds = kernel_seconds = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        for p in plans:
            legacy.assess(p, structure)
        legacy_seconds = min(legacy_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        for p in plans:
            kernel.assess(p, structure)
        kernel_seconds = min(kernel_seconds, time.perf_counter() - start)

    return {
        "workload": "assess",
        "scale": scale,
        "rounds": rounds,
        "assessments": len(plans),
        "timing_repeats": max(repeats, 1),
        "interpreted_seconds": legacy_seconds,
        "kernel_seconds": kernel_seconds,
        "speedup": legacy_seconds / max(kernel_seconds, 1e-12),
        "mismatches": mismatches,
    }


def bench_search_loop(scale: str, rounds: int, moves: int) -> dict:
    """Incremental move walk with dense vs packed round states."""
    topology, inventory = _substrate(scale)
    structure = ApplicationStructure.k_of_n(2, 3)
    plans = _plans(topology, structure, moves + 1)
    base = AssessmentConfig(
        mode="incremental", rounds=rounds, master_seed=MASTER_SEED
    )

    dense = IncrementalAssessor.from_config(topology, inventory, base)
    packed = IncrementalAssessor.from_config(
        topology, inventory, base.with_updates(kernel=True)
    )

    start = time.perf_counter()
    dense_results = [dense.assess(p, structure).per_round for p in plans]
    dense_seconds = time.perf_counter() - start

    start = time.perf_counter()
    packed_results = [packed.assess(p, structure).per_round for p in plans]
    packed_seconds = time.perf_counter() - start

    return {
        "workload": "search_loop",
        "scale": scale,
        "rounds": rounds,
        "moves": moves,
        "interpreted_seconds": dense_seconds,
        "kernel_seconds": packed_seconds,
        "speedup": dense_seconds / max(packed_seconds, 1e-12),
        "mismatches": _mismatches(dense_results, packed_results),
    }


def bench_shared_batch(scale: str, rounds: int, plans_count: int) -> dict:
    """score_plans off one CRN batch vs one solo assessment per plan."""
    topology, inventory = _substrate(scale)
    structure = ApplicationStructure.k_of_n(2, 3)
    plans = _plans(topology, structure, plans_count)
    config = AssessmentConfig(
        rounds=rounds,
        sampler=CommonRandomDaggerSampler(MASTER_SEED),
        kernel=True,
    )

    solo = ReliabilityAssessor.from_config(topology, inventory, config)
    start = time.perf_counter()
    solo_results = [solo.assess(p, structure).per_round for p in plans]
    solo_seconds = time.perf_counter() - start

    shared = ReliabilityAssessor.from_config(topology, inventory, config)
    start = time.perf_counter()
    shared_results = [
        r.per_round for r in shared.score_plans(plans, structure)
    ]
    shared_seconds = time.perf_counter() - start

    return {
        "workload": "shared_batch",
        "scale": scale,
        "rounds": rounds,
        "plans": plans_count,
        "interpreted_seconds": solo_seconds,
        "kernel_seconds": shared_seconds,
        "speedup": solo_seconds / max(shared_seconds, 1e-12),
        "mismatches": _mismatches(solo_results, shared_results),
    }


def _report(row: dict) -> str:
    return (
        f"{row['workload']:<13} {row['scale']:<6} rounds={row['rounds']:<7} "
        f"interpreted={row['interpreted_seconds']:.3f}s "
        f"kernel={row['kernel_seconds']:.3f}s "
        f"speedup={row['speedup']:.2f}x mismatches={row['mismatches']}"
    )


def _write_results(rows: list[dict]) -> None:
    payload = {
        "benchmark": "compiled assessment kernel vs interpreted path",
        "master_seed": MASTER_SEED,
        "smoke_speedup_floor": SMOKE_SPEEDUP_FLOOR,
        "rows": rows,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")


def run_smoke() -> int:
    """CI gate: bit-equality always, plus the end-to-end speedup floor.

    The speedup assertion compares two in-process timings of identical
    workloads (same machine, same load), so it is robust to slow runners
    even though it is a wall-clock ratio.
    """
    rows = [
        bench_assess("tiny", rounds=10_000, repeats=6),
        bench_search_loop("tiny", rounds=2_000, moves=10),
        bench_shared_batch("tiny", rounds=2_000, plans_count=8),
    ]
    for row in rows:
        print(_report(row))
        assert row["mismatches"] == 0, (
            f"{row['workload']}: kernel diverged from the interpreted path"
        )
    assess = rows[0]
    assert assess["speedup"] >= SMOKE_SPEEDUP_FLOOR, (
        f"end-to-end kernel speedup {assess['speedup']:.2f}x below the "
        f"{SMOKE_SPEEDUP_FLOOR:.0f}x floor on the tiny preset"
    )
    _write_results(rows)
    print("smoke OK: bit-identical results, speedup floor met")
    return 0


def run_full(scales: list[str], rounds: int) -> int:
    failed = False
    rows = []
    for scale in scales:
        for row in (
            bench_assess(scale, rounds=rounds, repeats=8),
            bench_search_loop(scale, rounds=rounds, moves=30),
            bench_shared_batch(scale, rounds=rounds, plans_count=12),
        ):
            rows.append(row)
            print(_report(row))
            if row["mismatches"]:
                print(f"  !! {row['mismatches']} mismatching assessments")
                failed = True
    if rows and rows[0]["speedup"] < SMOKE_SPEEDUP_FLOOR:
        print(
            f"  !! end-to-end speedup {rows[0]['speedup']:.2f}x below "
            f"{SMOKE_SPEEDUP_FLOOR:.0f}x"
        )
        failed = True
    _write_results(rows)
    return 1 if failed else 0


def test_kernel_smoke():
    """Pytest entry point mirroring the CI smoke gate."""
    assert run_smoke() == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate: bit-equality plus the 2x end-to-end speedup floor",
    )
    parser.add_argument(
        "--scales", default="tiny", help="comma-separated Table-2 scales"
    )
    parser.add_argument("--rounds", type=int, default=10_000)
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    scales = [s.strip() for s in args.scales.split(",") if s.strip()]
    return run_full(scales, rounds=args.rounds)


if __name__ == "__main__":
    sys.exit(main())
