"""Fig. 12: parallel execution of the deployment assessment.

The paper's Fig. 12 plots assessment time against the number of worker
nodes (1-4) for 10^3 / 10^4 / 10^5 sampling rounds. Expected shape:
with few rounds, serialization/transmission and per-worker context setup
dominate and parallelism does not help (it can even hurt); only at high
round counts (the 10^5 series) does adding workers reduce wall-clock
time — "parallel execution is only beneficial when an extremely high
assessment accuracy is required".
"""

import os
import time

import pytest

from repro.app.structure import ApplicationStructure
from repro.core.plan import DeploymentPlan
from repro.runtime.mapreduce import ParallelAssessor

from common import ResultTable, bench_scales, inventory, topology
from repro.core.api import AssessmentConfig

WORKER_COUNTS = (1, 2, 3, 4)
# The paper sweeps 10^3/10^4/10^5. Our vectorised route-and-check is far
# faster per round than the paper's per-round Java loop, which shifts the
# crossover where parallelism starts paying off upward; 10^6 rounds plays
# the role of the paper's "extremely high assessment accuracy" regime.
ROUND_SERIES = (10_000, 100_000, 1_000_000)
STRUCTURE = ApplicationStructure.k_of_n(4, 5)


def _measure(scale, workers, rounds, repetitions=3):
    topo = topology(scale)
    plan = DeploymentPlan.random(topo, STRUCTURE, rng=6)
    with ParallelAssessor(topo, inventory(scale), config=AssessmentConfig(mode="parallel", rounds=rounds, workers=workers, rng=5, backend="process")) as assessor:
        best = float("inf")
        for _ in range(repetitions):
            start = time.perf_counter()
            assessor.assess(plan, STRUCTURE)
            best = min(best, time.perf_counter() - start)
    return best * 1e3


def _experiment_fig12_table_and_shape():
    scale = bench_scales()[-1]
    table = ResultTable(
        "fig12_parallel",
        f"{'rounds':>8} " + " ".join(f"{f'{w} workers (ms)':>16}" for w in WORKER_COUNTS),
    )
    times = {}
    for rounds in ROUND_SERIES:
        row = []
        for workers in WORKER_COUNTS:
            ms = _measure(scale, workers, rounds)
            times[(rounds, workers)] = ms
            row.append(f"{ms:>16.1f}")
        table.row(f"{rounds:>8} " + " ".join(row))
    table.save()

    low, high = ROUND_SERIES[0], ROUND_SERIES[-1]
    # Both halves of the paper's claim need real cores to show the
    # speedup half; the overhead half is observable even on one core.
    cores = len(os.sched_getaffinity(0))
    if cores >= 4:
        # Shape 1: at the highest round count, 4 workers beat 1 worker.
        assert times[(high, 4)] < times[(high, 1)]
    # Shape 2: the relative cost of fanning out to 4 workers shrinks as
    # the round count grows — at few rounds serialization and context
    # setup dominate, at many rounds they amortise. This is the paper's
    # "parallel execution is only beneficial when an extremely high
    # assessment accuracy is required", viewed from the overhead side,
    # and holds regardless of the core count.
    overhead_small = times[(low, 4)] / times[(low, 1)]
    overhead_large = times[(high, 4)] / times[(high, 1)]
    assert overhead_large < overhead_small


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_assessment_time(benchmark, workers):
    scale = bench_scales()[-1]
    rounds = max(ROUND_SERIES)
    topo = topology(scale)
    plan = DeploymentPlan.random(topo, STRUCTURE, rng=6)
    with ParallelAssessor(topo, inventory(scale), config=AssessmentConfig(mode="parallel", rounds=rounds, workers=workers, rng=5, backend="process")) as assessor:
        benchmark.pedantic(
            lambda: assessor.assess(plan, STRUCTURE), iterations=1, rounds=2
        )

def test_fig12_table_and_shape(benchmark):
    """One-shot benchmarked run of the experiment above."""
    benchmark.pedantic(_experiment_fig12_table_and_shape, iterations=1, rounds=1)
