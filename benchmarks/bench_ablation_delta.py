"""Ablation A1: the paper's log-odds Δ (Eq. 5) vs the classic Δ.

§3.3.2 argues that the classic absolute-difference Δ "fits badly":
R=0.999 vs R=0.99 gives Δ=0.009 although the plans differ by an order of
magnitude in failure odds, so the annealing accepts order-of-magnitude
regressions almost freely. This bench runs the same searches with both
settings and reports the reliability of the plans they find.

Expected shape: the log-odds Δ finds plans at least as reliable as the
classic Δ on average, and by construction rejects big regressions far
more often (quantified directly on the acceptance probabilities).
"""

import math

from repro.app.structure import ApplicationStructure
from repro.core.anneal import acceptance_probability, classic_delta, paper_delta
from repro.core.assessment import ReliabilityAssessor
from repro.core.objectives import ClassicReliabilityObjective, ReliabilityObjective
from repro.core.search import DeploymentSearch, SearchSpec

from common import ResultTable, bench_scales, inventory, topology
from repro.core.api import AssessmentConfig

BUDGET_SECONDS = 6.0
TRIALS = 3


def _experiment_acceptance_probability_contrast():
    """The Eq. 5 example, as accept probabilities at mid temperature."""
    table = ResultTable(
        "ablation_delta_acceptance",
        f"{'R_current':>10} {'R_neighbor':>11} {'P_accept(classic)':>18} "
        f"{'P_accept(log-odds)':>19}",
    )
    temperature = 0.5
    cases = [(0.999, 0.99), (0.9999, 0.999), (0.99, 0.9)]
    for rc, rn in cases:
        p_classic = acceptance_probability(classic_delta(rc, rn), temperature)
        p_paper = acceptance_probability(paper_delta(rc, rn), temperature)
        table.row(f"{rc:>10} {rn:>11} {p_classic:>18.4f} {p_paper:>19.4f}")
        # One order of magnitude worse must be accepted far less often
        # under the paper's Δ.
        assert p_paper < p_classic
        assert p_classic > 0.8  # the classic Δ barely notices
        assert p_paper <= math.exp(-1.0 / temperature) + 1e-9
    table.save()


def _experiment_search_quality_with_both_deltas():
    scale = bench_scales()[0]
    structure = ApplicationStructure.k_of_n(4, 5)
    reference = ReliabilityAssessor(topology(scale), inventory(scale), config=AssessmentConfig(rounds=40_000, rng=99))
    table = ResultTable(
        "ablation_delta_search",
        f"{'delta':<10} {'trial':>6} {'best_R':>9} {'odds':>10}",
    )
    means = {}
    for name, objective in (
        ("log-odds", ReliabilityObjective()),
        ("classic", ClassicReliabilityObjective()),
    ):
        scores = []
        for trial in range(TRIALS):
            assessor = ReliabilityAssessor(topology(scale), inventory(scale), config=AssessmentConfig(rounds=8_000, rng=trial))
            search = DeploymentSearch(assessor, objective=objective, rng=trial + 50)
            result = search.search(
                SearchSpec(structure, max_seconds=BUDGET_SECONDS)
            )
            score = reference.assess(result.best_plan, structure).score
            scores.append(score)
            table.row(f"{name:<10} {trial:>6} {score:>9.4f} {1 - score:>10.4f}")
        means[name] = sum(scores) / len(scores)
    table.row(f"{'log-odds':<10} {'mean':>6} {means['log-odds']:>9.4f}")
    table.row(f"{'classic':<10} {'mean':>6} {means['classic']:>9.4f}")
    table.save()
    # Shape: log-odds is not worse (both explore; log-odds protects bests).
    assert means["log-odds"] >= means["classic"] - 5e-3

def test_acceptance_probability_contrast(benchmark):
    """One-shot benchmarked run of the experiment above."""
    benchmark.pedantic(_experiment_acceptance_probability_contrast, iterations=1, rounds=1)

def test_search_quality_with_both_deltas(benchmark):
    """One-shot benchmarked run of the experiment above."""
    benchmark.pedantic(_experiment_search_quality_with_both_deltas, iterations=1, rounds=1)
