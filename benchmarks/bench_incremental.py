"""Incremental vs from-scratch assessment on the search hot path.

The annealing search re-assesses a neighbour plan differing by one VM
move per iteration. This bench replays the same randomized move sequence
through the from-scratch CRN assessor and the incremental engine,
verifies the per-round result lists are *bit-identical* at every step,
and reports the wall-clock speedup plus the cache hit rates that explain
it. Target: >= 3x on the Table-2 presets at the paper's default 10^4
rounds.

Usage::

    python benchmarks/bench_incremental.py            # full comparison
    python benchmarks/bench_incremental.py --smoke    # CI smoke: tiny
        preset, few moves; asserts equality + cache hit rate > 0 (never
        wall-clock, so it cannot flake on loaded runners)

Also runnable under pytest (``pytest benchmarks/bench_incremental.py``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

if __name__ == "__main__":  # standalone: make src/ importable without install
    _ROOT = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(_ROOT / "src"))
    sys.path.insert(0, str(_ROOT / "benchmarks"))

from repro.app.structure import ApplicationStructure
from repro.core.api import AssessmentConfig
from repro.core.assessment import ReliabilityAssessor
from repro.core.incremental import IncrementalAssessor
from repro.core.plan import DeploymentPlan
from repro.faults.inventory import build_paper_inventory
from repro.sampling.dagger import CommonRandomDaggerSampler
from repro.topology.presets import paper_topology

MASTER_SEED = 20170412  # CoNEXT '17 submission-ish; any fixed value works
WALK_SEED = 11


def _substrate(scale: str):
    topology = paper_topology(scale, seed=1)
    inventory = build_paper_inventory(topology, seed=2)
    return topology, inventory


def _move_sequence(topology, structure, moves: int) -> list[DeploymentPlan]:
    """A deterministic single-VM-move random walk, like the search takes."""
    rng = np.random.default_rng(WALK_SEED)
    plan = DeploymentPlan.random(topology, structure, rng=rng)
    plans = [plan]
    for _ in range(moves):
        plan = plan.random_neighbor(topology, rng=rng)
        plans.append(plan)
    return plans


def _assess_walk(assessor, plans, structure) -> tuple[float, list[np.ndarray]]:
    start = time.perf_counter()
    results = [assessor.assess(plan, structure).per_round for plan in plans]
    return time.perf_counter() - start, results


def run_comparison(
    scale: str, rounds: int, moves: int, k: int = 2, n: int = 3
) -> dict:
    """Replay one move sequence through both engines; verify + time."""
    topology, inventory = _substrate(scale)
    structure = ApplicationStructure.k_of_n(k, n)
    plans = _move_sequence(topology, structure, moves)

    scratch = ReliabilityAssessor.from_config(
        topology,
        inventory,
        AssessmentConfig(
            rounds=rounds, sampler=CommonRandomDaggerSampler(MASTER_SEED)
        ),
    )
    incremental = IncrementalAssessor.from_config(
        topology,
        inventory,
        AssessmentConfig(
            mode="incremental",
            rounds=rounds,
            master_seed=MASTER_SEED,
            profile=True,
        ),
    )

    scratch_seconds, scratch_results = _assess_walk(scratch, plans, structure)
    incremental_seconds, incremental_results = _assess_walk(
        incremental, plans, structure
    )

    mismatches = sum(
        not np.array_equal(a, b)
        for a, b in zip(scratch_results, incremental_results)
    )
    metrics = incremental.metrics
    return {
        "scale": scale,
        "rounds": rounds,
        "moves": moves,
        "scratch_seconds": scratch_seconds,
        "incremental_seconds": incremental_seconds,
        "speedup": scratch_seconds / max(incremental_seconds, 1e-12),
        "mismatches": mismatches,
        "component_hit_rate": metrics.hit_rate("sample/component"),
        "subject_hit_rate": metrics.hit_rate("faulttree/subject"),
        "plan_cache_hits": metrics.counter("plan_cache/hit"),
        "metrics": metrics,
    }


def _report(row: dict) -> str:
    return (
        f"{row['scale']:<8} rounds={row['rounds']:<7} moves={row['moves']:<4} "
        f"scratch={row['scratch_seconds']:.3f}s "
        f"incremental={row['incremental_seconds']:.3f}s "
        f"speedup={row['speedup']:.2f}x "
        f"component-hits={row['component_hit_rate']:.1%} "
        f"mismatches={row['mismatches']}"
    )


def run_smoke() -> int:
    """CI gate: correctness and cache effectiveness, never wall-clock."""
    row = run_comparison("tiny", rounds=500, moves=12)
    print(_report(row))
    assert row["mismatches"] == 0, (
        "incremental assessment diverged from the from-scratch CRN path"
    )
    assert row["component_hit_rate"] > 0.0, (
        "component-state cache never hit across a move sequence"
    )
    assert row["subject_hit_rate"] > 0.0, (
        "fault-tree cache never hit across a move sequence"
    )
    print("smoke OK: bit-identical results, caches exercised")
    return 0


def run_full(scales: list[str], rounds: int, moves: int) -> int:
    failed = False
    lines = []
    for scale in scales:
        row = run_comparison(scale, rounds=rounds, moves=moves)
        line = _report(row)
        lines.append(line)
        print(line)
        if row["mismatches"]:
            print(f"  !! {row['mismatches']} mismatching assessments")
            failed = True
        if row["speedup"] < 3.0:
            print(f"  !! speedup {row['speedup']:.2f}x below the 3x target")
            failed = True
    results_dir = pathlib.Path(__file__).resolve().parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "bench_incremental.txt").write_text("\n".join(lines) + "\n")
    return 1 if failed else 0


def test_incremental_smoke():
    """Pytest entry point mirroring the CI smoke gate."""
    assert run_smoke() == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast correctness/cache gate for CI (no wall-clock assertion)",
    )
    parser.add_argument(
        "--scales", default="tiny", help="comma-separated Table-2 scales"
    )
    parser.add_argument("--rounds", type=int, default=10_000)
    parser.add_argument("--moves", type=int, default=60)
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    scales = [s.strip() for s in args.scales.split(",") if s.strip()]
    return run_full(scales, rounds=args.rounds, moves=args.moves)


if __name__ == "__main__":
    sys.exit(main())
