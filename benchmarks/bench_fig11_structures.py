"""Fig. 11: complex application structures.

The paper's Fig. 11 plots the per-plan evolve-and-assess time for
multi-layer applications (1-4 layers, 4-of-5 per layer) and for
microservice "X-Y" structures (3-5, 5-10, 10-20; 4-of-5 per component)
across data-center scales, without network transformations.

Expected shape: the number of layers has little impact; microservice
meshes cost more (quadratically many core pairs) but stay within
practical bounds (the paper: <1 s for the 210-component 10-20 structure
in the large DC).

The 10-20 structure deploys 1,050 instances, which only fits in the
medium/large DCs; structures are skipped on DCs without enough hosts.
"""

import time

import numpy as np
import pytest

from repro.app.generators import microservice_mesh, multilayer
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan

from common import ResultTable, bench_scales, inventory, topology
from repro.core.api import AssessmentConfig

ROUNDS = 10_000

STRUCTURES = {
    "1-layer": lambda: multilayer(1),
    "2-layers": lambda: multilayer(2),
    "3-layers": lambda: multilayer(3),
    "4-layers": lambda: multilayer(4),
    "micro-3-5": lambda: microservice_mesh(3, 5),
    "micro-5-10": lambda: microservice_mesh(5, 10),
    "micro-10-20": lambda: microservice_mesh(10, 20),
}


def _measure(scale, structure, repetitions=3):
    topo = topology(scale)
    assessor = ReliabilityAssessor(topo, inventory(scale), config=AssessmentConfig(rounds=ROUNDS, rng=5))
    plan = DeploymentPlan.random(topo, structure, rng=6)
    rng = np.random.default_rng(7)
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        neighbor = plan.random_neighbor(topo, rng=rng)
        assessor.assess(neighbor, structure)
        best = min(best, time.perf_counter() - start)
        plan = neighbor
    return best * 1e3


def _experiment_fig11_table_and_shape():
    table = ResultTable(
        "fig11_structures",
        f"{'structure':<12} {'instances':>10} "
        + " ".join(f"{f'{s} (ms)':>13}" for s in bench_scales()),
    )
    layer_times_last_scale = []
    for name, factory in STRUCTURES.items():
        structure = factory()
        cells = []
        for scale in bench_scales():
            if structure.total_instances > len(topology(scale).hosts):
                cells.append("    (too big)")
                continue
            reps = 1 if structure.total_instances > 300 else 3
            ms = _measure(scale, structure, repetitions=reps)
            cells.append(f"{ms:>13.1f}")
            if name.endswith("-layers") or name == "1-layer":
                if scale == bench_scales()[-1]:
                    layer_times_last_scale.append(ms)
        table.row(f"{name:<12} {structure.total_instances:>10} " + " ".join(cells))
    table.save()

    # Shape: layer count has little impact (paper's observation).
    if len(layer_times_last_scale) >= 2:
        assert max(layer_times_last_scale) / min(layer_times_last_scale) < 8


@pytest.mark.parametrize("layers", [1, 2, 4])
def test_multilayer_time(benchmark, layers):
    scale = bench_scales()[-1]
    structure = multilayer(layers)
    topo = topology(scale)
    assessor = ReliabilityAssessor(topo, inventory(scale), config=AssessmentConfig(rounds=ROUNDS, rng=5))
    plan = DeploymentPlan.random(topo, structure, rng=6)
    benchmark.pedantic(
        lambda: assessor.assess(plan, structure), iterations=1, rounds=3
    )


@pytest.mark.parametrize("mesh", [(3, 5), (5, 10)], ids=lambda m: f"{m[0]}-{m[1]}")
def test_microservice_time(benchmark, mesh):
    scale = bench_scales()[-1]
    structure = microservice_mesh(*mesh)
    topo = topology(scale)
    if structure.total_instances > len(topo.hosts):
        pytest.skip(f"{structure.name} needs {structure.total_instances} hosts")
    assessor = ReliabilityAssessor(topo, inventory(scale), config=AssessmentConfig(rounds=ROUNDS, rng=5))
    plan = DeploymentPlan.random(topo, structure, rng=6)
    benchmark.pedantic(
        lambda: assessor.assess(plan, structure), iterations=1, rounds=2
    )

def test_fig11_table_and_shape(benchmark):
    """One-shot benchmarked run of the experiment above."""
    benchmark.pedantic(_experiment_fig11_table_and_shape, iterations=1, rounds=1)
