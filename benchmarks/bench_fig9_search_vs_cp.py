"""Fig. 9: reCloud vs the enhanced common practice (multi-objective).

The paper's Fig. 9 compares, per K-of-N redundancy setting, the
reliability of the plan found by reCloud (searching with the holistic
measure: reliability + average-workload utility, equal weights) against
the enhanced common practice (top-5 least-loaded rack-diverse plans,
pick the most power-diverse), as the search budget grows from 3 s to
300 s. The common practice itself has negligible search time.

Expected shape: reCloud's plan is more reliable than the enhanced CP's
at every budget, the gap grows with budget, and the failure odds of the
reCloud plan are a multiple of the CP's (the paper reports ~10x; see
EXPERIMENTS.md for why this reproduction's fault model caps the ratio
lower, and the rich-inventory ablation where it widens again).

All plans are re-scored with one independent high-round assessor so the
comparison is apples to apples.

The searches enable the paper's Step-1 heuristic ("no hosts from the same
rack", §3.3.1) for the initial plan: for the easy redundancy settings
(1-of-2, 2-of-3) a rack-diverse placement is already near-optimal, and a
cold random start would spend the whole small budget rediscovering it.
"""

import pytest

from repro.app.structure import ApplicationStructure
from repro.baselines.common_practice import enhanced_common_practice_plan
from repro.core.assessment import ReliabilityAssessor
from repro.core.objectives import CompositeObjective, WorkloadUtilityObjective
from repro.core.search import DeploymentSearch, SearchSpec

from repro.core.api import AssessmentConfig

from common import (
    REDUNDANCY_SETTINGS,
    ResultTable,
    bench_scales,
    inventory,
    search_budgets,
    topology,
    workload,
)

REFERENCE_ROUNDS = 40_000
SEARCH_ROUNDS = 10_000


def _reference(scale):
    return ReliabilityAssessor(topology(scale), inventory(scale), config=AssessmentConfig(rounds=REFERENCE_ROUNDS, rng=99))


def _search_for(scale, seed):
    assessor = ReliabilityAssessor(topology(scale), inventory(scale), config=AssessmentConfig(rounds=SEARCH_ROUNDS, rng=seed))
    objective = CompositeObjective.reliability_and_utility(
        WorkloadUtilityObjective(workload(scale))
    )
    return DeploymentSearch(assessor, objective=objective, rng=seed + 1)


def _experiment_fig9_recloud_vs_enhanced_cp():
    scale = bench_scales()[-1]
    budgets = search_budgets()
    reference = _reference(scale)
    table = ResultTable(
        "fig9_search_vs_cp",
        f"{'redundancy':<12} {'ECP_R':>9} "
        + " ".join(f"{f'reCloud@{int(b)}s':>13}" for b in budgets)
        + f" {'odds_ratio':>11} {'plans':>7} {'skipped':>8}",
    )
    for k, n in REDUNDANCY_SETTINGS:
        structure = ApplicationStructure.k_of_n(k, n)
        ecp = enhanced_common_practice_plan(
            topology(scale), workload(scale), inventory(scale), n
        )
        ecp_score = reference.assess(ecp, structure).score

        recloud_scores = []
        last_result = None
        for budget in budgets:
            search = _search_for(scale, seed=int(budget) * 10 + k)
            last_result = search.search(SearchSpec(structure, max_seconds=budget, forbid_shared_rack=True))
            recloud_scores.append(
                reference.assess(last_result.best_plan, structure).score
            )
        odds_ratio = (1 - ecp_score) / max(1 - recloud_scores[-1], 1e-9)
        table.row(
            f"{f'{k}-of-{n}':<12} {ecp_score:>9.4f} "
            + " ".join(f"{s:>13.4f}" for s in recloud_scores)
            + f" {odds_ratio:>10.2f}x {last_result.plans_assessed:>7} "
            f"{last_result.plans_skipped_symmetric:>8}"
        )
        # Shape: reCloud's plan at the largest budget beats the enhanced CP.
        assert recloud_scores[-1] > ecp_score - 1e-3, (k, n)
        assert odds_ratio > 1.0, (k, n)
    table.save()


def _experiment_fig9_reliability_ordering_across_settings():
    """Fewer required instances -> higher reliability (the paper's 2-of-3
    vs 4-of-5 observation)."""
    scale = bench_scales()[0]
    reference = _reference(scale)
    budget = min(search_budgets())
    scores = {}
    for k, n in ((2, 3), (4, 5)):
        structure = ApplicationStructure.k_of_n(k, n)
        search = _search_for(scale, seed=77 + k)
        result = search.search(SearchSpec(structure, max_seconds=budget, forbid_shared_rack=True))
        scores[(k, n)] = reference.assess(result.best_plan, structure).score
    assert scores[(2, 3)] >= scores[(4, 5)] - 5e-3


@pytest.mark.parametrize("budget", search_budgets()[:1])
def test_search_throughput(benchmark, budget):
    """Plans evolved per unit time (context: ~438 plans in 30 s at large
    scale in the paper)."""
    scale = bench_scales()[-1]
    structure = ApplicationStructure.k_of_n(4, 5)

    def run():
        search = _search_for(scale, seed=5)
        return search.search(SearchSpec(structure, max_seconds=budget, forbid_shared_rack=True))

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result.plans_considered > 5

def test_fig9_recloud_vs_enhanced_cp(benchmark):
    """One-shot benchmarked run of the experiment above."""
    benchmark.pedantic(_experiment_fig9_recloud_vs_enhanced_cp, iterations=1, rounds=1)

def test_fig9_reliability_ordering_across_settings(benchmark):
    """One-shot benchmarked run of the experiment above."""
    benchmark.pedantic(_experiment_fig9_reliability_ordering_across_settings, iterations=1, rounds=1)
