"""Fig. 10: time to evolve and assess one deployment plan.

The paper's Fig. 10 plots the per-plan cost of one search iteration —
evolve a neighbour plan and assess it over 10^4 rounds, *without* the
network-transformations shortcut — across the four data-center scales
and the four K-of-N settings.

Expected shape: the cost is modest at every scale (270 ms in the large
DC on the paper's Java stack), and the K/N setting has little impact,
because route-and-check itself is cheap and the per-round context setup
dominates.
"""

import time

import numpy as np
import pytest

from repro.app.structure import ApplicationStructure
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan

from repro.core.api import AssessmentConfig

from common import (
    REDUNDANCY_SETTINGS,
    ResultTable,
    bench_scales,
    inventory,
    topology,
)

ROUNDS = 10_000


def _evolve_and_assess(scale, structure, plan, assessor, rng):
    neighbor = plan.random_neighbor(topology(scale), rng=rng)
    return neighbor, assessor.assess(neighbor, structure)


@pytest.mark.parametrize("scale", bench_scales())
@pytest.mark.parametrize("k_n", REDUNDANCY_SETTINGS, ids=lambda kn: f"{kn[0]}of{kn[1]}")
def test_evolve_and_assess_time(benchmark, scale, k_n):
    k, n = k_n
    structure = ApplicationStructure.k_of_n(k, n)
    topo = topology(scale)
    assessor = ReliabilityAssessor(topo, inventory(scale), config=AssessmentConfig(rounds=ROUNDS, rng=5))
    plan = DeploymentPlan.random(topo, structure, rng=6)
    rng = np.random.default_rng(7)
    benchmark.pedantic(
        lambda: _evolve_and_assess(scale, structure, plan, assessor, rng),
        iterations=1,
        rounds=5,
    )


def _experiment_fig10_table_and_shape():
    table = ResultTable(
        "fig10_redundancy",
        f"{'scale':<8} "
        + " ".join(f"{f'{k}-of-{n} (ms)':>13}" for k, n in REDUNDANCY_SETTINGS),
    )
    per_scale = {}
    for scale in bench_scales():
        topo = topology(scale)
        times = []
        for k, n in REDUNDANCY_SETTINGS:
            structure = ApplicationStructure.k_of_n(k, n)
            assessor = ReliabilityAssessor(topo, inventory(scale), config=AssessmentConfig(rounds=ROUNDS, rng=5))
            plan = DeploymentPlan.random(topo, structure, rng=6)
            rng = np.random.default_rng(7)
            best = float("inf")
            for _ in range(5):
                start = time.perf_counter()
                plan, _result = _evolve_and_assess(
                    scale, structure, plan, assessor, rng
                )
                best = min(best, time.perf_counter() - start)
            times.append(best * 1e3)
        per_scale[scale] = times
        table.row(f"{scale:<8} " + " ".join(f"{t:>13.1f}" for t in times))
    table.save()

    # Shape 1: K-of-N has little impact (max/min < 10x within a scale,
    # vs ~250x spread across the scales axis in the paper's figure).
    for scale, times in per_scale.items():
        assert max(times) / min(times) < 10, (scale, times)
    # Shape 2: cost stays practical everywhere (paper: <= 270 ms in Java).
    for scale, times in per_scale.items():
        assert max(times) < 5_000, (scale, times)

def test_fig10_table_and_shape(benchmark):
    """One-shot benchmarked run of the experiment above."""
    benchmark.pedantic(_experiment_fig10_table_and_shape, iterations=1, rounds=1)
