"""Fleet failover under chaos: latency, sheds, and lost/duplicated keys.

Three phases against an in-process :class:`FleetSupervisor` with real
forked shard workers:

* **baseline** — concurrent keyed clients against an undisturbed fleet.
  Yields the healthy p50/p99 and the measured per-worker throughput.
* **capacity** — feed that measured throughput to ``plan_capacity``
  (the service assessed with its own fault-tree machinery): given the
  chaos phase's kill rate and the observed failover window, how many
  workers does the planner say we need to keep serving the target rate?
* **chaos** — run the planner's recommended fleet under the same load
  while a chaos thread ``kill -9``'s a random worker on a fixed cadence.

The chaos phase is a gate, not just a report. It fails the run unless:

* every keyed request answers exactly once — zero lost, zero duplicated
  (distinct request ids == distinct keys, journal shows one terminal
  event per request);
* goodput stays at or above the planned target rate, confirming the
  ``repro capacity`` recommendation end to end;
* p50 under chaos stays within ``P50_CHAOS_MULTIPLIER`` of the healthy
  baseline and p99 under ``P99_BUDGET_SECONDS`` (the failover window is
  allowed to show up in the tail, not in the median);
* the shed rate (admission rejections per attempt) stays under
  ``SHED_RATE_BUDGET``.

Environment knobs:

``REPRO_BENCH_FLEET_SECONDS``   load duration per phase (default ``12``)
``REPRO_BENCH_FLEET_CLIENTS``   concurrent client threads (default ``4``)
``REPRO_BENCH_FLEET_ROUNDS``    sampling rounds per request (default ``2000``)
``REPRO_BENCH_FLEET_KILL_EVERY``  seconds between kills (default ``2.0``)

Usage::

    python benchmarks/bench_fleet.py            # full run
    python benchmarks/bench_fleet.py --smoke    # short CI-sized run

Also runnable under pytest (``pytest benchmarks/bench_fleet.py``).
"""

from __future__ import annotations

import argparse
import os
import pathlib
import random
import signal
import sys
import tempfile
import threading
import time

if __name__ == "__main__":  # standalone: make src/ importable without install
    _ROOT = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(_ROOT / "src"))
    sys.path.insert(0, str(_ROOT / "benchmarks"))

from repro.service.capacity import plan_capacity
from repro.service.fleet import FleetSupervisor
from repro.service.journal import RequestJournal
from repro.service.requests import AssessRequest
from repro.service.scheduler import ServiceConfig
from repro.util.errors import AdmissionRejected

from common import ResultTable

#: Gate budgets for the chaos phase.
P50_CHAOS_MULTIPLIER = 10.0
P99_BUDGET_SECONDS = 10.0
SHED_RATE_BUDGET = 0.05

#: Capacity-planning inputs shared with the chaos phase.
TARGET_UTILISATION = 0.5  # plan for half of one healthy fleet's capacity
FAILOVER_SECONDS = 1.0  # detect + respawn + replay, observed upper bound
AVAILABILITY_SLO = 0.99


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def _config(journal_dir: str, workers: int, rounds: int) -> ServiceConfig:
    return ServiceConfig(
        scale="tiny",
        seed=1,
        rounds=rounds,
        chunks=4,
        queue_capacity=64,
        fleet_workers=workers,
        journal_dir=journal_dir,
        heartbeat_interval_seconds=0.1,
        heartbeat_misses=5,
        respawn_backoff_seconds=0.1,
        respawn_backoff_cap_seconds=0.5,
    )


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


class LoadReport:
    """Outcome of one load phase: latencies, sheds, key accounting."""

    def __init__(self):
        self.latencies: list[float] = []
        self.request_ids: dict[str, str] = {}  # key -> request id
        self.sheds = 0
        self.failures: list[str] = []
        self.duration = 0.0
        self._lock = threading.Lock()

    @property
    def completed(self) -> int:
        return len(self.latencies)

    @property
    def throughput(self) -> float:
        return self.completed / self.duration if self.duration else 0.0

    @property
    def shed_rate(self) -> float:
        attempts = self.completed + self.sheds
        return self.sheds / attempts if attempts else 0.0

    def percentiles(self) -> tuple[float, float]:
        ordered = sorted(self.latencies)
        return _percentile(ordered, 0.50), _percentile(ordered, 0.99)


def _run_load(
    fleet: FleetSupervisor,
    seconds: float,
    clients: int,
    label: str,
) -> LoadReport:
    """Drive ``clients`` threads of keyed assessments for ``seconds``."""
    hosts = tuple(
        c for c in fleet.topology.components if c.startswith("host")
    )[:3]
    report = LoadReport()
    stop_at = time.monotonic() + seconds

    def client_loop(client_index: int) -> None:
        sequence = 0
        while time.monotonic() < stop_at:
            key = f"{label}-c{client_index}-{sequence}"
            sequence += 1
            request = AssessRequest(hosts=hosts, k=2, idempotency_key=key)
            started = time.monotonic()
            while True:  # a shed is retried: the key must answer once
                try:
                    response = fleet.assess(request, timeout=120.0)
                except AdmissionRejected:
                    with report._lock:
                        report.sheds += 1
                    time.sleep(0.05)
                    continue
                break
            elapsed = time.monotonic() - started
            with report._lock:
                if response.status != "ok":
                    report.failures.append(
                        f"{key}: status={response.status}"
                    )
                elif key in report.request_ids:
                    report.failures.append(f"{key}: answered twice")
                else:
                    report.request_ids[key] = response.request_id
                    report.latencies.append(elapsed)

    threads = [
        threading.Thread(target=client_loop, args=(i,), daemon=True)
        for i in range(clients)
    ]
    begin = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=seconds + 300.0)
        if thread.is_alive():
            report.failures.append("a client thread wedged")
    report.duration = time.monotonic() - begin
    return report


def _chaos_killer(
    fleet: FleetSupervisor, stop: threading.Event, every: float
) -> list[int]:
    """SIGKILL a random alive worker every ``every`` seconds."""
    rng = random.Random(13)
    kills: list[int] = []
    while not stop.wait(every):
        with fleet._lock:
            alive = [s for s in fleet._slots if s.state == "alive"]
            if len(alive) < 2:
                continue  # keep at least one survivor to fail over onto
            victim = rng.choice(alive)
            pid = victim.process.pid
        os.kill(pid, signal.SIGKILL)
        kills.append(victim.shard)
    return kills


def _verify_journal(journal_dir: str, report: LoadReport) -> list[str]:
    """Cross-check the report against the journal's lifecycle records."""
    problems = []
    state = RequestJournal.scan(journal_dir)
    for key, request_id in report.request_ids.items():
        events = [e["event"] for e in state.events.get(request_id, [])]
        if events.count("completed") != 1:
            problems.append(
                f"{key} ({request_id}): journal shows "
                f"{events.count('completed')} completions"
            )
    return problems


def run_bench(smoke: bool = False) -> int:
    seconds = _env_float("REPRO_BENCH_FLEET_SECONDS", 12.0)
    clients = int(_env_float("REPRO_BENCH_FLEET_CLIENTS", 4))
    rounds = int(_env_float("REPRO_BENCH_FLEET_ROUNDS", 2000))
    kill_every = _env_float("REPRO_BENCH_FLEET_KILL_EVERY", 2.0)
    if smoke:
        seconds = min(seconds, 6.0)

    table = ResultTable(
        "fleet_chaos",
        f"{'phase':<10} {'workers':>7} {'reqs':>6} {'rps':>8} "
        f"{'p50 (ms)':>9} {'p99 (ms)':>9} {'sheds':>6} {'kills':>6}",
    )
    failures: list[str] = []

    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as workdir:
        # Phase 1: healthy baseline on a 2-worker fleet.
        baseline_dir = os.path.join(workdir, "baseline")
        with FleetSupervisor(_config(baseline_dir, 2, rounds)) as fleet:
            baseline = _run_load(fleet, seconds, clients, "base")
        base_p50, base_p99 = baseline.percentiles()
        table.row(
            f"{'baseline':<10} {2:>7} {baseline.completed:>6} "
            f"{baseline.throughput:>8.1f} {base_p50 * 1e3:>9.1f} "
            f"{base_p99 * 1e3:>9.1f} {baseline.sheds:>6} {0:>6}"
        )
        failures.extend(baseline.failures)
        if baseline.completed == 0:
            failures.append("baseline completed no requests")
            print("\n".join(f"FAIL: {f}" for f in failures))
            return 1

        # Phase 2: size the chaos fleet with our own capacity planner.
        per_worker_rps = baseline.throughput / 2
        target_rps = TARGET_UTILISATION * baseline.throughput
        crash_rate_per_hour = 3600.0 / kill_every / 2  # per worker
        plan = plan_capacity(
            target_rps=target_rps,
            per_worker_rps=per_worker_rps,
            slo=AVAILABILITY_SLO,
            crash_rate_per_hour=crash_rate_per_hour,
            failover_seconds=FAILOVER_SECONDS,
            max_workers=8,
        )
        if plan.recommended_workers is None:
            failures.append(
                f"capacity planner found no fleet <= 8 workers for "
                f"target {target_rps:.1f} rps at SLO {AVAILABILITY_SLO}"
            )
            print("\n".join(f"FAIL: {f}" for f in failures))
            return 1
        workers = max(2, plan.recommended_workers)
        print(
            f"capacity: target {target_rps:.1f} rps @ "
            f"{per_worker_rps:.1f} rps/worker, crash rate "
            f"{crash_rate_per_hour:.0f}/h -> recommend --workers {workers}"
        )

        # Phase 3: the recommended fleet under kill -9 chaos.
        chaos_dir = os.path.join(workdir, "chaos")
        stop = threading.Event()
        kills: list[int] = []
        with FleetSupervisor(_config(chaos_dir, workers, rounds)) as fleet:
            killer = threading.Thread(
                target=lambda: kills.extend(
                    _chaos_killer(fleet, stop, kill_every)
                ),
                daemon=True,
            )
            killer.start()
            chaos = _run_load(fleet, seconds, clients, "chaos")
            stop.set()
            killer.join(timeout=30.0)
            failures.extend(_verify_journal(chaos_dir, chaos))
        chaos_p50, chaos_p99 = chaos.percentiles()
        table.row(
            f"{'chaos':<10} {workers:>7} {chaos.completed:>6} "
            f"{chaos.throughput:>8.1f} {chaos_p50 * 1e3:>9.1f} "
            f"{chaos_p99 * 1e3:>9.1f} {chaos.sheds:>6} {len(kills):>6}"
        )
        failures.extend(chaos.failures)

        # The gates.
        distinct = len(set(chaos.request_ids.values()))
        if distinct != len(chaos.request_ids):
            failures.append(
                f"duplicated executions: {len(chaos.request_ids)} keys "
                f"-> {distinct} request ids"
            )
        if not kills:
            failures.append("chaos phase never killed a worker")
        if chaos.throughput < target_rps:
            failures.append(
                f"goodput {chaos.throughput:.1f} rps under chaos missed "
                f"the planned target {target_rps:.1f} rps"
            )
        if chaos_p50 > base_p50 * P50_CHAOS_MULTIPLIER:
            failures.append(
                f"chaos p50 {chaos_p50 * 1e3:.1f}ms exceeds "
                f"{P50_CHAOS_MULTIPLIER}x baseline {base_p50 * 1e3:.1f}ms"
            )
        if chaos_p99 > P99_BUDGET_SECONDS:
            failures.append(
                f"chaos p99 {chaos_p99:.2f}s exceeds the "
                f"{P99_BUDGET_SECONDS}s budget"
            )
        if chaos.shed_rate > SHED_RATE_BUDGET:
            failures.append(
                f"shed rate {chaos.shed_rate:.3f} exceeds the "
                f"{SHED_RATE_BUDGET} budget"
            )

    table.save()
    if failures:
        print("\n".join(f"FAIL: {f}" for f in failures))
        return 1
    print(
        f"fleet chaos OK: {len(kills)} kill(s), "
        f"{len(chaos.request_ids)} keyed requests, zero lost, "
        f"zero duplicated, goodput {chaos.throughput:.1f} >= "
        f"{target_rps:.1f} rps"
    )
    return 0


def test_fleet_chaos_smoke():
    """Pytest entry point mirroring the standalone smoke gate."""
    assert run_bench(smoke=True) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short CI-sized run with the same gates",
    )
    args = parser.parse_args(argv)
    return run_bench(smoke=args.smoke)


if __name__ == "__main__":
    sys.exit(main())
