"""Fig. 7: dagger sampling vs Monte-Carlo sampling.

The paper's Fig. 7 plots the time to generate failure states for *all*
infrastructure components (hosts, switches, power supplies; links are
perfectly reliable in the default policy) across the four data-center
scales, for 10^3 / 10^4 / 10^5 sampling rounds.

Expected shape: extended dagger sampling is substantially faster than
Monte-Carlo at every scale, and the gap grows with scale and rounds —
in the paper, >10x in the large DC (53 ms vs 1,487 ms at 10^4 rounds).
"""

import time

import numpy as np
import pytest

from repro.sampling.dagger import ExtendedDaggerSampler, dagger_draw_count
from repro.sampling.montecarlo import MonteCarloSampler

from common import ResultTable, bench_rounds, bench_scales, inventory

SAMPLERS = {
    "dagger": ExtendedDaggerSampler(),
    "monte-carlo": MonteCarloSampler(),
}


def _probabilities(scale):
    return inventory(scale).failure_probabilities()


@pytest.mark.parametrize("scale", bench_scales())
@pytest.mark.parametrize("rounds", bench_rounds())
@pytest.mark.parametrize("sampler_name", list(SAMPLERS))
def test_sampling_time(benchmark, scale, rounds, sampler_name):
    """One (scale, rounds, sampler) cell of Fig. 7."""
    probabilities = _probabilities(scale)
    sampler = SAMPLERS[sampler_name]
    rng = np.random.default_rng(7)
    benchmark.pedantic(
        lambda: sampler.sample(probabilities, rounds, rng),
        iterations=1,
        rounds=3,
    )


def _experiment_fig7_table_and_shape():
    """The full Fig. 7 series, plus the who-wins assertion."""
    table = ResultTable(
        "fig7_sampling",
        f"{'scale':<8} {'components':>11} {'rounds':>7} "
        f"{'dagger_ms':>10} {'mc_ms':>9} {'speedup':>8} {'draw_ratio':>11}",
    )
    for scale in bench_scales():
        probabilities = _probabilities(scale)
        active = sum(1 for p in probabilities.values() if p > 0)
        for rounds in bench_rounds():
            timings = {}
            for name, sampler in SAMPLERS.items():
                rng = np.random.default_rng(7)
                best = float("inf")
                for _ in range(3):
                    start = time.perf_counter()
                    sampler.sample(probabilities, rounds, rng)
                    best = min(best, time.perf_counter() - start)
                timings[name] = best * 1e3
            speedup = timings["monte-carlo"] / timings["dagger"]
            draw_ratio = (active * rounds) / max(
                dagger_draw_count(probabilities, rounds), 1
            )
            table.row(
                f"{scale:<8} {active:>11} {rounds:>7} "
                f"{timings['dagger']:>10.1f} {timings['monte-carlo']:>9.1f} "
                f"{speedup:>7.1f}x {draw_ratio:>10.1f}x"
            )
            # Shape: dagger wins at every cell with >= 10^4 rounds.
            if rounds >= 10_000:
                assert timings["dagger"] < timings["monte-carlo"], (scale, rounds)
    table.save()


def _experiment_fig7_gap_grows_with_scale():
    """The dagger advantage increases with data-center scale."""
    scales = bench_scales()
    if len(scales) < 2:
        pytest.skip("need at least two scales")
    rounds = max(bench_rounds())
    speedups = []
    for scale in (scales[0], scales[-1]):
        probabilities = _probabilities(scale)
        times = {}
        for name, sampler in SAMPLERS.items():
            rng = np.random.default_rng(7)
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                sampler.sample(probabilities, rounds, rng)
                best = min(best, time.perf_counter() - start)
            times[name] = best
        speedups.append(times["monte-carlo"] / times["dagger"])
    assert speedups[-1] > speedups[0]

def test_fig7_table_and_shape(benchmark):
    """One-shot benchmarked run of the experiment above."""
    benchmark.pedantic(_experiment_fig7_table_and_shape, iterations=1, rounds=1)

def test_fig7_gap_grows_with_scale(benchmark):
    """One-shot benchmarked run of the experiment above."""
    benchmark.pedantic(_experiment_fig7_gap_grows_with_scale, iterations=1, rounds=1)
