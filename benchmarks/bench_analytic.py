"""Analytic assessor: exactness versus enumeration, hybrid-search payoff.

Two gates for the exact fault-tree evaluation backend:

* ``analytic_exactness`` — the analytic assessor's plan scores must match
  an independent ``2**n`` brute-force enumeration (pure-Python tree
  evaluation through the legacy dense pipeline) to within ``1e-9`` on
  real fat-tree closures, while running orders of magnitude faster than
  the enumeration oracle. This pins the compiled evaluator — shared-root
  conditioning, Poisson-binomial k-of-n propagation, packed reachability
  — to ground truth.
* ``hybrid_search`` — the exact-screen search (``mode="analytic"``) must
  beat the incremental CRN sampled search *at equal trajectory quality*
  by >= 1.5x wall clock. Exact screening is an infinite-round sampler,
  so the sampled baseline is run over a ladder of rounds budgets; the
  equal-quality cost is the cheapest rung whose mean winner quality
  (ground truth of the returned plan) matches the analytic search's. If
  no rung matches — the usual outcome: plan gaps of ~1e-5 sit far below
  sampling noise even at 32x the budget — the top rung's cost is a
  conservative *lower bound* on the equal-quality cost, and the gate
  additionally requires the analytic search's mean quality to be no
  worse than every rung's (zero quality regression).

Results land in ``BENCH_analytic.json`` at the repo root.

Usage::

    python benchmarks/bench_analytic.py            # full run
    python benchmarks/bench_analytic.py --smoke    # CI gate

Also runnable under pytest (``pytest benchmarks/bench_analytic.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from dataclasses import dataclass

if __name__ == "__main__":  # standalone: make src/ importable without install
    _ROOT = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(_ROOT / "src"))

import numpy as np

from repro.app.structure import ApplicationStructure
from repro.core.analytic import AnalyticAssessor
from repro.core.anneal import MoveBudgetTemperatureSchedule
from repro.core.api import AssessmentConfig
from repro.core.evaluation import StructureEvaluator
from repro.core.plan import DeploymentPlan
from repro.core.search import DeploymentSearch, SearchSpec
from repro.faults.inventory import build_paper_inventory
from repro.faults.probability import PaperProbabilityPolicy
from repro.routing.base import RoundStates, engine_for
from repro.topology.base import ComponentType
from repro.topology.fattree import FatTreeTopology

MASTER_SEED = 20170412
#: Plan scores are dot products of ~2**15-entry float64 vectors; 1e-9
#: leaves three orders of magnitude of slack over accumulated rounding.
EXACTNESS_TOLERANCE = 1e-9
SPEEDUP_FLOOR = 1.5
#: Winner-quality comparisons are between exact ground-truth reliabilities
#: of deterministic plans — the epsilon only absorbs float dot-product
#: rounding, not sampling noise.
QUALITY_EPSILON = 1e-12

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_PATH = _REPO_ROOT / "BENCH_analytic.json"


@dataclass(frozen=True)
class HardenedCorePolicy(PaperProbabilityPolicy):
    """Paper probabilities with an infallible core/border layer.

    Hardening the core keeps every 3-replica closure inside the analytic
    state budget (~15 uncertain events instead of ~25), so the search
    workload measures the hybrid exact screen rather than its sampled
    fallback. The aggregation/edge layers and hosts keep the paper's
    stochastic failure model.
    """

    def probability_for(self, component_type, rng):
        if component_type in (
            ComponentType.CORE_SWITCH,
            ComponentType.BORDER_SWITCH,
        ):
            return 0.0
        return super().probability_for(component_type, rng)


# ----------------------------------------------------------------------
# Workload 1: plan-level exactness against brute-force enumeration
# ----------------------------------------------------------------------


def _brute_force_score(assessor, plan, structure) -> float:
    """Independent ``2**n`` oracle through the legacy dense pipeline."""
    topology = assessor.topology
    model = assessor.dependency_model
    subjects, sampled = assessor.closure_for(plan)
    probabilities = model.failure_probabilities()
    uncertain = [c for c in sorted(sampled) if 0.0 < probabilities[c] < 1.0]
    certain = {c for c in sampled if probabilities[c] >= 1.0}
    n = 1 << len(uncertain)
    failed_sets = [
        {uncertain[i] for i in range(len(uncertain)) if (s >> i) & 1} | certain
        for s in range(n)
    ]
    failed: dict[str, np.ndarray] = {}
    for sid in sorted(subjects):
        tree = model.tree_for(sid)
        vector = np.fromiter(
            (tree.evaluate_round(fs) for fs in failed_sets), dtype=bool, count=n
        )
        if vector.any():
            failed[sid] = vector
    for cid in sorted(sampled - set(subjects)):
        if cid in model.trees or cid not in topology.components:
            continue
        vector = np.fromiter((cid in fs for fs in failed_sets), dtype=bool, count=n)
        if vector.any():
            failed[cid] = vector
    states = RoundStates(rounds=n, failed=failed)
    phi = StructureEvaluator(engine_for(topology)).evaluate(states, plan, structure)
    weights = np.ones(n, dtype=np.float64)
    arange = np.arange(n, dtype=np.int64)
    for i, cid in enumerate(uncertain):
        p = probabilities[cid]
        fired = ((arange >> i) & 1).astype(bool)
        weights *= np.where(fired, p, 1.0 - p)
    return float(np.dot(weights, phi))


def bench_analytic_exactness() -> dict:
    """Analytic scores vs brute force on same-rack/cross-rack/cross-pod."""
    topology = FatTreeTopology(4, seed=5)
    model = build_paper_inventory(topology, power_supplies=3, seed=9)
    structure = ApplicationStructure.k_of_n(1, 2)
    app = structure.components[0].name
    config = AssessmentConfig(
        rounds=1_000, master_seed=MASTER_SEED, mode="analytic", kernel=True
    )
    assessor = AnalyticAssessor.from_config(topology, model, config)

    cases = {
        "same_rack": ["host/0/0/0", "host/0/0/1"],
        "cross_rack": ["host/0/0/0", "host/0/1/0"],
        "cross_pod": ["host/0/0/0", "host/1/1/0"],
    }
    rows = []
    for label, hosts in cases.items():
        plan = DeploymentPlan.single_component(hosts, app)
        start = time.perf_counter()
        result = assessor.assess(plan, structure)
        analytic_seconds = time.perf_counter() - start
        start = time.perf_counter()
        oracle = _brute_force_score(assessor, plan, structure)
        oracle_seconds = time.perf_counter() - start
        rows.append(
            {
                "case": label,
                "hosts": hosts,
                "exact": result.estimate.exact,
                "analytic_score": result.estimate.score,
                "oracle_score": oracle,
                "abs_diff": abs(result.estimate.score - oracle),
                "uncertain_events": int(result.sampled_components),
                "analytic_seconds": analytic_seconds,
                "oracle_seconds": oracle_seconds,
            }
        )
    return {
        "workload": "analytic_exactness",
        "tolerance": EXACTNESS_TOLERANCE,
        "max_abs_diff": max(r["abs_diff"] for r in rows),
        "cases": rows,
    }


# ----------------------------------------------------------------------
# Workload 2: hybrid exact-screen search vs sampled baseline ladder
# ----------------------------------------------------------------------


def _search_substrate():
    topology = FatTreeTopology(4, seed=1, probability_policy=HardenedCorePolicy())
    model = build_paper_inventory(topology, power_supplies=3, seed=2)
    return topology, model


def _run_search(mode: str, structure, rounds: int, moves: int, seed: int):
    topology, model = _search_substrate()
    config = AssessmentConfig(
        rounds=rounds, master_seed=MASTER_SEED, mode=mode, kernel=True
    )
    search = DeploymentSearch.from_config(
        topology,
        model,
        config=config,
        rng=seed,
        batch_size=2,
        temperature_schedule=MoveBudgetTemperatureSchedule(moves),
    )
    spec = SearchSpec(
        structure=structure,
        max_seconds=3_600.0,
        max_iterations=moves,
        forbid_shared_rack=True,
    )
    start = time.perf_counter()
    result = search.search(spec)
    return time.perf_counter() - start, result.best_plan


def _ground_truth(plan, structure) -> float:
    """Exact reliability of a winner, from a generously-budgeted assessor."""
    topology, model = _search_substrate()
    config = AssessmentConfig(
        rounds=1_000,
        master_seed=1,
        mode="analytic",
        kernel=True,
        analytic_state_bits=22,
    )
    assessor = AnalyticAssessor.from_config(topology, model, config)
    result = assessor.assess(plan, structure)
    if not result.estimate.exact:
        raise RuntimeError(
            f"ground-truth closure for {sorted(plan.hosts())} not tractable: "
            f"{assessor.explain(plan)}"
        )
    return result.estimate.score


def bench_hybrid_search(
    moves: int = 300,
    seeds: tuple[int, ...] = (7, 8, 9),
    ladder: tuple[int, ...] = (10_000, 40_000, 160_000),
    fallback_rounds: int = 10_000,
) -> dict:
    """Race the exact screen against the sampled search at equal quality.

    Both searches run the same annealing loop (same move budget, batch
    size, proposal seeds); only the assessment differs. Winner quality is
    the ground-truth reliability of the returned plan, so a quality
    comparison between the two searches is exact, not estimated.
    """
    structure = ApplicationStructure.k_of_n(2, 3)

    analytic_times, analytic_quality = [], []
    for seed in seeds:
        seconds, winner = _run_search(
            "analytic", structure, fallback_rounds, moves, seed
        )
        analytic_times.append(seconds)
        analytic_quality.append(_ground_truth(winner, structure))
    analytic_seconds = float(np.mean(analytic_times))
    analytic_mean_quality = float(np.mean(analytic_quality))

    rungs = []
    for rounds in ladder:
        times, quality = [], []
        for seed in seeds:
            seconds, winner = _run_search(
                "incremental", structure, rounds, moves, seed
            )
            times.append(seconds)
            quality.append(_ground_truth(winner, structure))
        mean_quality = float(np.mean(quality))
        rungs.append(
            {
                "rounds": rounds,
                "seconds": float(np.mean(times)),
                "mean_quality": mean_quality,
                "matches_analytic": mean_quality
                >= analytic_mean_quality - QUALITY_EPSILON,
            }
        )

    matched = [r for r in rungs if r["matches_analytic"]]
    if matched:
        equal_quality_seconds = min(r["seconds"] for r in matched)
        equal_quality_bound = "matched"
    else:
        # No budget on the ladder matched the exact screen's quality; the
        # top rung's cost under-states the true equal-quality cost.
        equal_quality_seconds = rungs[-1]["seconds"]
        equal_quality_bound = "lower-bound"

    return {
        "workload": "hybrid_search",
        "structure": "2-of-3",
        "moves": moves,
        "seeds": list(seeds),
        "fallback_rounds": fallback_rounds,
        "analytic_seconds": analytic_seconds,
        "analytic_mean_quality": analytic_mean_quality,
        "rungs": rungs,
        "equal_quality_seconds": equal_quality_seconds,
        "equal_quality_bound": equal_quality_bound,
        "speedup": equal_quality_seconds / max(analytic_seconds, 1e-12),
    }


# ----------------------------------------------------------------------
# Reporting and gates
# ----------------------------------------------------------------------


def _report(row: dict) -> str:
    if row["workload"] == "analytic_exactness":
        worst = max(row["cases"], key=lambda c: c["abs_diff"])
        ratio = worst["oracle_seconds"] / max(worst["analytic_seconds"], 1e-9)
        return (
            f"{row['workload']:<18} max|diff|={row['max_abs_diff']:.2e} over "
            f"{len(row['cases'])} plans; worst case {worst['case']} "
            f"({worst['uncertain_events']} events) analytic "
            f"{worst['analytic_seconds'] * 1e3:.1f}ms vs enumeration "
            f"{worst['oracle_seconds']:.2f}s ({ratio:.0f}x)"
        )
    rung_text = " ".join(
        f"{r['rounds'] // 1000}k={r['mean_quality']:.6f}@{r['seconds']:.2f}s"
        for r in row["rungs"]
    )
    return (
        f"{row['workload']:<18} analytic {row['analytic_mean_quality']:.6f}@"
        f"{row['analytic_seconds']:.2f}s vs sampled [{rung_text}] "
        f"equal-quality speedup {row['speedup']:.2f}x "
        f"({row['equal_quality_bound']})"
    )


def _check(rows: list[dict]) -> list[str]:
    """Gate failures (empty = all gates met)."""
    exact = next(r for r in rows if r["workload"] == "analytic_exactness")
    search = next(r for r in rows if r["workload"] == "hybrid_search")
    failures = []
    for case in exact["cases"]:
        if not case["exact"]:
            failures.append(
                f"exactness case {case['case']} fell back to sampling"
            )
    if exact["max_abs_diff"] > EXACTNESS_TOLERANCE:
        failures.append(
            f"analytic deviates from enumeration by {exact['max_abs_diff']:.2e} "
            f"(tolerance {EXACTNESS_TOLERANCE:.0e})"
        )
    for rung in search["rungs"]:
        if (
            search["analytic_mean_quality"]
            < rung["mean_quality"] - QUALITY_EPSILON
        ):
            failures.append(
                f"analytic winner quality {search['analytic_mean_quality']:.9f} "
                f"trails the {rung['rounds']}-round sampled search "
                f"({rung['mean_quality']:.9f})"
            )
    if search["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"equal-quality speedup {search['speedup']:.2f}x below the "
            f"{SPEEDUP_FLOOR}x floor"
        )
    return failures


def _write_results(rows: list[dict]) -> None:
    payload = {
        "benchmark": "analytic exactness and hybrid exact-screen search",
        "master_seed": MASTER_SEED,
        "exactness_tolerance": EXACTNESS_TOLERANCE,
        "speedup_floor": SPEEDUP_FLOOR,
        "quality_epsilon": QUALITY_EPSILON,
        "rows": rows,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")


def run_smoke() -> int:
    """CI gate: exactness vs enumeration plus the hybrid-search floor."""
    rows = [
        bench_analytic_exactness(),
        bench_hybrid_search(
            moves=200, seeds=(7, 8), ladder=(10_000, 160_000)
        ),
    ]
    for row in rows:
        print(_report(row))
    failures = _check(rows)
    assert not failures, "; ".join(failures)
    _write_results(rows)
    print(
        "smoke OK: analytic matches the 2**n enumeration and the exact "
        "screen meets the equal-quality speedup floor"
    )
    return 0


def run_full(moves: int) -> int:
    rows = [
        bench_analytic_exactness(),
        bench_hybrid_search(
            moves=moves,
            seeds=(7, 8, 9),
            ladder=(10_000, 40_000, 160_000, 320_000),
        ),
    ]
    for row in rows:
        print(_report(row))
    failures = _check(rows)
    for failure in failures:
        print(f"  !! {failure}")
    _write_results(rows)
    return 1 if failures else 0


def test_analytic_smoke():
    """Pytest entry point mirroring the CI smoke gate."""
    assert run_smoke() == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate: exactness check + 1.5x equal-quality search floor",
    )
    parser.add_argument("--moves", type=int, default=300)
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    return run_full(moves=args.moves)


if __name__ == "__main__":
    sys.exit(main())
