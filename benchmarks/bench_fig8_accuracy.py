"""Fig. 8: accuracy of deployment assessment.

The paper's Fig. 8 plots the 95 % confidence-interval width of the
reliability assessment against the number of sampling rounds, for the
four K-of-N redundancy settings. Expected shape: the CI width decreases
as ~n^-1/2 with the round count, and 10^4 rounds put it in the 1e-3/1e-4
range the paper calls "normally sufficient".

Where the closure is tractable, the analytic backend supplies an *exact*
ground truth, upgrading the accuracy story from "the CI shrinks" to "the
CI shrinks around the true value": sampled intervals must contain the
exact reliability and the absolute error must fall with the round count.
"""

import math

import pytest

from repro.core.analytic import AnalyticAssessor
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.app.structure import ApplicationStructure
from repro.faults.inventory import build_paper_inventory
from repro.topology.fattree import FatTreeTopology

from repro.core.api import AssessmentConfig

from common import (
    REDUNDANCY_SETTINGS,
    ResultTable,
    bench_rounds,
    bench_scales,
    inventory,
    topology,
)


def _scale():
    return bench_scales()[-1]  # the largest configured DC


def _ci_width(scale, k, n, rounds, seed):
    topo = topology(scale)
    structure = ApplicationStructure.k_of_n(k, n)
    plan = DeploymentPlan.random(topo, structure, rng=seed)
    assessor = ReliabilityAssessor(topo, inventory(scale), config=AssessmentConfig(rounds=rounds, rng=seed + 1))
    return assessor.assess(plan, structure).estimate.confidence_interval_width


def _experiment_fig8_table_and_shape():
    scale = _scale()
    rounds_sweep = sorted(set(bench_rounds()) | {1_000, 10_000})
    table = ResultTable(
        "fig8_accuracy",
        f"{'redundancy':<12} " + " ".join(f"{f'n={r}':>12}" for r in rounds_sweep),
    )
    for k, n in REDUNDANCY_SETTINGS:
        widths = [_ci_width(scale, k, n, rounds, seed=17) for rounds in rounds_sweep]
        table.row(
            f"{f'{k}-of-{n}':<12} " + " ".join(f"{w:>12.2e}" for w in widths)
        )
        # Shape: width decreases with rounds at roughly n^-1/2. A width of
        # exactly 0 means every round was reliable (the estimate saturated
        # at 1.0, possible for 1-of-2 on small DCs at few rounds), which
        # carries no slope information - skip those cells.
        if widths[0] == 0.0 or widths[-1] == 0.0:
            continue
        assert widths[-1] < widths[0]
        expected_ratio = math.sqrt(rounds_sweep[-1] / rounds_sweep[0])
        observed_ratio = widths[0] / max(widths[-1], 1e-12)
        assert observed_ratio > expected_ratio / 3
    table.save()


def _experiment_fig8_exact_ground_truth():
    """Sampled CIs converge around the analytic backend's exact value.

    The paper can only show CI *widths* shrinking; with the analytic
    evaluator the true reliability is known exactly on small fabrics, so
    the claim sharpens to calibration: across seeds, ~95 % of intervals
    contain the exact value, and the mean absolute error falls as rounds
    grow. Runs on a k=4 fat-tree where every 2-replica closure fits the
    tractability budget; larger presets would decline to sampling and
    carry no ground truth.
    """
    topo = FatTreeTopology(4, seed=5)
    model = build_paper_inventory(topo, power_supplies=3, seed=9)
    structure = ApplicationStructure.k_of_n(1, 2)
    plan = DeploymentPlan.random(topo, structure, rng=3)
    analytic = AnalyticAssessor.from_config(
        topo,
        model,
        AssessmentConfig(rounds=1_000, master_seed=1, mode="analytic",
                         kernel=True),
    )
    result = analytic.assess(plan, structure)
    assert result.estimate.exact, analytic.explain(plan)
    truth = result.estimate.score

    rounds_sweep = (1_000, 10_000, 100_000)
    seeds = range(5)
    table = ResultTable(
        "fig8_exact_ground_truth",
        f"{'rounds':>8} {'mean |err|':>12} {'CI contains truth':>18}",
    )
    mean_errors = []
    for rounds in rounds_sweep:
        contained, errors = 0, []
        for seed in seeds:
            estimate = (
                ReliabilityAssessor(
                    topo,
                    model,
                    config=AssessmentConfig(rounds=rounds, rng=31 + seed),
                )
                .assess(plan, structure)
                .estimate
            )
            errors.append(abs(estimate.score - truth))
            contained += (
                estimate.ci_lower - 1e-12 <= truth <= estimate.ci_upper + 1e-12
            )
        mean_error = sum(errors) / len(errors)
        mean_errors.append(mean_error)
        table.row(f"{rounds:>8} {mean_error:>12.2e} {contained:>13}/{len(errors)}")
        # 95 % intervals: allow one miss in five seeds.
        assert contained >= len(errors) - 1
    table.save()
    assert mean_errors[-1] < mean_errors[0]


def _experiment_fig8_10k_rounds_sufficient():
    """At 10^4 rounds the CI width reaches the paper's 'sufficient' zone."""
    width = _ci_width(_scale(), 4, 5, 10_000, seed=23)
    assert width < 2e-2


@pytest.mark.parametrize("rounds", bench_rounds())
def test_assessment_time_vs_rounds(benchmark, rounds):
    """Cost side of the accuracy trade-off (context for Fig. 8)."""
    scale = _scale()
    topo = topology(scale)
    structure = ApplicationStructure.k_of_n(4, 5)
    plan = DeploymentPlan.random(topo, structure, rng=5)
    assessor = ReliabilityAssessor(topo, inventory(scale), config=AssessmentConfig(rounds=rounds, rng=6))
    benchmark.pedantic(
        lambda: assessor.assess(plan, structure), iterations=1, rounds=3
    )

def test_fig8_table_and_shape(benchmark):
    """One-shot benchmarked run of the experiment above."""
    benchmark.pedantic(_experiment_fig8_table_and_shape, iterations=1, rounds=1)

def test_fig8_10k_rounds_sufficient(benchmark):
    """One-shot benchmarked run of the experiment above."""
    benchmark.pedantic(_experiment_fig8_10k_rounds_sufficient, iterations=1, rounds=1)

def test_fig8_exact_ground_truth(benchmark):
    """One-shot benchmarked run of the experiment above."""
    benchmark.pedantic(_experiment_fig8_exact_ground_truth, iterations=1, rounds=1)
