"""Shared infrastructure for the paper-reproduction benchmarks.

Each bench module regenerates one table or figure of the paper. Scales
and budgets default to values that complete on a laptop in minutes;
environment variables unlock the paper's full settings:

``REPRO_BENCH_SCALES``
    Comma-separated data-center scales (default ``tiny,small,medium``).
    Use ``tiny,small,medium,large`` — or ``all`` — for the paper's full
    Table 2 sweep (the large DC has 27,072 hosts; building it takes a
    couple of minutes and a few GiB of RAM).
``REPRO_BENCH_ROUNDS``
    Comma-separated sampling-round counts (default ``1000,10000``).
    The paper sweeps ``1000,10000,100000``.
``REPRO_BENCH_SEARCH_BUDGETS``
    Comma-separated search budgets in seconds for the Fig. 9 bench
    (default ``3,6,15``; the paper uses ``3,6,15,30,60,150,300``).

Every bench prints the same rows the paper reports and appends them to
``benchmarks/results/<experiment>.txt`` so the numbers that went into
EXPERIMENTS.md are reproducible artifacts.
"""

from __future__ import annotations

import os
import pathlib
from functools import lru_cache

from repro.faults.dependencies import DependencyModel
from repro.faults.inventory import build_paper_inventory
from repro.topology.fattree import FatTreeTopology
from repro.topology.presets import SCALE_ORDER, paper_topology
from repro.workload.model import HostWorkloadModel

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Seeds fixed across benches so every experiment sees the same DC.
TOPOLOGY_SEED = 1
INVENTORY_SEED = 2
WORKLOAD_SEED = 3

#: The paper's K-of-N redundancy settings (Figs. 8-10).
REDUNDANCY_SETTINGS = ((1, 2), (2, 3), (4, 5), (8, 10))


def _env_list(name: str, default: str) -> list[str]:
    raw = os.environ.get(name, default)
    return [item.strip() for item in raw.split(",") if item.strip()]


def bench_scales() -> list[str]:
    """The data-center scales this bench run covers."""
    scales = _env_list("REPRO_BENCH_SCALES", "tiny,small,medium")
    if scales == ["all"]:
        scales = list(SCALE_ORDER)
    unknown = set(scales) - set(SCALE_ORDER)
    if unknown:
        raise ValueError(f"unknown scales in REPRO_BENCH_SCALES: {sorted(unknown)}")
    return [s for s in SCALE_ORDER if s in scales]


def bench_rounds() -> list[int]:
    """The sampling-round counts this bench run sweeps."""
    return [int(r) for r in _env_list("REPRO_BENCH_ROUNDS", "1000,10000")]


def search_budgets() -> list[float]:
    """Fig. 9 search-time budgets in seconds."""
    return [float(b) for b in _env_list("REPRO_BENCH_SEARCH_BUDGETS", "3,6,15")]


@lru_cache(maxsize=None)
def topology(scale: str) -> FatTreeTopology:
    """The (cached) paper topology for one scale."""
    return paper_topology(scale, seed=TOPOLOGY_SEED)


@lru_cache(maxsize=None)
def inventory(scale: str) -> DependencyModel:
    """The §4.1 inventory (5 power supplies) for one scale."""
    return build_paper_inventory(topology(scale), seed=INVENTORY_SEED)


@lru_cache(maxsize=None)
def workload(scale: str) -> HostWorkloadModel:
    """The §4.2.2 workload model for one scale."""
    return HostWorkloadModel.paper_default(topology(scale), seed=WORKLOAD_SEED)


class ResultTable:
    """Collects experiment rows, prints them, and persists them."""

    def __init__(self, experiment: str, header: str):
        self.experiment = experiment
        self.lines: list[str] = [header, "-" * len(header)]
        print(f"\n=== {experiment} ===")
        print(header)
        print("-" * len(header))

    def row(self, line: str) -> None:
        self.lines.append(line)
        print(line)

    def save(self) -> pathlib.Path:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"{self.experiment}.txt"
        path.write_text("\n".join(self.lines) + "\n")
        return path
