"""Fault-tolerance overhead of the supervised parallel runtime.

The paper's §3.2.1 parallel assessment assumes cooperative workers; the
supervised runtime adds per-portion retry, hang detection and pool
restarts so a worker crash degrades throughput instead of wedging the
assessment. This bench quantifies what that supervision costs:

* **baseline** — healthy pool, no faults injected. The delta against the
  seed's blocking ``pool.map`` is the price of per-portion supervision.
* **fault sweep** — ``ChaosPolicy`` rate-mode injection at increasing
  portion fault rates. Reported recovery latency is the extra wall-clock
  over the healthy baseline, i.e. the cost of detection + retry.

Environment knobs follow ``benchmarks/common.py``; additionally:

``REPRO_BENCH_FAULT_RATES``
    Comma-separated portion fault rates (default ``0.0,0.1,0.25,0.5``).
"""

import os
import time

import pytest

from repro.app.structure import ApplicationStructure
from repro.core.plan import DeploymentPlan
from repro.runtime.chaos import ChaosPolicy
from repro.runtime.mapreduce import ParallelAssessor, RetryPolicy

from common import ResultTable, _env_list, bench_scales, inventory, topology
from repro.core.api import AssessmentConfig

WORKERS = 4
ROUNDS = 100_000
STRUCTURE = ApplicationStructure.k_of_n(4, 5)


def fault_rates() -> list[float]:
    return [
        float(r)
        for r in _env_list("REPRO_BENCH_FAULT_RATES", "0.0,0.1,0.25,0.5")
    ]


def _measure(scale, rate, kinds=("crash", "error"), repetitions=3):
    topo = topology(scale)
    plan = DeploymentPlan.random(topo, STRUCTURE, rng=6)
    chaos = (
        ChaosPolicy(rate=rate, kinds=kinds, seed=11) if rate > 0 else None
    )
    with ParallelAssessor(topo, inventory(scale), config=AssessmentConfig(mode="parallel", rounds=ROUNDS, workers=WORKERS, rng=5, backend="process", retry_policy=RetryPolicy(max_retries=3, backoff_seconds=0.01), chaos=chaos)) as assessor:
        best_ms, result = float("inf"), None
        for _ in range(repetitions):
            start = time.perf_counter()
            result = assessor.assess(plan, STRUCTURE)
            best_ms = min(best_ms, (time.perf_counter() - start) * 1e3)
    return best_ms, result


def _experiment_fault_overhead():
    scale = bench_scales()[0]
    table = ResultTable(
        "runtime_faults",
        f"{'fault rate':>10} {'time (ms)':>10} {'recovery (ms)':>14} "
        f"{'retries':>8} {'restarts':>9} {'inline':>7} {'R':>9}",
    )
    baseline_ms = None
    for rate in fault_rates():
        ms, result = _measure(scale, rate)
        if baseline_ms is None:
            baseline_ms = ms
        recovery = ms - baseline_ms
        runtime = result.runtime
        table.row(
            f"{rate:>10.2f} {ms:>10.1f} {recovery:>14.1f} "
            f"{runtime.retries:>8} {runtime.pool_restarts:>9} "
            f"{runtime.recovered_inline:>7} {result.score:>9.5f}"
        )
        # Supervision must deliver the full round count even under
        # faults — recovery, not silent loss, is the whole point.
        assert result.per_round.size == ROUNDS
        assert not result.degraded
    table.save()


def test_fault_overhead_table(benchmark):
    """One-shot benchmarked run of the fault-rate sweep above."""
    benchmark.pedantic(_experiment_fault_overhead, iterations=1, rounds=1)


@pytest.mark.parametrize("rate", [0.0, 0.25])
def test_assessment_under_faults(benchmark, rate):
    scale = bench_scales()[0]
    benchmark.pedantic(
        lambda: _measure(scale, rate, repetitions=1), iterations=1, rounds=2
    )
