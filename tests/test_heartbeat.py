"""Heartbeat tracking and restart policy, driven by a fake clock."""

from __future__ import annotations

import pytest

from repro.service.heartbeat import HeartbeatTracker, RestartPolicy


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestHeartbeatTracker:
    def test_age_tracks_the_last_beat(self, clock):
        tracker = HeartbeatTracker(clock=clock)
        tracker.beat("shard-0")
        clock.advance(1.5)
        assert tracker.age("shard-0") == pytest.approx(1.5)
        tracker.beat("shard-0")
        assert tracker.age("shard-0") == pytest.approx(0.0)

    def test_unknown_workers_have_no_age_and_are_not_missed(self, clock):
        tracker = HeartbeatTracker(clock=clock)
        assert tracker.age("ghost") is None
        # Never-beat workers are the caller's startup problem, not a
        # missed-heartbeat death.
        assert not tracker.missed("ghost", 0.1, 3)

    def test_missed_after_k_whole_intervals(self, clock):
        tracker = HeartbeatTracker(clock=clock)
        tracker.beat("shard-0")
        clock.advance(0.3 * 3)  # exactly K intervals: not yet missed
        assert not tracker.missed("shard-0", 0.3, 3)
        clock.advance(0.01)
        assert tracker.missed("shard-0", 0.3, 3)

    def test_beat_resets_missed(self, clock):
        tracker = HeartbeatTracker(clock=clock)
        tracker.beat("shard-0")
        clock.advance(10.0)
        assert tracker.missed("shard-0", 0.25, 8)
        tracker.beat("shard-0")
        assert not tracker.missed("shard-0", 0.25, 8)

    def test_snapshot_carries_busy_annotations_and_counts(self, clock):
        tracker = HeartbeatTracker(clock=clock)
        tracker.beat("shard-1", busy=True)
        tracker.beat("shard-0")
        tracker.annotate("shard-1", shard=1, pid=4242, status="alive")
        clock.advance(0.5)
        rows = tracker.snapshot()
        assert [row["name"] for row in rows] == ["shard-0", "shard-1"]
        busy = rows[1]
        assert busy["busy"] is True
        assert busy["beats"] == 1
        assert busy["pid"] == 4242
        assert busy["heartbeat_age_seconds"] == pytest.approx(0.5)

    def test_forget_removes_worker_and_metadata(self, clock):
        tracker = HeartbeatTracker(clock=clock)
        tracker.beat("shard-0")
        tracker.annotate("shard-0", pid=1)
        tracker.forget("shard-0")
        assert tracker.age("shard-0") is None
        assert tracker.snapshot() == []


class TestRestartPolicy:
    def _policy(self, clock, **overrides):
        defaults = dict(
            backoff_seconds=0.25,
            backoff_cap_seconds=5.0,
            quarantine_restarts=3,
            quarantine_window_seconds=30.0,
            clock=clock,
        )
        defaults.update(overrides)
        return RestartPolicy(**defaults)

    def test_backoff_doubles_and_caps(self, clock):
        policy = self._policy(clock, quarantine_restarts=10)
        delays = [policy.record_failure("shard-0") for _ in range(6)]
        assert delays == [0.25, 0.5, 1.0, 2.0, 4.0, 5.0]

    def test_flapping_worker_is_quarantined(self, clock):
        policy = self._policy(clock)
        for _ in range(3):
            assert policy.record_failure("shard-0") is not None
        assert policy.record_failure("shard-0") is None
        assert policy.is_quarantined("shard-0")
        # Quarantine is sticky: further failures never yield a delay.
        assert policy.record_failure("shard-0") is None

    def test_restart_history_ages_out_of_the_window(self, clock):
        policy = self._policy(clock)
        policy.record_failure("shard-0")
        policy.record_failure("shard-0")
        clock.advance(31.0)  # a full window of stability
        assert policy.restarts("shard-0") == 0
        # The next failure starts the backoff ladder from the bottom.
        assert policy.record_failure("shard-0") == 0.25

    def test_workers_are_tracked_independently(self, clock):
        policy = self._policy(clock)
        policy.record_failure("shard-0")
        assert policy.record_failure("shard-1") == 0.25
        assert policy.restarts("shard-0") == 1
        assert policy.restarts("shard-1") == 1

    def test_reinstate_clears_quarantine(self, clock):
        policy = self._policy(clock, quarantine_restarts=1)
        policy.record_failure("shard-0")
        assert policy.record_failure("shard-0") is None
        policy.reinstate("shard-0")
        assert not policy.is_quarantined("shard-0")
        assert policy.record_failure("shard-0") == 0.25

    def test_total_restarts_survive_the_window(self, clock):
        policy = self._policy(clock)
        policy.record_failure("shard-0")
        clock.advance(100.0)
        policy.record_failure("shard-0")
        assert policy.restarts("shard-0") == 1  # windowed
        assert policy.total_restarts("shard-0") == 2  # lifetime
