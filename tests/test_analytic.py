"""The analytic assessor: exact evaluation checked against brute force.

Property tests for the third assessment backend:

* :func:`repro.kernel.exact.exact_tree_probability` against the ``2**n``
  enumeration oracle (:func:`~repro.faults.faulttree.exact_failure_probability`),
  including trees with shared (repeated) basic events and k-of-n gates
  far beyond the enumeration limit;
* plan-level exact scores against an independent pure-Python brute force
  that enumerates every joint failure state through the *legacy* dense
  pipeline (different engine code path, same answer);
* CI containment: sampled confidence intervals must contain the exact
  value across seeds;
* decline-and-fallback: an intractable closure must produce exactly the
  sampling assessor's estimate, bit for bit;
* hybrid ``score_plans``: exact and sampled entries merge in order;
* config validation, determinism across fresh assessors, serialization
  of exact estimates, and the analytic search mode end to end.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.app.structure import ApplicationStructure
from repro.core.analytic import AnalyticAssessor
from repro.core.api import AssessmentConfig, build_assessor
from repro.core.evaluation import StructureEvaluator
from repro.core.plan import DeploymentPlan
from repro.core.search import DeploymentSearch, SearchSpec
from repro.faults.faulttree import (
    FaultTree,
    and_gate,
    basic,
    exact_failure_probability,
    k_of_n_gate,
    or_gate,
)
from repro.faults.inventory import (
    build_paper_inventory,
    build_rich_inventory,
    build_zone_inventory,
)
from repro.kernel import ComponentArena, CompiledForest
from repro.kernel.exact import (
    ExactBudget,
    ExactDeclined,
    compute_marginals,
    enumeration_rows,
    enumeration_weights,
    exact_tree_probability,
)
from repro.routing.base import RoundStates, engine_for
from repro.sampling.statistics import exact_estimate
from repro.serialization import estimate_from_dict, estimate_to_dict
from repro.topology.fattree import FatTreeTopology
from repro.topology.zones import MultiZoneTopology
from repro.util.errors import ConfigurationError, ValidationError

TOPO = FatTreeTopology(4, seed=5)
MODEL = build_paper_inventory(TOPO, power_supplies=3, seed=9)
STRUCTURE = ApplicationStructure.k_of_n(1, 2)
APP = STRUCTURE.components[0].name


def plan_for(*hosts: str) -> DeploymentPlan:
    return DeploymentPlan.single_component(list(hosts), APP)


def brute_force_score(assessor: AnalyticAssessor, plan, structure) -> float:
    """Independent plan-level oracle: enumerate all joint failure states
    through the legacy dense pipeline (pure-Python tree evaluation, dense
    boolean round states, the generic engine construction path)."""
    topology = assessor.topology
    model = assessor.dependency_model
    subjects, sampled = assessor.closure_for(plan)
    probabilities = model.failure_probabilities()
    uncertain = [c for c in sorted(sampled) if 0.0 < probabilities[c] < 1.0]
    certain = {c for c in sampled if probabilities[c] >= 1.0}
    n = 1 << len(uncertain)
    failed_sets = [
        {uncertain[i] for i in range(len(uncertain)) if (s >> i) & 1} | certain
        for s in range(n)
    ]
    failed: dict[str, np.ndarray] = {}
    for sid in sorted(subjects):
        tree = model.tree_for(sid)
        vector = np.fromiter(
            (tree.evaluate_round(fs) for fs in failed_sets), dtype=bool, count=n
        )
        if vector.any():
            failed[sid] = vector
    for cid in sorted(sampled - set(subjects)):
        if cid in model.trees or cid not in topology.components:
            continue
        vector = np.fromiter((cid in fs for fs in failed_sets), dtype=bool, count=n)
        if vector.any():
            failed[cid] = vector
    states = RoundStates(rounds=n, failed=failed)
    phi = StructureEvaluator(engine_for(topology)).evaluate(states, plan, structure)
    weights = np.ones(n, dtype=np.float64)
    arange = np.arange(n, dtype=np.int64)
    for i, cid in enumerate(uncertain):
        p = probabilities[cid]
        fired = ((arange >> i) & 1).astype(bool)
        weights *= np.where(fired, p, 1.0 - p)
    return float(np.dot(weights, phi))


class TestExactTreeProbability:
    def test_matches_enumeration_on_inventory_trees(self):
        model = build_rich_inventory(FatTreeTopology(4, seed=2), seed=4)
        probabilities = model.failure_probabilities()
        checked = 0
        for sid in sorted(model.trees)[:8]:
            tree = model.tree_for(sid)
            if len(tree.basic_events()) > 20:
                continue
            oracle = exact_failure_probability(tree, probabilities)
            assert exact_tree_probability(tree, probabilities) == pytest.approx(
                oracle, abs=1e-12
            )
            checked += 1
        assert checked >= 4

    def test_shared_events_are_conditioned_exactly(self):
        # `a` appears under both OR branches: naive independent
        # propagation would square its contribution; conditioning keeps
        # it exact.
        tree = FaultTree(
            subject_id="s",
            root=and_gate(or_gate(basic("a"), basic("b")), or_gate(basic("a"), basic("c"))),
        )
        probabilities = {"a": 0.3, "b": 0.2, "c": 0.45}
        oracle = exact_failure_probability(tree, probabilities)
        assert exact_tree_probability(tree, probabilities) == pytest.approx(
            oracle, abs=1e-15
        )
        # And the naive (wrong) value is measurably different, so this
        # test actually discriminates.
        naive = (1 - 0.7 * 0.8) * (1 - 0.7 * 0.55)
        assert abs(oracle - naive) > 1e-3

    def test_shared_kofn_gate(self):
        shared = [basic(f"e{i}") for i in range(4)]
        tree = FaultTree(
            subject_id="s",
            root=or_gate(
                k_of_n_gate(2, *shared), and_gate(basic("e0"), basic("x"))
            ),
        )
        probabilities = {f"e{i}": 0.1 * (i + 1) for i in range(4)}
        probabilities["x"] = 0.35
        oracle = exact_failure_probability(tree, probabilities)
        assert exact_tree_probability(tree, probabilities) == pytest.approx(
            oracle, abs=1e-15
        )

    def test_large_kofn_is_polynomial_not_enumerated(self):
        # 30 events: 2**30 enumeration is intractable (the legacy oracle
        # refuses); the Poisson-binomial DP matches the binomial closed
        # form directly.
        n, threshold, p = 30, 8, 0.07
        tree = FaultTree(
            subject_id="fleet",
            root=k_of_n_gate(threshold, *[basic(f"w{i}") for i in range(n)]),
        )
        probabilities = {f"w{i}": p for i in range(n)}
        with pytest.raises(ConfigurationError):
            exact_failure_probability(tree, probabilities)
        closed_form = sum(
            math.comb(n, j) * p**j * (1 - p) ** (n - j)
            for j in range(threshold, n + 1)
        )
        assert exact_tree_probability(tree, probabilities) == pytest.approx(
            closed_form, abs=1e-12
        )

    def test_declines_over_budget_instead_of_truncating(self):
        tree = FaultTree(
            subject_id="s",
            root=and_gate(or_gate(basic("a"), basic("b")), or_gate(basic("a"), basic("c"))),
        )
        probabilities = {"a": 0.3, "b": 0.2, "c": 0.45}
        with pytest.raises(ExactDeclined):
            exact_tree_probability(
                tree, probabilities, budget=ExactBudget(shared_bits=0, state_bits=0)
            )


class TestEnumeration:
    def test_rows_encode_every_state(self):
        rows = enumeration_rows(3)
        assert len(rows) == 3
        for i, row in enumerate(rows):
            dense = np.unpackbits(row, count=8).astype(bool)
            expected = [(s >> i) & 1 == 1 for s in range(8)]
            assert dense.tolist() == expected

    def test_weights_sum_to_one_and_match_products(self):
        probabilities = [0.1, 0.5, 0.25]
        weights = enumeration_weights(probabilities)
        assert weights.sum() == pytest.approx(1.0, abs=1e-12)
        for s in range(8):
            expected = 1.0
            for i, p in enumerate(probabilities):
                expected *= p if (s >> i) & 1 else 1.0 - p
            assert weights[s] == pytest.approx(expected, abs=1e-15)


@pytest.fixture(scope="module")
def analytic() -> AnalyticAssessor:
    return build_assessor(
        TOPO, MODEL, AssessmentConfig(mode="analytic", rounds=4000, rng=11)
    )


class TestAnalyticAssessor:
    def test_exact_matches_brute_force(self, analytic):
        plan = plan_for("host/0/0/0", "host/0/0/1")
        result = analytic.assess(plan, STRUCTURE)
        assert result.estimate.exact
        assert result.estimate.confidence_interval_width == 0.0
        oracle = brute_force_score(analytic, plan, STRUCTURE)
        assert result.estimate.score == pytest.approx(oracle, abs=1e-12)

    def test_exact_matches_brute_force_across_racks(self, analytic):
        plan = plan_for("host/0/0/0", "host/0/1/1")
        result = analytic.assess(plan, STRUCTURE)
        assert result.estimate.exact
        oracle = brute_force_score(analytic, plan, STRUCTURE)
        assert result.estimate.score == pytest.approx(oracle, abs=1e-12)

    def test_sampled_cis_contain_the_exact_value(self, analytic):
        plan = plan_for("host/0/0/0", "host/0/0/1")
        exact = analytic.assess(plan, STRUCTURE).estimate.score
        contained = 0
        for seed in range(5):
            sampled = build_assessor(
                TOPO, MODEL, AssessmentConfig(rounds=20_000, rng=seed)
            ).assess(plan, STRUCTURE)
            assert not sampled.estimate.exact
            contained += sampled.estimate.contains(exact)
        # 95 % intervals: all five containing is the overwhelmingly
        # likely outcome; demand at least four to stay noise-proof.
        assert contained >= 4

    def test_exact_results_are_deterministic_across_assessors(self, analytic):
        plan = plan_for("host/1/0/0", "host/1/1/0")
        fresh = build_assessor(
            TOPO, MODEL, AssessmentConfig(mode="analytic", rounds=4000, rng=99)
        )
        first = analytic.assess(plan, STRUCTURE).estimate.score
        second = fresh.assess(plan, STRUCTURE).estimate.score
        assert first == second  # bit-equal, not approx

    def test_exact_results_are_memoized(self, analytic):
        plan = plan_for("host/2/0/0", "host/2/0/1")
        first = analytic.assess(plan, STRUCTURE)
        second = analytic.assess(plan, STRUCTURE)
        assert second is first

    def test_decline_falls_back_bit_identically(self):
        config = AssessmentConfig(
            rounds=3000, rng=21, analytic_shared_bits=0, analytic_state_bits=0
        )
        hybrid = build_assessor(TOPO, MODEL, config.with_updates(mode="analytic"))
        plain = build_assessor(TOPO, MODEL, config)
        plan = plan_for("host/0/0/0", "host/2/1/1")
        assert hybrid.explain(plan) is not None
        ours = hybrid.assess(plan, STRUCTURE)
        theirs = plain.assess(plan, STRUCTURE)
        assert not ours.estimate.exact
        assert ours.estimate.score == theirs.estimate.score
        assert np.array_equal(ours.per_round, theirs.per_round)

    def test_explain_is_none_when_tractable(self, analytic):
        assert analytic.explain(plan_for("host/0/0/0", "host/0/0/1")) is None

    def test_score_plans_mixes_exact_and_sampled(self):
        plans = [
            plan_for("host/0/0/0", "host/0/0/1"),  # same rack: small closure
            plan_for("host/0/0/0", "host/2/1/1"),  # cross-pod: larger closure
            plan_for("host/1/0/0", "host/1/0/1"),
        ]
        probabilities = MODEL.failure_probabilities()
        helper = build_assessor(
            TOPO, MODEL, AssessmentConfig(mode="analytic", rounds=3000, rng=5)
        )
        sizes = []
        for plan in plans:
            _, sampled = helper.closure_for(plan)
            sizes.append(sum(1 for c in sampled if 0 < probabilities[c] < 1))
        assert min(sizes) < max(sizes), "test needs closures of two sizes"
        budget = min(sizes)  # small closures exact, the larger one declined
        config = AssessmentConfig(
            rounds=3000,
            rng=5,
            analytic_shared_bits=0,
            analytic_state_bits=budget,
        )
        hybrid = build_assessor(TOPO, MODEL, config.with_updates(mode="analytic"))
        results = hybrid.score_plans(plans, STRUCTURE)
        flags = [r.estimate.exact for r in results]
        assert True in flags and False in flags
        for plan, result, size in zip(plans, results, sizes):
            assert result.plan == plan
            assert result.estimate.exact == (size <= budget)
        # The sampled entries are exactly what the inner assessor alone
        # would have produced for the declined subset.
        plain = build_assessor(TOPO, MODEL, config)
        declined = [p for p, f in zip(plans, flags) if not f]
        alone = plain.score_plans(declined, STRUCTURE)
        sampled_results = [r for r in results if not r.estimate.exact]
        for ours, theirs in zip(sampled_results, alone):
            assert ours.estimate.score == theirs.estimate.score

    def test_metrics_count_exact_assessments(self):
        config = AssessmentConfig(mode="analytic", rounds=2000, rng=1, profile=True)
        assessor = build_assessor(TOPO, MODEL, config)
        assessor.assess(plan_for("host/0/0/0", "host/0/0/1"), STRUCTURE)
        counters = assessor.metrics.snapshot()["counters"]
        assert counters.get("analytic/exact", 0) >= 1


class TestAnalyticZones:
    def test_zone_shared_roots_condition_exactly(self):
        # Hosts of one zone share the zone's power feed, cooling plant
        # and control plane (correlated failures, Fig. 5 style): the
        # shared roots must be conditioned out, and both the per-subject
        # marginals and the *joint* failure probability must match the
        # 2**n enumeration oracle.
        topology = MultiZoneTopology(zones=2, k=4, seed=7)
        model = build_zone_inventory(topology, power_supplies=2, seed=3)
        probabilities = model.failure_probabilities()
        hosts = sorted(topology.hosts)[:3]
        arena = ComponentArena.for_model(model)
        forest = CompiledForest(arena)
        roots = [forest.ensure_subject(h, model.tree_for(h).root) for h in hosts]
        joint_tree = FaultTree(
            subject_id="joint",
            root=and_gate(*[model.tree_for(h).root for h in hosts]),
        )
        joint = forest.ensure_subject("joint", joint_tree.root)
        marginals = compute_marginals(
            forest, arena.probabilities, roots + [joint]
        )
        assert marginals.conditioned, "shared zone roots must be conditioned"
        for host, root in zip(hosts, roots):
            oracle = exact_failure_probability(model.tree_for(host), probabilities)
            assert marginals.marginal(root) == pytest.approx(oracle, abs=1e-12)
        joint_oracle = exact_failure_probability(joint_tree, probabilities)
        assert marginals.marginal(joint) == pytest.approx(joint_oracle, abs=1e-12)
        # Correlation check: under shared roots the joint failure
        # probability exceeds the independent product.
        independent = 1.0
        for root in roots:
            independent *= marginals.marginal(root)
        assert marginals.marginal(joint) > independent

    def test_zone_plan_level_declines_to_sampling(self):
        # Multi-zone topologies route through the generic per-round
        # engine, which has no packed fast path: the analytic backend
        # must decline loudly and serve the sampled estimate instead.
        topology = MultiZoneTopology(zones=2, k=4, seed=7)
        model = build_zone_inventory(topology, power_supplies=2, seed=3)
        assessor = build_assessor(
            topology,
            model,
            AssessmentConfig(mode="analytic", rounds=1500, rng=13),
        )
        zone_hosts = sorted(topology.hosts)[:2]
        plan = DeploymentPlan.single_component(zone_hosts, APP)
        assert assessor.explain(plan) == "no packed reachability engine"
        result = assessor.assess(plan, STRUCTURE)
        assert not result.estimate.exact
        assert result.estimate.rounds == 1500


class TestConfigValidation:
    def test_bits_out_of_range_are_collected(self):
        config = AssessmentConfig(analytic_state_bits=40, analytic_shared_bits=-1)
        with pytest.raises(ValidationError) as excinfo:
            config.validate()
        fields = {field for field, _ in excinfo.value.errors}
        assert "analytic_state_bits" in fields
        assert "analytic_shared_bits" in fields

    def test_shared_cannot_exceed_state_budget(self):
        config = AssessmentConfig(analytic_shared_bits=15, analytic_state_bits=10)
        with pytest.raises(ValidationError) as excinfo:
            config.validate()
        assert any(
            field == "analytic_shared_bits" for field, _ in excinfo.value.errors
        )

    def test_analytic_is_a_known_mode(self):
        AssessmentConfig(mode="analytic").validate()


class TestExactEstimates:
    def test_serialization_round_trips_exact(self):
        estimate = exact_estimate(0.987654321)
        document = estimate_to_dict(estimate)
        assert document["exact"] is True
        restored = estimate_from_dict(document)
        assert restored.exact
        assert restored.score == estimate.score
        assert restored.confidence_interval_width == 0.0

    def test_legacy_documents_default_to_sampled(self):
        document = estimate_to_dict(exact_estimate(0.5))
        document.pop("exact")
        assert estimate_from_dict(document).exact is False

    def test_exact_estimate_validates_range(self):
        with pytest.raises(ConfigurationError):
            exact_estimate(1.5)


class TestAnalyticSearch:
    def test_search_runs_hybrid_and_confirms_exactly(self):
        search = DeploymentSearch.from_config(
            TOPO,
            MODEL,
            AssessmentConfig(mode="analytic", rounds=1500, rng=31),
            rng=7,
            batch_size=2,
        )
        assert isinstance(search.assessor, AnalyticAssessor)
        spec = SearchSpec(STRUCTURE, desired_reliability=1.0, max_seconds=1.0)
        result = search.search(spec)
        # Confirmation of the best plan goes through the same analytic
        # assessor: on this (tractable) substrate the reported estimate
        # is exact, and exactness means the brute-force oracle agrees.
        assert result.best_assessment.estimate.exact
        oracle = brute_force_score(
            search.assessor, result.best_plan, STRUCTURE
        )
        assert result.best_assessment.estimate.score == pytest.approx(
            oracle, abs=1e-12
        )
