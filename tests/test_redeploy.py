"""Degradation-triggered redeployment controller (repro.service.redeploy).

Most tests drive the controller through stub searches so every branch of
the decision lifecycle (detect -> search/retry -> candidate -> apply/
reject/abandon) is exercised deterministically and fast; one end-to-end
test runs the real annealing search against a real two-zone substrate
under a real ZoneOutage. Crash recovery is tested by reconstructing the
exact journal states a mid-decision kill leaves behind.
"""

import json
import os
from types import SimpleNamespace

import pytest

from repro import serialization
from repro.app.structure import ApplicationStructure
from repro.core.api import AssessmentConfig
from repro.core.plan import DeploymentPlan, ZoneConstraints
from repro.core.search import DeploymentSearch
from repro.faults.inventory import build_zone_inventory
from repro.runtime.chaos import ZoneOutage
from repro.service.redeploy import (
    INCUMBENT_NAME,
    JOURNAL_NAME,
    DecisionJournal,
    DegradationEvent,
    RedeploymentController,
)
from repro.topology.zones import MultiZoneTopology
from repro.util.errors import ConfigurationError

STRUCTURE = ApplicationStructure.k_of_n(1, 3)
CROSS_ZONE = ZoneConstraints.from_mapping(
    primary_zone="zone0", min_outside_primary=1
)


@pytest.fixture(scope="module")
def zones2():
    return MultiZoneTopology(zones=2, k=4, seed=7)


@pytest.fixture
def plans(zones2):
    z0 = zones2.hosts_in_zone("zone0")
    z1 = zones2.hosts_in_zone("zone1")
    return {
        "pinned": DeploymentPlan.from_mapping({"app": z0[:3]}),
        "spread": DeploymentPlan.from_mapping({"app": [z0[0], z0[1], z1[0]]}),
        "far": DeploymentPlan.from_mapping({"app": [z1[0], z1[1], z0[5]]}),
    }


# ----------------------------------------------------------------------
# Stub search: scores come from a mutable table, candidates from a script
# ----------------------------------------------------------------------


class StubAssessor:
    def __init__(self, topology, scores, default=0.99):
        self.topology = topology
        self.scores = scores  # canonical_key -> score, mutable mid-test
        self.default = default
        self.refreshes = 0

    def refresh_probabilities(self):
        self.refreshes += 1

    def assess(self, plan, structure):
        score = self.scores.get(plan.canonical_key(), self.default)
        return SimpleNamespace(estimate=SimpleNamespace(score=score))


class StubSearch:
    """Yields scripted candidates; a script entry may be an Exception."""

    def __init__(self, topology, scores, script):
        self.assessor = StubAssessor(topology, scores)
        self.script = list(script)
        self.calls = 0

    def search(self, spec, initial_plan=None):
        self.calls += 1
        entry = self.script.pop(0) if self.script else initial_plan
        if isinstance(entry, Exception):
            raise entry
        plan = entry if entry is not None else initial_plan
        return SimpleNamespace(
            best_plan=plan,
            best_assessment=SimpleNamespace(
                estimate=SimpleNamespace(
                    score=self.assessor.scores.get(
                        plan.canonical_key(), self.assessor.default
                    )
                )
            ),
        )


def _controller(zones2, tmp_path, search, incumbent, **kwargs):
    kwargs.setdefault("zone_constraints", CROSS_ZONE)
    kwargs.setdefault("min_gain", 0.01)
    kwargs.setdefault("degradation_threshold", 0.05)
    kwargs.setdefault("backoff_seconds", 0.01)
    return RedeploymentController(
        search, STRUCTURE, str(tmp_path / "state"), incumbent=incumbent, **kwargs
    )


def _journal_records(state_dir):
    path = os.path.join(state_dir, JOURNAL_NAME)
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


# ----------------------------------------------------------------------
# Decision lifecycle
# ----------------------------------------------------------------------


class TestDecisionLifecycle:
    def test_score_drop_applies_exactly_once(self, zones2, tmp_path, plans):
        scores = {plans["spread"].canonical_key(): 0.99}
        search = StubSearch(zones2, scores, [plans["far"]])
        applied = []
        ctrl = _controller(
            zones2, tmp_path, search, plans["spread"], apply_plan=applied.append
        )
        assert ctrl.step() is None  # first poll just sets the baseline
        assert ctrl.baseline_score == 0.99

        # The substrate degrades: incumbent craters, a better plan exists.
        scores[plans["spread"].canonical_key()] = 0.20
        scores[plans["far"].canonical_key()] = 0.95
        decision = ctrl.step()
        assert decision.action == "applied"
        assert decision.event.kind == "score-drop"
        assert decision.plan.canonical_key() == plans["far"].canonical_key()
        assert decision.gain == pytest.approx(0.75)
        assert applied == [plans["far"]]
        assert ctrl.incumbent == plans["far"]
        assert ctrl.baseline_score == 0.95

        # Quiescent afterwards: the new incumbent IS the new baseline.
        assert ctrl.step() is None
        assert len(applied) == 1

        kinds = [r["record"] for r in _journal_records(ctrl.state_dir)]
        assert kinds == ["detected", "search-attempt", "candidate", "applied"]

    def test_constraint_violation_triggers_without_baseline(
        self, zones2, tmp_path, plans
    ):
        """A violating incumbent is actionable on the very first poll."""
        search = StubSearch(zones2, {}, [plans["spread"]])
        scores = search.assessor.scores
        scores[plans["pinned"].canonical_key()] = 0.5
        scores[plans["spread"].canonical_key()] = 0.9
        ctrl = _controller(zones2, tmp_path, search, plans["pinned"])
        decision = ctrl.step()
        assert decision.action == "applied"
        assert decision.event.kind == "constraint-violation"
        assert CROSS_ZONE.satisfied_by(ctrl.incumbent, zones2)

    def test_rejected_decision_resets_baseline(self, zones2, tmp_path, plans):
        """No better plan exists: reject once, then stop re-triggering
        on the same (permanent) degradation."""
        scores = {plans["spread"].canonical_key(): 0.99}
        search = StubSearch(zones2, scores, [plans["far"], plans["far"]])
        ctrl = _controller(zones2, tmp_path, search, plans["spread"])
        ctrl.step()  # baseline 0.99

        scores[plans["spread"].canonical_key()] = 0.80
        scores[plans["far"].canonical_key()] = 0.805  # gain below min_gain
        decision = ctrl.step()
        assert decision.action == "rejected"
        assert ctrl.incumbent == plans["spread"]
        assert ctrl.baseline_score == pytest.approx(0.80)
        assert ctrl.step() is None  # degraded score is the new normal
        kinds = [r["record"] for r in _journal_records(ctrl.state_dir)]
        assert kinds.count("rejected") == 1

    def test_observed_events_outrank_polling(self, zones2, tmp_path, plans):
        search = StubSearch(zones2, {}, [plans["far"]])
        search.assessor.scores[plans["far"].canonical_key()] = 0.999
        ctrl = _controller(zones2, tmp_path, search, plans["spread"])
        ctrl.observe(DegradationEvent(kind="zone-outage", zone="zone0"))
        decision = ctrl.step()
        assert decision.event.kind == "zone-outage"
        assert decision.event.zone == "zone0"


class TestRetryAndBackoff:
    def test_abandons_after_max_retries_with_backoff(
        self, zones2, tmp_path, plans
    ):
        search = StubSearch(
            zones2,
            {},
            [RuntimeError("boom 1"), RuntimeError("boom 2"), RuntimeError("boom 3")],
        )
        sleeps = []
        ctrl = _controller(
            zones2, tmp_path, search, plans["spread"],
            max_retries=3, backoff_seconds=0.05, backoff_factor=2.0,
            sleep=sleeps.append,
        )
        ctrl.observe(DegradationEvent(kind="zone-outage", zone="zone0"))
        decision = ctrl.step()
        assert decision.action == "abandoned"
        assert decision.search_attempts == 3
        assert sleeps == pytest.approx([0.05, 0.10])  # no sleep after last
        kinds = [r["record"] for r in _journal_records(ctrl.state_dir)]
        assert kinds.count("search-attempt") == 3
        assert kinds.count("search-failed") == 3
        assert kinds[-1] == "abandoned"

    def test_transient_failure_retries_to_success(self, zones2, tmp_path, plans):
        search = StubSearch(
            zones2, {}, [RuntimeError("transient"), plans["far"]]
        )
        search.assessor.scores[plans["spread"].canonical_key()] = 0.3
        search.assessor.scores[plans["far"].canonical_key()] = 0.999
        ctrl = _controller(zones2, tmp_path, search, plans["spread"])
        ctrl.observe(DegradationEvent(kind="zone-outage", zone="zone0"))
        decision = ctrl.step()
        assert decision.action == "applied"
        assert decision.search_attempts == 2

    def test_constraint_violating_result_counts_as_failure(
        self, zones2, tmp_path, plans
    ):
        """A search that returns a non-compliant plan is retried, not
        applied: the controller never installs a violating deployment."""
        search = StubSearch(
            zones2, {}, [plans["pinned"], plans["pinned"], plans["pinned"]]
        )
        ctrl = _controller(
            zones2, tmp_path, search, plans["spread"], max_retries=3
        )
        ctrl.observe(DegradationEvent(kind="zone-outage", zone="zone0"))
        decision = ctrl.step()
        assert decision.action == "abandoned"
        assert ctrl.incumbent == plans["spread"]


# ----------------------------------------------------------------------
# Journal and crash recovery
# ----------------------------------------------------------------------


class TestDecisionJournal:
    def test_round_trip(self, tmp_path):
        journal = DecisionJournal(str(tmp_path / "j.jsonl"))
        journal.append({"record": "detected", "decision": 1})
        journal.append({"record": "applied", "decision": 1})
        records, torn = journal.scan()
        assert torn == 0
        assert [r["record"] for r in records] == ["detected", "applied"]

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps({"record": "detected", "decision": 1}) + "\n"
            + '{"record": "candid'  # the crash-torn final line
        )
        records, torn = DecisionJournal(str(path)).scan()
        assert torn == 1
        assert len(records) == 1

    def test_mid_file_corruption_is_loud(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            "garbage\n" + json.dumps({"record": "detected", "decision": 1}) + "\n"
        )
        with pytest.raises(ConfigurationError):
            DecisionJournal(str(path)).scan()


def _write_crash_state(state_dir, candidate_plan, persist_incumbent):
    """Reproduce the on-disk state of a controller killed mid-apply.

    The journal holds a committed (apply=True) candidate record with no
    terminal record. ``persist_incumbent`` selects which side of the
    commit point the kill landed on: False = before the incumbent file
    was written (recovery must finish the apply), True = after (recovery
    must only complete the journal, never re-apply).
    """
    os.makedirs(state_dir, exist_ok=True)
    records = [
        {"record": "detected", "decision": 1,
         "event": {"kind": "zone-outage", "detail": "", "zone": "zone0"},
         "incumbent_score": 0.2},
        {"record": "search-attempt", "decision": 1, "attempt": 1},
        {"record": "candidate", "decision": 1,
         "plan": serialization.plan_to_dict(candidate_plan),
         "candidate_score": 0.95, "incumbent_score": 0.2,
         "gain": 0.75, "apply": True},
    ]
    with open(os.path.join(state_dir, JOURNAL_NAME), "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    if persist_incumbent:
        serialization.dump(
            serialization.plan_to_dict(candidate_plan),
            os.path.join(state_dir, INCUMBENT_NAME),
            checksum=True,
        )


class TestCrashRecovery:
    def test_kill_before_persist_completes_apply_once(
        self, zones2, tmp_path, plans
    ):
        state_dir = str(tmp_path / "state")
        _write_crash_state(state_dir, plans["far"], persist_incumbent=False)

        applied = []
        search = StubSearch(zones2, {}, [])
        ctrl = RedeploymentController(
            search, STRUCTURE, state_dir,
            incumbent=plans["spread"], zone_constraints=CROSS_ZONE,
            apply_plan=applied.append,
        )
        report = ctrl.last_recovery
        assert report.completed_applies == 1
        assert applied == [plans["far"]]
        assert ctrl.incumbent == plans["far"]
        assert ctrl.baseline_score == pytest.approx(0.95)
        assert os.path.exists(os.path.join(state_dir, INCUMBENT_NAME))

        # A second recovery (another crash right after) finds the journal
        # already terminal: nothing to apply, incumbent comes from disk.
        again = []
        ctrl2 = RedeploymentController(
            search, STRUCTURE, state_dir,
            zone_constraints=CROSS_ZONE, apply_plan=again.append,
        )
        assert ctrl2.last_recovery.completed_applies == 0
        assert again == []
        assert ctrl2.incumbent == plans["far"]

    def test_kill_after_persist_never_reapplies(self, zones2, tmp_path, plans):
        """The kill landed between the incumbent persist and the journal
        record: the plan is live, so recovery completes the journal but
        must NOT invoke apply_plan again (no double deployment)."""
        state_dir = str(tmp_path / "state")
        _write_crash_state(state_dir, plans["far"], persist_incumbent=True)

        applied = []
        search = StubSearch(zones2, {}, [])
        ctrl = RedeploymentController(
            search, STRUCTURE, state_dir,
            zone_constraints=CROSS_ZONE, apply_plan=applied.append,
        )
        assert ctrl.last_recovery.completed_applies == 1
        assert applied == []  # exactly-once: the apply already happened
        assert ctrl.incumbent == plans["far"]
        records = _journal_records(state_dir)
        assert records[-1]["record"] == "applied"
        assert records[-1]["recovered"] is True

    def test_no_incumbent_anywhere_is_a_config_error(self, zones2, tmp_path):
        search = StubSearch(zones2, {}, [])
        with pytest.raises(ConfigurationError):
            RedeploymentController(
                search, STRUCTURE, str(tmp_path / "state"),
            )


# ----------------------------------------------------------------------
# End to end: real search, real zone outage
# ----------------------------------------------------------------------


class TestZoneOutageEndToEnd:
    def test_zone_outage_triggers_one_compliant_redeployment(self, tmp_path):
        topology = MultiZoneTopology(zones=2, k=4, seed=7)
        model = build_zone_inventory(topology, seed=7)
        search = DeploymentSearch.from_config(
            topology, model, AssessmentConfig(rounds=400, rng=5), rng=9
        )
        structure = ApplicationStructure.k_of_n(2, 3)
        z0 = topology.hosts_in_zone("zone0")
        z1 = topology.hosts_in_zone("zone1")
        # Compliant but zone0-heavy: the outage takes out the quorum.
        incumbent = DeploymentPlan.from_mapping(
            {"app": [z0[0], z0[7], z1[0]]}
        )
        applied = []
        ctrl = RedeploymentController(
            search, structure, str(tmp_path / "state"),
            incumbent=incumbent, zone_constraints=CROSS_ZONE,
            min_gain=0.01, degradation_threshold=0.05,
            search_seconds=30.0, search_iterations=25,
            backoff_seconds=0.01, apply_plan=applied.append,
        )
        assert ctrl.step() is None  # healthy baseline

        with ZoneOutage(model, "zone0"):
            decision = ctrl.step()
            assert decision is not None
            assert decision.action == "applied"
            assert CROSS_ZONE.satisfied_by(ctrl.incumbent, topology)
            assert decision.candidate_score > decision.incumbent_score + 0.5
            assert ctrl.step() is None  # exactly one redeployment
        assert len(applied) == 1

        # A fresh controller on the same state dir recovers the committed
        # incumbent without replaying the apply.
        ctrl2 = RedeploymentController(
            search, structure, str(tmp_path / "state"),
            zone_constraints=CROSS_ZONE, search_iterations=25,
        )
        assert ctrl2.last_recovery.incumbent_restored
        assert ctrl2.last_recovery.completed_applies == 0
        assert (
            ctrl2.incumbent.canonical_key() == ctrl.incumbent.canonical_key()
        )
