"""Shared fixtures: small topologies, inventories and assessors.

Fixtures are deliberately tiny (k=4 fat-trees) so the whole suite runs in
seconds; scale-sensitive behaviour is covered by the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assessment import ReliabilityAssessor
from repro.faults.dependencies import DependencyModel
from repro.faults.inventory import build_paper_inventory, build_rich_inventory
from repro.faults.probability import DefaultProbabilityPolicy
from repro.topology.fattree import FatTreeTopology
from repro.topology.leafspine import LeafSpineTopology
from repro.core.api import AssessmentConfig


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def fattree4():
    """Smallest fat-tree: k=4, 3 host pods, 12 hosts."""
    return FatTreeTopology(4, seed=1)


@pytest.fixture
def fattree8():
    """The paper's tiny scale: k=8, 112 hosts."""
    return FatTreeTopology(8, seed=1)


@pytest.fixture
def lossy_fattree4():
    """k=4 fat-tree with aggressive failure probabilities (incl. links),
    used to stress routing corner cases."""
    return FatTreeTopology(
        4,
        probability_policy=DefaultProbabilityPolicy(
            default_probability=0.15, link_probability=0.05
        ),
        seed=7,
    )


@pytest.fixture
def leafspine():
    return LeafSpineTopology(spines=4, leaves=6, hosts_per_leaf=3, seed=2)


@pytest.fixture
def inventory(fattree4):
    """The paper-style inventory (5 shared power supplies) on fattree4."""
    return build_paper_inventory(fattree4, seed=3)


@pytest.fixture
def rich_inventory(fattree4):
    """Full Fig. 5-shaped inventory on fattree4."""
    return build_rich_inventory(fattree4, seed=4)


@pytest.fixture
def bare_model(fattree4):
    """No dependency information at all (§3.4 mode)."""
    return DependencyModel.empty(fattree4)


@pytest.fixture
def assessor(fattree4, inventory):
    return ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=4_000, rng=5))
