"""Tests for the host workload model (repro.workload.model)."""

import pytest

from repro.util.errors import ConfigurationError
from repro.workload.model import HostWorkloadModel


class TestConstruction:
    def test_paper_default_distribution(self, fattree8):
        model = HostWorkloadModel.paper_default(fattree8, seed=1)
        loads = [model.workload_of(h) for h in fattree8.hosts]
        mean = sum(loads) / len(loads)
        assert 0.17 < mean < 0.23  # N(0.2, 0.05)
        assert all(0.0 <= load <= 1.0 for load in loads)

    def test_uniform(self, fattree4):
        model = HostWorkloadModel.uniform(fattree4, 0.3)
        assert all(model.workload_of(h) == 0.3 for h in fattree4.hosts)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            HostWorkloadModel({"h": 1.5})

    def test_deterministic_given_seed(self, fattree4):
        a = HostWorkloadModel.paper_default(fattree4, seed=4)
        b = HostWorkloadModel.paper_default(fattree4, seed=4)
        assert a.snapshot() == b.snapshot()


class TestQueries:
    def test_average(self):
        model = HostWorkloadModel({"a": 0.2, "b": 0.4})
        assert model.average(["a", "b"]) == pytest.approx(0.3)

    def test_average_empty_rejected(self):
        model = HostWorkloadModel({"a": 0.2})
        with pytest.raises(ConfigurationError):
            model.average([])

    def test_unknown_host_rejected(self):
        model = HostWorkloadModel({"a": 0.2})
        with pytest.raises(ConfigurationError):
            model.workload_of("ghost")

    def test_rank_least_loaded(self):
        model = HostWorkloadModel({"a": 0.5, "b": 0.1, "c": 0.3})
        assert model.rank_least_loaded() == ["b", "c", "a"]

    def test_rank_subset(self):
        model = HostWorkloadModel({"a": 0.5, "b": 0.1, "c": 0.3})
        assert model.rank_least_loaded(["a", "c"]) == ["c", "a"]

    def test_rank_ties_deterministic(self):
        model = HostWorkloadModel({"b": 0.2, "a": 0.2})
        assert model.rank_least_loaded() == ["a", "b"]

    def test_len(self, fattree4):
        model = HostWorkloadModel.uniform(fattree4)
        assert len(model) == len(fattree4.hosts)


class TestUpdates:
    def test_set_workload(self):
        model = HostWorkloadModel({"a": 0.2})
        model.set_workload("a", 0.9)
        assert model.workload_of("a") == 0.9

    def test_set_workload_validates(self):
        model = HostWorkloadModel({"a": 0.2})
        with pytest.raises(ConfigurationError):
            model.set_workload("a", 2.0)
        with pytest.raises(ConfigurationError):
            model.set_workload("ghost", 0.5)

    def test_drift_stays_in_bounds(self, fattree4):
        model = HostWorkloadModel.uniform(fattree4, 0.02)
        for _ in range(10):
            model.drift(stddev=0.1, seed=1)
        assert all(0.0 <= model.workload_of(h) <= 1.0 for h in fattree4.hosts)

    def test_drift_changes_loads(self, fattree4):
        model = HostWorkloadModel.uniform(fattree4, 0.5)
        before = model.snapshot()
        model.drift(stddev=0.05, seed=2)
        assert model.snapshot() != before

    def test_snapshot_is_a_copy(self):
        model = HostWorkloadModel({"a": 0.2})
        snap = model.snapshot()
        snap["a"] = 0.9
        assert model.workload_of("a") == 0.2
