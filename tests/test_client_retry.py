"""HTTP client retry policy: what retries, what must not, and how long.

All transport is monkeypatched — no sockets. The contract: admission
sheds (503 + ``error="admission"``) back off and retry; connection
errors retry only when re-sending cannot double-execute (GET, cancel,
or a POST carrying an idempotency key); deterministic failures
(validation, non-admission 503s) raise immediately; exhausted retries
report the attempt count.
"""

from __future__ import annotations

import http.client
import io
import json
import random
import urllib.error
import urllib.request

import pytest

from repro.service.client import HttpServiceClient
from repro.util.errors import AdmissionRejected, ReproError, ValidationError

SHED_BODY = {
    "error": "admission",
    "reason": "queue_full",
    "message": "queue is full",
    "queue_depth": 8,
    "capacity": 8,
}


def _http_error(code: int, body: dict) -> urllib.error.HTTPError:
    return urllib.error.HTTPError(
        "http://test/assess",
        code,
        "error",
        hdrs=None,
        fp=io.BytesIO(json.dumps(body).encode("utf-8")),
    )


class _Reply:
    def __init__(self, body: dict):
        self._body = json.dumps(body).encode("utf-8")

    def read(self) -> bytes:
        return self._body

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


class _Transport:
    """Scripted urlopen: pops one outcome per call, records each call."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = 0

    def __call__(self, request, timeout=None):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return _Reply(outcome)


def _client(monkeypatch, transport, **overrides):
    sleeps: list[float] = []
    defaults = dict(
        max_attempts=3,
        backoff_seconds=0.2,
        max_backoff_seconds=5.0,
        sleep=sleeps.append,
        rng=random.Random(7),
    )
    defaults.update(overrides)
    monkeypatch.setattr(urllib.request, "urlopen", transport)
    return HttpServiceClient("http://test", **defaults), sleeps


class TestAdmissionShedRetries:
    def test_shed_retries_then_succeeds(self, monkeypatch):
        transport = _Transport(
            [_http_error(503, SHED_BODY), {"request_id": "req-1", "status": "ok"}]
        )
        client, sleeps = _client(monkeypatch, transport)
        reply = client.assess(["h0", "h1"], k=1)
        assert reply["status"] == "ok"
        assert transport.calls == 2
        assert len(sleeps) == 1

    def test_exhausted_sheds_report_attempts(self, monkeypatch):
        transport = _Transport([_http_error(503, SHED_BODY) for _ in range(3)])
        client, sleeps = _client(monkeypatch, transport)
        with pytest.raises(AdmissionRejected, match=r"after 3 attempts"):
            client.assess(["h0"], k=1)
        assert transport.calls == 3
        assert len(sleeps) == 2

    def test_backoff_is_exponential_jittered_and_capped(self, monkeypatch):
        transport = _Transport([_http_error(503, SHED_BODY) for _ in range(6)])
        client, sleeps = _client(
            monkeypatch,
            transport,
            max_attempts=6,
            backoff_seconds=1.0,
            max_backoff_seconds=4.0,
        )
        with pytest.raises(AdmissionRejected):
            client.assess(["h0"], k=1)
        assert len(sleeps) == 5
        for attempt, slept in enumerate(sleeps):
            base = min(4.0, 1.0 * 2**attempt)
            assert base <= slept <= base * 1.25
        # The cap holds even with jitter on top.
        assert max(sleeps) <= 4.0 * 1.25

    def test_int_seed_gives_reproducible_backoff(self, monkeypatch):
        """``rng=<int>`` seeds a private jitter stream: two clients built
        from the same seed sleep identical schedules, a different seed
        diverges."""

        def run(seed):
            transport = _Transport([_http_error(503, SHED_BODY) for _ in range(5)])
            client, sleeps = _client(
                monkeypatch, transport, max_attempts=5, rng=seed
            )
            with pytest.raises(AdmissionRejected):
                client.assess(["h0"], k=1)
            return sleeps

        first = run(99)
        assert first == run(99)
        assert first != run(100)

    def test_int_seed_matches_explicit_random_instance(self, monkeypatch):
        def run(rng):
            transport = _Transport([_http_error(503, SHED_BODY) for _ in range(4)])
            client, sleeps = _client(
                monkeypatch, transport, max_attempts=4, rng=rng
            )
            with pytest.raises(AdmissionRejected):
                client.assess(["h0"], k=1)
            return sleeps

        assert run(7) == run(random.Random(7))

    def test_non_admission_503_is_not_retried(self, monkeypatch):
        # /readyz answers 503 while draining — that is state, not overload.
        transport = _Transport([_http_error(503, {"status": "draining"})])
        client, sleeps = _client(monkeypatch, transport)
        with pytest.raises(ReproError):
            client.readyz()
        assert transport.calls == 1
        assert sleeps == []

    def test_validation_errors_raise_immediately(self, monkeypatch):
        body = {
            "error": "validation",
            "errors": [{"field": "k", "message": "must be positive"}],
        }
        transport = _Transport([_http_error(400, body)])
        client, sleeps = _client(monkeypatch, transport)
        with pytest.raises(ValidationError):
            client.assess(["h0"], k=-1)
        assert transport.calls == 1
        assert sleeps == []


class TestConnectionErrorRetries:
    def test_get_retries_connection_errors(self, monkeypatch):
        transport = _Transport(
            [urllib.error.URLError("refused"), {"status": "serving"}]
        )
        client, sleeps = _client(monkeypatch, transport)
        assert client.healthz() == {"status": "serving"}
        assert transport.calls == 2
        assert len(sleeps) == 1

    def test_cancel_retries_connection_errors(self, monkeypatch):
        transport = _Transport(
            [urllib.error.URLError("refused"), {"cancelled": True}]
        )
        client, _ = _client(monkeypatch, transport)
        assert client.cancel("req-1") == {"cancelled": True}
        assert transport.calls == 2

    def test_keyless_post_never_retries_connection_errors(self, monkeypatch):
        # The server may have admitted the request before the connection
        # died; without a key a resend could execute it twice.
        transport = _Transport([urllib.error.URLError("reset")] * 3)
        client, sleeps = _client(monkeypatch, transport)
        with pytest.raises(ReproError, match=r"after 1 attempt"):
            client.assess(["h0"], k=1)
        assert transport.calls == 1
        assert sleeps == []

    def test_keyed_post_retries_and_reports_attempts(self, monkeypatch):
        transport = _Transport([urllib.error.URLError("reset")] * 3)
        client, sleeps = _client(monkeypatch, transport)
        with pytest.raises(ReproError, match=r"after 3 attempt"):
            client.assess(["h0"], k=1, idempotency_key="job-1")
        assert transport.calls == 3
        assert len(sleeps) == 2

    def test_keyed_post_recovers_after_restart(self, monkeypatch):
        transport = _Transport(
            [
                urllib.error.URLError("refused"),
                urllib.error.URLError("refused"),
                {"request_id": "req-1", "status": "ok", "replayed": True},
            ]
        )
        client, _ = _client(monkeypatch, transport)
        reply = client.assess(["h0"], k=1, idempotency_key="job-1")
        assert reply["replayed"] is True
        assert transport.calls == 3

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            HttpServiceClient("http://test", max_attempts=0)


class TestFailoverWindowRetries:
    """Mid-response disconnects during a worker failover.

    ``urlopen`` wraps failures *opening* the connection in ``URLError``,
    but a socket reset while *reading* the response surfaces raw —
    ``http.client.RemoteDisconnected`` or ``ConnectionResetError``. Both
    mean the same thing during a fleet failover and must retry under the
    same idempotency rules.
    """

    def test_keyed_post_retries_remote_disconnected(self, monkeypatch):
        transport = _Transport(
            [
                http.client.RemoteDisconnected("closed mid-response"),
                {"request_id": "req-9", "status": "ok"},
            ]
        )
        client, sleeps = _client(monkeypatch, transport)
        reply = client.assess(["h0"], k=1, idempotency_key="key-1")
        assert reply["status"] == "ok"
        assert transport.calls == 2
        assert len(sleeps) == 1

    def test_keyed_post_retries_connection_reset(self, monkeypatch):
        transport = _Transport(
            [
                ConnectionResetError("peer reset"),
                ConnectionResetError("peer reset"),
                {"request_id": "req-9", "status": "ok"},
            ]
        )
        client, sleeps = _client(monkeypatch, transport)
        reply = client.assess(["h0"], k=1, idempotency_key="key-1")
        assert reply["status"] == "ok"
        assert transport.calls == 3

    def test_keyless_post_never_retries_resets(self, monkeypatch):
        transport = _Transport([ConnectionResetError("peer reset")])
        client, sleeps = _client(monkeypatch, transport)
        with pytest.raises(ReproError, match="after 1 attempt"):
            client.assess(["h0"], k=1)
        assert transport.calls == 1
        assert sleeps == []

    def test_get_retries_resets(self, monkeypatch):
        transport = _Transport(
            [http.client.RemoteDisconnected("restarting"), {"status": "serving"}]
        )
        client, _ = _client(monkeypatch, transport)
        assert client.readyz()["status"] == "serving"
        assert transport.calls == 2

    def test_exhausted_resets_report_attempts(self, monkeypatch):
        transport = _Transport([ConnectionResetError("reset")] * 3)
        client, _ = _client(monkeypatch, transport)
        with pytest.raises(ReproError, match="after 3 attempt"):
            client.assess(["h0"], k=1, idempotency_key="key-1")
