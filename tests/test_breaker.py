"""Circuit breaker: state machine with a fake clock, plus service-level
trip/recovery with a chaos-rigged parallel backend."""

from __future__ import annotations

import pytest

from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.util.errors import CircuitOpen
from repro.util.metrics import MetricsRegistry
from repro.core.api import AssessmentConfig


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(
        failure_threshold=3, recovery_seconds=10.0, half_open_probes=1,
        clock=clock,
    )


class TestStateMachine:
    def test_starts_closed_and_passes_calls(self, breaker):
        assert breaker.state == CLOSED
        breaker.before_call()  # must not raise

    def test_failures_below_threshold_stay_closed(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.before_call()

    def test_success_resets_the_consecutive_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_threshold_trips_open_and_refuses(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpen) as excinfo:
            breaker.before_call()
        assert excinfo.value.retry_after_seconds == pytest.approx(10.0)
        clock.advance(4.0)
        with pytest.raises(CircuitOpen) as excinfo:
            breaker.before_call()
        assert excinfo.value.retry_after_seconds == pytest.approx(6.0)

    def test_recovery_window_moves_to_half_open(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_one_probe_then_refuses(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.before_call()  # the probe slot
        with pytest.raises(CircuitOpen):
            breaker.before_call()  # slots taken

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.before_call()
        breaker.record_success()
        assert breaker.state == CLOSED
        breaker.before_call()  # traffic flows again

    def test_probe_failure_reopens_for_a_fresh_window(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.9)
        with pytest.raises(CircuitOpen):
            breaker.before_call()
        clock.advance(0.1)
        assert breaker.state == HALF_OPEN

    def test_multi_probe_breaker_needs_all_probes_to_close(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=1.0, half_open_probes=2,
            clock=clock,
        )
        breaker.record_failure()
        clock.advance(1.0)
        breaker.before_call()
        breaker.record_success()
        assert breaker.state == HALF_OPEN  # one of two probes back
        breaker.before_call()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_snapshot_is_json_ready(self, breaker):
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert snap["failure_threshold"] == 3
        for _ in range(3):
            breaker.record_failure()
        assert breaker.snapshot()["state"] == OPEN

    def test_metrics_count_trips_and_closes(self, clock):
        registry = MetricsRegistry()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=1.0, clock=clock,
            metrics=registry,
        )
        breaker.record_failure()
        clock.advance(1.0)
        breaker.before_call()
        breaker.record_success()
        assert registry.counter("breaker/parallel/tripped") == 1
        assert registry.counter("breaker/parallel/closed") == 1

    def test_constructor_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_seconds=0.0, clock=clock)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0, clock=clock)


class TestServiceLevelBreaker:
    """The breaker as wired into the scheduler: a chaos-rigged pool trips
    it, requests keep succeeding on the sequential fallback, and a healed
    pool closes it again via the half-open probe."""

    def test_trip_fallback_and_recovery(self, fattree4, inventory):
        from repro.core.api import AssessmentConfig
        from repro.runtime.chaos import ChaosPolicy
        from repro.runtime.mapreduce import ParallelAssessor, RetryPolicy
        from repro.service.requests import AssessRequest
        from repro.service.scheduler import AssessmentService, ServiceConfig

        config = ServiceConfig(
            scale="tiny",
            rounds=2_000,
            queue_capacity=8,
            scheduler_workers=1,
            parallel_workers=2,
            breaker_failure_threshold=2,
            breaker_recovery_seconds=0.2,
        )
        service = AssessmentService(
            config, topology=fattree4, dependency_model=inventory
        )
        service.start()
        try:
            hosts = tuple(fattree4.hosts[:3])
            request = AssessRequest(hosts=hosts, k=2, rounds=2_000)

            # Rig the pool so every portion crashes in every attempt.
            assert service._parallel is not None
            service._parallel.close()
            service._parallel = ParallelAssessor.from_config(
                fattree4,
                inventory,
                AssessmentConfig(
                    mode="parallel",
                    workers=2,
                    rounds=2_000,
                    rng=9,
                    chaos=ChaosPolicy(
                        crash=frozenset(range(64)),
                        max_attempts=100,
                        kinds=("crash",),
                    ),
                    retry_policy=RetryPolicy(timeout_seconds=5.0, max_retries=1),
                    partial_ok=True,
                ),
            )

            # Two failing requests trip the breaker; both still succeed via
            # the sequential fallback — the client never sees the pool die.
            for _ in range(2):
                response = service.assess(request, timeout=60.0)
                assert response.status == "ok"
                assert response.backend == "chunked-sequential"
            assert service.breaker.state == OPEN

            # While open, requests route straight to the fallback.
            response = service.assess(request, timeout=60.0)
            assert response.status == "ok"
            assert response.backend == "chunked-sequential"
            assert service.metrics.counter("service/breaker_fallbacks") >= 1

            # Heal the backend, wait out the recovery window: the next
            # request is the half-open probe, succeeds on the pool, and
            # closes the circuit.
            service._parallel.close()
            service._parallel = ParallelAssessor.from_config(
                fattree4,
                inventory,
                AssessmentConfig(
                    mode="parallel", workers=2, rounds=2_000, rng=9,
                    partial_ok=True,
                ),
            )
            import time

            deadline = time.monotonic() + 5.0
            while service.breaker.state == OPEN and time.monotonic() < deadline:
                time.sleep(0.05)
            assert service.breaker.state == HALF_OPEN
            response = service.assess(request, timeout=60.0)
            assert response.status == "ok"
            assert response.backend == "parallel"
            assert service.breaker.state == CLOSED
        finally:
            service.close()


class TestHalfOpenConcurrency:
    """Probe slots under racing submissions.

    The half-open gate must admit exactly ``half_open_probes`` racing
    callers and refuse the rest — one atomic decision per caller, no
    thundering herd onto the recovering backend.
    """

    def _race(self, breaker, callers: int) -> list[str]:
        import threading

        barrier = threading.Barrier(callers)
        outcomes: list[str] = []
        lock = threading.Lock()

        def caller():
            barrier.wait()
            try:
                breaker.before_call()
            except CircuitOpen:
                with lock:
                    outcomes.append("refused")
            else:
                with lock:
                    outcomes.append("probe")

        threads = [threading.Thread(target=caller) for _ in range(callers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return outcomes

    def test_racing_callers_get_exactly_the_probe_slots(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=1.0, half_open_probes=2,
            clock=clock,
        )
        breaker.record_failure()
        clock.advance(1.0)
        outcomes = self._race(breaker, callers=8)
        assert outcomes.count("probe") == 2
        assert outcomes.count("refused") == 6
        assert breaker.state == HALF_OPEN

    def test_all_probes_succeeding_closes_under_concurrency(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=1.0, half_open_probes=3,
            clock=clock,
        )
        breaker.record_failure()
        clock.advance(1.0)
        outcomes = self._race(breaker, callers=6)
        assert outcomes.count("probe") == 3
        for _ in range(3):
            breaker.record_success()
        assert breaker.state == CLOSED
        breaker.before_call()  # closed again: flows freely

    def test_one_failed_probe_reopens_despite_other_successes(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=1.0, half_open_probes=2,
            clock=clock,
        )
        breaker.record_failure()
        clock.advance(1.0)
        outcomes = self._race(breaker, callers=4)
        assert outcomes.count("probe") == 2
        breaker.record_success()
        breaker.record_failure()  # the second probe fails
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpen):
            breaker.before_call()
