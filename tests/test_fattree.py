"""Unit + property tests for the fat-tree topology (repro.topology.fattree)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.component import ComponentType, link_id
from repro.topology.fattree import FatTreeTopology
from repro.topology.presets import PAPER_SCALES, paper_topology
from repro.util.errors import ConfigurationError, TopologyError


def expected_counts(k: int) -> dict:
    r = k // 2
    return {
        "core": r * r,
        "agg": (k - 1) * r,
        "edge": (k - 1) * r,
        "border": r,
        "hosts": (k - 1) * r * r,
    }


class TestConstruction:
    def test_rejects_odd_k(self):
        with pytest.raises(ConfigurationError):
            FatTreeTopology(5)

    def test_rejects_small_k(self):
        with pytest.raises(ConfigurationError):
            FatTreeTopology(2)

    @pytest.mark.parametrize("k", [4, 6, 8])
    def test_component_counts(self, k):
        topo = FatTreeTopology(k, seed=0)
        summary = topo.summarize()
        expected = expected_counts(k)
        assert summary.core_switches == expected["core"]
        assert summary.aggregation_switches == expected["agg"]
        assert summary.edge_switches == expected["edge"]
        assert summary.border_switches == expected["border"]
        assert summary.hosts == expected["hosts"]
        assert summary.ports_per_switch == k

    @pytest.mark.parametrize("scale", ["tiny", "small", "medium"])
    def test_table2_counts(self, scale):
        """Table 2 of the paper, for the scales cheap enough to build here."""
        spec = PAPER_SCALES[scale]
        summary = paper_topology(scale, seed=0).summarize()
        assert summary.core_switches == spec.core_switches
        assert summary.aggregation_switches == spec.aggregation_switches
        assert summary.edge_switches == spec.edge_switches
        assert summary.border_switches == spec.border_switches
        assert summary.hosts == spec.hosts

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_topology("gigantic")


class TestWiring:
    def test_every_host_has_one_edge_switch(self, fattree4):
        for host in fattree4.hosts:
            neighbors = fattree4.neighbors(host)
            assert len(neighbors) == 1
            assert (
                fattree4.component(neighbors[0]).component_type
                is ComponentType.EDGE_SWITCH
            )

    def test_edge_switch_degree(self, fattree4):
        # k/2 hosts below + k/2 aggregation switches above.
        for edge in fattree4.edge_pod:
            assert len(fattree4.neighbors(edge)) == fattree4.k

    def test_agg_connects_to_own_core_group(self, fattree4):
        r = fattree4.radix
        for (pod, group), agg in fattree4.agg_ids.items():
            cores = [
                n
                for n in fattree4.neighbors(agg)
                if fattree4.component(n).component_type is ComponentType.CORE_SWITCH
            ]
            assert sorted(cores) == sorted(
                fattree4.core_ids[(group, j)] for j in range(r)
            )

    def test_border_connects_to_own_core_group(self, fattree4):
        r = fattree4.radix
        for group, border in fattree4.border_ids.items():
            cores = fattree4.neighbors(border)
            assert sorted(cores) == sorted(
                fattree4.core_ids[(group, j)] for j in range(r)
            )

    def test_graph_connected(self, fattree4):
        assert nx.is_connected(fattree4.graph)

    def test_no_hosts_in_border_pod(self, fattree4):
        for host in fattree4.hosts:
            assert fattree4.pod_of(host) is not None

    def test_link_components_exist_for_every_edge(self, fattree4):
        for a, b in fattree4.graph.edges:
            component = fattree4.link_between(a, b)
            assert component.component_type is ComponentType.LINK
            assert component.component_id == link_id(a, b)

    def test_full_bisection_structure(self, fattree4):
        """Each pod reaches every core group (full external bandwidth)."""
        r = fattree4.radix
        for pod in range(fattree4.num_pods):
            groups = set()
            for g in range(r):
                agg = fattree4.agg_ids[(pod, g)]
                for n in fattree4.neighbors(agg):
                    attrs = fattree4.component(n).attributes
                    if fattree4.component(n).component_type is ComponentType.CORE_SWITCH:
                        groups.add(attrs["group"])
            assert groups == set(range(r))


class TestQueries:
    def test_pod_of_switches_and_hosts(self, fattree4):
        assert fattree4.pod_of("host/1/0/1") == 1
        assert fattree4.pod_of("edge/2/1") == 2
        assert fattree4.pod_of("agg/0/1") == 0
        assert fattree4.pod_of("core/0/0") is None
        assert fattree4.pod_of("border/0") is None

    def test_edge_switch_of(self, fattree4):
        assert fattree4.edge_switch_of("host/1/0/1") == "edge/1/0"

    def test_rack_is_edge_switch(self, fattree4):
        assert fattree4.rack_of("host/0/1/0") == "edge/0/1"

    def test_hosts_in_rack(self, fattree4):
        hosts = fattree4.hosts_in_rack("edge/0/0")
        assert sorted(hosts) == ["host/0/0/0", "host/0/0/1"]

    def test_racks_cover_all_hosts(self, fattree4):
        racks = fattree4.racks()
        covered = [h for rack in racks for h in fattree4.hosts_in_rack(rack)]
        assert sorted(covered) == sorted(fattree4.hosts)

    def test_unknown_component_raises(self, fattree4):
        with pytest.raises(TopologyError):
            fattree4.component("nope")
        with pytest.raises(TopologyError):
            fattree4.neighbors("nope")
        with pytest.raises(TopologyError):
            fattree4.hosts_in_rack("nope")

    def test_symmetry_class_is_tier(self, fattree4):
        assert fattree4.symmetry_class_of("host/0/0/0") == "host"
        assert fattree4.symmetry_class_of("core/0/0") == "core_switch"
        assert fattree4.symmetry_class_of("border/0") == "border_switch"

    def test_contains(self, fattree4):
        assert "host/0/0/0" in fattree4
        assert "nope" not in fattree4

    def test_frozen_after_build(self, fattree4):
        with pytest.raises(TopologyError):
            fattree4._add_host("host/extra")

    def test_override_probabilities(self, fattree4):
        fattree4.override_probabilities({"host/0/0/0": 0.5})
        assert fattree4.component("host/0/0/0").failure_probability == 0.5

    def test_components_of_type(self, fattree4):
        borders = fattree4.components_of_type(ComponentType.BORDER_SWITCH)
        assert len(borders) == fattree4.radix

    def test_repr(self, fattree4):
        assert "12 hosts" in repr(fattree4)


class TestProbabilityAssignment:
    def test_paper_policy_applied(self, fattree8):
        switch_probs = [
            fattree8.component(s).failure_probability for s in fattree8.switches
        ]
        host_probs = [
            fattree8.component(h).failure_probability for h in fattree8.hosts
        ]
        assert 0.004 < sum(switch_probs) / len(switch_probs) < 0.012
        assert 0.006 < sum(host_probs) / len(host_probs) < 0.014

    def test_links_perfectly_reliable_by_default(self, fattree4):
        for component in fattree4.components_of_type(ComponentType.LINK):
            assert component.is_perfectly_reliable

    def test_seeded_topologies_identical(self):
        a = FatTreeTopology(4, seed=42)
        b = FatTreeTopology(4, seed=42)
        assert a.failure_probabilities() == b.failure_probabilities()


class TestScaleProperty:
    @given(k=st.sampled_from([4, 6, 8, 10]))
    @settings(max_examples=4, deadline=None)
    def test_host_and_link_count_formulas(self, k):
        topo = FatTreeTopology(k, seed=0)
        r = k // 2
        assert len(topo.hosts) == (k - 1) * r * r
        # hosts + edge-agg + agg-core + border-core links
        expected_links = (k - 1) * r * r + (k - 1) * r * r + (k - 1) * r * r + r * r
        assert topo.summarize().links == expected_links
