"""Multi-zone topology, zone-correlated failures and zone constraints.

Covers the zone-aware robustness stack end to end: the joined fat-tree
zones (repro.topology.zones), the per-zone shared fault roots
(repro.faults.inventory), the placement constraints and their repair
semantics in the annealing move proposal (repro.core.plan), constrained
search + checkpoint round-trips, the symmetry screen's zone refinement,
and the ZoneOutage chaos injector.
"""

import math

import numpy as np
import pytest

from repro import serialization
from repro.app.structure import ApplicationStructure
from repro.core.api import AssessmentConfig, build_assessor
from repro.core.plan import DeploymentPlan, ZoneConstraints
from repro.core.search import DeploymentSearch, SearchSpec
from repro.core.transforms import BatchSymmetryFilter, SymmetryChecker
from repro.faults.component import ComponentType
from repro.faults.inventory import (
    attach_zone_shared_roots,
    build_zone_inventory,
    validate_failure_probabilities,
    zone_shared_root_ids,
)
from repro.routing import engine_for
from repro.routing.generic import GenericReachabilityEngine
from repro.runtime.chaos import ZONE_OUTAGE_PROBABILITY, ZoneOutage
from repro.topology.zones import MultiZoneTopology
from repro.util.errors import (
    ConfigurationError,
    UnsatisfiableRequirements,
    ValidationError,
)


@pytest.fixture
def zones2():
    return MultiZoneTopology(zones=2, k=4, seed=7)


@pytest.fixture
def zone_model(zones2):
    return build_zone_inventory(zones2, seed=7)


STRUCTURE = ApplicationStructure.k_of_n(1, 3)
CROSS_ZONE = ZoneConstraints.from_mapping(
    primary_zone="zone0", min_outside_primary=1
)


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------


class TestMultiZoneTopology:
    def test_two_fat_tree_zones(self, zones2):
        assert len(zones2.hosts) == 24  # 2 zones x 12 hosts (k=4)
        assert len(zones2.hosts_in_zone("zone0")) == 12
        assert len(zones2.hosts_in_zone("zone1")) == 12
        assert list(zones2.zone_names) == ["zone0", "zone1"]

    def test_zone_queries(self, zones2):
        host = zones2.hosts_in_zone("zone0")[0]
        assert zones2.zone_of(host) == "zone0"
        assert zones2.zone_of(zones2.wan_routers_in_zone("zone1")[0]) == "zone1"
        assert all(
            zones2.zone_of(e) == "zone0" for e in zones2.zone_elements("zone0")
        )

    def test_pods_are_zone_qualified(self, zones2):
        """Same pod index in different zones must not collide."""
        h0 = zones2.hosts_in_zone("zone0")[0]
        h1 = zones2.hosts_in_zone("zone1")[0]
        assert zones2.pod_of(h0) != zones2.pod_of(h1)
        assert zones2.pod_of(h0).startswith("zone0/")

    def test_symmetry_classes_are_zone_qualified(self, zones2):
        h0 = zones2.hosts_in_zone("zone0")[0]
        h1 = zones2.hosts_in_zone("zone1")[0]
        assert zones2.symmetry_class_of(h0) == "zone0:host"
        assert zones2.symmetry_class_of(h1) == "zone1:host"

    def test_wan_joins_the_zones(self, zones2):
        """Cross-zone paths exist and route through the WAN mesh."""
        import networkx as nx

        assert nx.is_connected(zones2.graph)
        h0 = zones2.hosts_in_zone("zone0")[0]
        h1 = zones2.hosts_in_zone("zone1")[0]
        path = nx.shortest_path(zones2.graph, h0, h1)
        assert any(node.startswith("wan/") for node in path)

    def test_dispatches_to_generic_engine(self, zones2):
        assert isinstance(engine_for(zones2), GenericReachabilityEngine)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            MultiZoneTopology(zones=1, k=4)
        with pytest.raises(ConfigurationError):
            MultiZoneTopology(zones=2, k=5)


# ----------------------------------------------------------------------
# Inventory: zone shared roots and validation
# ----------------------------------------------------------------------


class TestZoneInventory:
    def test_every_zone_element_depends_on_its_roots(self, zones2, zone_model):
        roots = set(zone_shared_root_ids(zone_model, "zone0"))
        assert len(roots) == 3  # power feed, cooling plant, control plane
        for element in zones2.zone_elements("zone0"):
            events = zone_model.tree_for(element).basic_events()
            assert roots <= set(events)

    def test_roots_do_not_cross_zones(self, zone_model, zones2):
        zone1_roots = set(zone_shared_root_ids(zone_model, "zone1"))
        host0 = zones2.hosts_in_zone("zone0")[0]
        events = set(zone_model.tree_for(host0).basic_events())
        assert not (zone1_roots & events)

    def test_missing_zone_raises(self, zone_model):
        with pytest.raises(ConfigurationError):
            zone_shared_root_ids(zone_model, "zone9")

    def test_root_probability_overrides_are_validated(self, zones2):
        with pytest.raises(ValidationError):
            build_zone_inventory(
                zones2, root_probabilities={"power-feed": 1.5}, seed=1
            )

    def test_wan_conduits_attach_to_routers(self, zones2):
        model = build_zone_inventory(zones2, seed=7)
        router = zones2.wan_routers_in_zone("zone0")[0]
        events = set(model.tree_for(router).basic_events())
        assert any(event.startswith("wan-conduit/") for event in events)


class TestProbabilityValidation:
    def test_collects_every_bad_field(self):
        with pytest.raises(ValidationError) as excinfo:
            validate_failure_probabilities(
                {
                    "nan": math.nan,
                    "negative": -0.1,
                    "above-one": 1.5,
                    "fine": 0.3,
                    "stringy": "half",
                }
            )
        fields = sorted(field for field, _ in excinfo.value.errors)
        assert fields == ["above-one", "nan", "negative", "stringy"]

    def test_accepts_valid_probabilities(self):
        validate_failure_probabilities({"a": 0.0, "b": 0.5, "c": 1.0})

    def test_inventory_boundary_rejects_nan(self, zones2):
        """A NaN in an operator probability feed is caught, by component
        id, before it can poison a sampled round."""
        model = build_zone_inventory(zones2, seed=7)
        probabilities = dict(model.failure_probabilities())
        host = zones2.hosts_in_zone("zone0")[0]
        probabilities[host] = math.nan
        with pytest.raises(ValidationError) as excinfo:
            validate_failure_probabilities(probabilities)
        assert [field for field, _ in excinfo.value.errors] == [host]


# ----------------------------------------------------------------------
# Zone constraints
# ----------------------------------------------------------------------


class TestZoneConstraints:
    def test_min_outside_primary(self, zones2):
        z0 = zones2.hosts_in_zone("zone0")
        z1 = zones2.hosts_in_zone("zone1")
        pinned = DeploymentPlan.from_mapping({"app": z0[:3]})
        spread = DeploymentPlan.from_mapping({"app": [z0[0], z0[1], z1[0]]})
        assert not CROSS_ZONE.satisfied_by(pinned, zones2)
        assert CROSS_ZONE.satisfied_by(spread, zones2)
        fields = [f for f, _ in CROSS_ZONE.violations(pinned, zones2)]
        assert fields == ["min_outside_primary"]

    def test_pinned_zones(self, zones2):
        constraints = ZoneConstraints.from_mapping(
            pinned_zones={"app": ["zone1"]}
        )
        z1_plan = DeploymentPlan.from_mapping(
            {"app": zones2.hosts_in_zone("zone1")[:2]}
        )
        mixed = DeploymentPlan.from_mapping(
            {
                "app": [
                    zones2.hosts_in_zone("zone1")[0],
                    zones2.hosts_in_zone("zone0")[0],
                ]
            }
        )
        assert constraints.satisfied_by(z1_plan, zones2)
        assert not constraints.satisfied_by(mixed, zones2)

    def test_spread_components(self, zones2):
        constraints = ZoneConstraints.from_mapping(spread_components=["app"])
        same_zone = DeploymentPlan.from_mapping(
            {"app": zones2.hosts_in_zone("zone0")[:2]}
        )
        split = DeploymentPlan.from_mapping(
            {
                "app": [
                    zones2.hosts_in_zone("zone0")[0],
                    zones2.hosts_in_zone("zone1")[0],
                ]
            }
        )
        assert not constraints.satisfied_by(same_zone, zones2)
        assert constraints.satisfied_by(split, zones2)

    def test_zoneless_topology_is_a_violation(self, fattree4):
        plan = DeploymentPlan.from_mapping({"app": fattree4.hosts[:3]})
        fields = [f for f, _ in CROSS_ZONE.violations(plan, fattree4)]
        assert fields == ["topology"]

    def test_validate_raises_validation_error(self, zones2):
        pinned = DeploymentPlan.from_mapping(
            {"app": zones2.hosts_in_zone("zone0")[:3]}
        )
        with pytest.raises(ValidationError):
            CROSS_ZONE.validate(pinned, zones2)

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            ZoneConstraints(min_outside_primary=-1)
        with pytest.raises(ConfigurationError):
            ZoneConstraints(min_outside_primary=1)  # no primary zone
        with pytest.raises(ConfigurationError):
            ZoneConstraints.from_mapping(pinned_zones={"app": []})

    def test_trivial_constraints(self):
        assert ZoneConstraints().is_trivial
        assert not CROSS_ZONE.is_trivial


class TestConstrainedPlans:
    def test_random_plan_satisfies_constraints(self, zones2):
        for seed in range(5):
            plan = DeploymentPlan.random(
                zones2, STRUCTURE, rng=seed, zone_constraints=CROSS_ZONE
            )
            assert CROSS_ZONE.satisfied_by(plan, zones2)

    def test_impossible_constraints_raise(self, zones2):
        impossible = ZoneConstraints.from_mapping(
            pinned_zones={"app": ["zone9"]}
        )
        with pytest.raises(UnsatisfiableRequirements):
            DeploymentPlan.random(
                zones2, STRUCTURE, rng=1, zone_constraints=impossible,
                max_attempts=10,
            )

    def test_propose_move_preserves_compliance(self, zones2):
        """A constraint-satisfying incumbent only proposes compliant moves."""
        rng = np.random.default_rng(3)
        plan = DeploymentPlan.random(
            zones2, STRUCTURE, rng=rng, zone_constraints=CROSS_ZONE
        )
        for _ in range(25):
            move = plan.propose_move(zones2, rng=rng, zone_constraints=CROSS_ZONE)
            candidate = move.apply(plan)
            assert CROSS_ZONE.satisfied_by(candidate, zones2)
            plan = candidate

    def test_propose_move_repairs_violations(self, zones2):
        """A violating incumbent walks toward compliance, never away."""
        rng = np.random.default_rng(5)
        plan = DeploymentPlan.from_mapping(
            {"app": zones2.hosts_in_zone("zone0")[:3]}
        )
        baseline = len(CROSS_ZONE.violations(plan, zones2))
        assert baseline == 1
        for _ in range(25):
            move = plan.propose_move(zones2, rng=rng, zone_constraints=CROSS_ZONE)
            candidate = move.apply(plan)
            count = len(CROSS_ZONE.violations(candidate, zones2))
            assert count == 0 or count < baseline
            plan = candidate
            baseline = len(CROSS_ZONE.violations(plan, zones2))
        assert CROSS_ZONE.satisfied_by(plan, zones2)

    def test_no_constraints_keeps_rng_stream(self, zones2):
        """zone_constraints=None must not perturb the draw sequence."""
        plan = DeploymentPlan.from_mapping(
            {"app": zones2.hosts_in_zone("zone0")[:3]}
        )
        bare = plan.propose_move(zones2, rng=17)
        gated = plan.propose_move(zones2, rng=17, zone_constraints=None)
        assert (bare.old_host, bare.new_host) == (gated.old_host, gated.new_host)


# ----------------------------------------------------------------------
# Constrained search, checkpoints, symmetry
# ----------------------------------------------------------------------


class FakeClock:
    def __init__(self, step=0.01):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def _zone_search(zones2, zone_model, **kwargs):
    kwargs.setdefault("rng", 11)
    kwargs.setdefault("clock", FakeClock())
    return DeploymentSearch.from_config(
        zones2,
        zone_model,
        AssessmentConfig(rounds=600, rng=5),
        **kwargs,
    )


class TestConstrainedSearch:
    def test_search_result_satisfies_constraints(self, zones2, zone_model):
        spec = SearchSpec(
            STRUCTURE,
            max_seconds=30.0,
            max_iterations=10,
            zone_constraints=CROSS_ZONE,
        )
        result = _zone_search(zones2, zone_model).search(spec)
        assert CROSS_ZONE.satisfied_by(result.best_plan, zones2)

    def test_spec_round_trip(self):
        spec = SearchSpec(
            STRUCTURE,
            max_seconds=5.0,
            zone_constraints=CROSS_ZONE,
        )
        document = serialization.search_spec_to_dict(spec)
        restored = serialization.search_spec_from_dict(document)
        assert restored.zone_constraints == CROSS_ZONE

    def test_spec_round_trip_without_constraints(self):
        spec = SearchSpec(STRUCTURE, max_seconds=5.0)
        document = serialization.search_spec_to_dict(spec)
        assert document["zone_constraints"] is None
        assert serialization.search_spec_from_dict(spec_document_legacy(document)).zone_constraints is None

    def test_checkpoint_resume_keeps_constraints(
        self, zones2, zone_model, tmp_path
    ):
        """A search interrupted mid-anneal resumes with its zone
        constraints intact and finishes on a compliant plan."""
        ckpt = str(tmp_path / "zones.json")
        spec = SearchSpec(
            STRUCTURE,
            max_seconds=50.0,
            max_iterations=6,
            zone_constraints=CROSS_ZONE,
        )
        _zone_search(
            zones2, zone_model, checkpoint_path=ckpt, checkpoint_every=2
        ).search(spec)

        document = serialization.load(ckpt)
        restored_spec = serialization.search_spec_from_dict(document["spec"])
        assert restored_spec.zone_constraints == CROSS_ZONE

        resumed = _zone_search(
            zones2, zone_model, checkpoint_path=ckpt, checkpoint_every=2
        ).resume(ckpt, max_iterations=12)
        assert resumed.iterations == 12
        assert CROSS_ZONE.satisfied_by(resumed.best_plan, zones2)


def spec_document_legacy(document):
    """A pre-zone checkpoint document: no zone_constraints key at all."""
    legacy = dict(document)
    legacy.pop("zone_constraints", None)
    return legacy


class TestZoneSymmetry:
    def test_hosts_differing_only_by_zone_are_not_equivalent(
        self, zones2, zone_model
    ):
        """The mirror host in the other zone has a different shared-root
        context, so swapping zones is a real move, not a symmetry skip."""
        checker = SymmetryChecker(zones2, zone_model)
        filt = BatchSymmetryFilter(checker)
        h0 = "zone0/host/0/0/0"
        mirror = "zone1/host/0/0/0"
        assert filt.host_context_label(h0) != filt.host_context_label(mirror)

        other = ["zone0/host/1/0/0", "zone1/host/2/1/1"]
        plan_a = DeploymentPlan.from_mapping({"app": [h0] + other})
        plan_b = DeploymentPlan.from_mapping({"app": [mirror] + other})
        assert not filt.equivalent(plan_a, plan_b)
        assert not checker.equivalent(plan_a, plan_b)

    def test_same_zone_mirror_hosts_are_equivalent(self, zones2, zone_model):
        """Within one zone the fat-tree symmetry still collapses mirrors."""
        checker = SymmetryChecker(zones2, zone_model)
        filt = BatchSymmetryFilter(checker)
        a = "zone0/host/0/0/0"
        b = "zone0/host/0/0/1"  # same edge switch, same pod, same roots
        assert filt.host_context_label(a) == filt.host_context_label(b)
        other = ["zone0/host/1/0/0", "zone1/host/2/1/1"]
        plan_a = DeploymentPlan.from_mapping({"app": [a] + other})
        plan_b = DeploymentPlan.from_mapping({"app": [b] + other})
        assert filt.equivalent(plan_a, plan_b) == checker.equivalent(
            plan_a, plan_b
        )


# ----------------------------------------------------------------------
# Zone outage injection
# ----------------------------------------------------------------------


class TestZoneOutage:
    def test_inject_and_revert_restore_probabilities(self, zone_model):
        before = dict(zone_model.failure_probabilities())
        outage = ZoneOutage(zone_model, "zone0")
        roots = outage.inject()
        assert outage.active
        after = zone_model.failure_probabilities()
        for root in roots:
            assert after[root] == ZONE_OUTAGE_PROBABILITY
        outage.revert()
        assert not outage.active
        assert zone_model.failure_probabilities() == before

    def test_idempotent(self, zone_model):
        outage = ZoneOutage(zone_model, "zone0")
        outage.inject()
        outage.inject()  # no-op, must not overwrite the saved originals
        outage.revert()
        outage.revert()
        probabilities = zone_model.failure_probabilities()
        for root in outage.root_ids:
            assert probabilities[root] < 0.5

    def test_context_manager_and_correlated_damage(self, zones2, zone_model):
        """A zone outage must take down a zone-pinned plan's reliability
        far below the cross-zone plan's — the correlated event the
        constraints guard against."""
        assessor = build_assessor(
            zones2, zone_model, AssessmentConfig(rounds=1_500, rng=3)
        )
        z0 = zones2.hosts_in_zone("zone0")
        z1 = zones2.hosts_in_zone("zone1")
        pinned = DeploymentPlan.from_mapping({"app": z0[:3]})
        spread = DeploymentPlan.from_mapping({"app": [z0[0], z0[1], z1[0]]})
        with ZoneOutage(zone_model, "zone0"):
            assessor.refresh_probabilities()
            pinned_score = assessor.assess(pinned, STRUCTURE).score
            spread_score = assessor.assess(spread, STRUCTURE).score
        assessor.refresh_probabilities()
        healthy_score = assessor.assess(pinned, STRUCTURE).score
        assert pinned_score < 0.1
        assert spread_score > 0.8
        assert healthy_score > 0.9

    def test_rejects_bad_probability(self, zone_model):
        with pytest.raises(ConfigurationError):
            ZoneOutage(zone_model, "zone0", probability=1.0)

    def test_partial_inject_failure_restores_mutated_roots(self, zone_model):
        """An override that fails partway through inject() must roll back
        the roots already driven to the outage probability: ``with``
        never reaches ``__exit__`` when ``__enter__`` raises, so inject
        itself has to be all-or-nothing."""

        class FlakyModel:
            """Delegating proxy whose override refuses one poisoned root —
            but only when driving it *to* the outage probability, so the
            rollback's restore of the original value still goes through."""

            def __init__(self, model, poison, probability):
                self._model = model
                self._poison = poison
                self._probability = probability

            def __getattr__(self, name):
                return getattr(self._model, name)

            def override_probabilities(self, overrides):
                if overrides.get(self._poison) == self._probability:
                    raise RuntimeError("chaos: override refused")
                self._model.override_probabilities(overrides)

        before = dict(zone_model.failure_probabilities())
        roots = zone_shared_root_ids(zone_model, "zone0")
        assert len(roots) >= 2  # the partial-application hazard needs >1 root
        flaky = FlakyModel(zone_model, roots[-1], ZONE_OUTAGE_PROBABILITY)
        outage = ZoneOutage(flaky, "zone0")
        with pytest.raises(RuntimeError):
            with outage:
                pass  # pragma: no cover - inject raises before the body
        assert not outage.active
        assert zone_model.failure_probabilities() == before
