"""Tests for the parallel MapReduce-style assessor (repro.runtime)."""

import numpy as np
import pytest

from repro.app.structure import ApplicationStructure
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.runtime import mapreduce
from repro.runtime.mapreduce import ParallelAssessor, RetryPolicy
from repro.util.errors import ConfigurationError
from repro.core.api import AssessmentConfig


@pytest.fixture
def structure():
    return ApplicationStructure.k_of_n(2, 3)


@pytest.fixture
def plan(fattree4, structure):
    return DeploymentPlan.random(fattree4, structure, rng=4)


class TestPortions:
    def test_even_split(self, fattree4, inventory):
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", workers=4, backend="inline")) as pa:
            assert pa._portions(100) == [25, 25, 25, 25]

    def test_remainder_distributed(self, fattree4, inventory):
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", workers=3, backend="inline")) as pa:
            assert pa._portions(10) == [4, 3, 3]

    def test_more_workers_than_rounds(self, fattree4, inventory):
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", workers=4, backend="inline")) as pa:
            assert pa._portions(2) == [1, 1]

    def test_rejects_zero_workers(self, fattree4, inventory):
        with pytest.raises(ConfigurationError):
            ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", workers=0))

    def test_rejects_unknown_backend(self, fattree4, inventory):
        with pytest.raises(ConfigurationError):
            ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", backend="gpu"))

    def test_rejects_zero_rounds_at_construction(self, fattree4, inventory):
        with pytest.raises(ConfigurationError):
            ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=0, backend="inline"))

    def test_rejects_zero_rounds_override(self, fattree4, inventory):
        structure = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.random(fattree4, structure, rng=4)
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", workers=2, backend="inline")) as pa:
            with pytest.raises(ConfigurationError):
                pa.assess(plan, structure, rounds=0)
            with pytest.raises(ConfigurationError):
                pa._portions(-5)


class TestInlineBackend:
    def test_total_rounds_preserved(self, fattree4, inventory, plan, structure):
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=1_000, workers=3, rng=1, backend="inline")) as pa:
            result = pa.assess(plan, structure)
        assert result.estimate.rounds == 1_000
        assert result.per_round.shape == (1_000,)

    def test_statistically_matches_sequential(self, fattree4, inventory, plan, structure):
        sequential = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=30_000, rng=7)).assess(plan, structure)
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=30_000, workers=3, rng=8, backend="inline")) as pa:
            parallel = pa.assess(plan, structure)
        # Two independent 30k-round estimates: sigma of difference ~ 0.002.
        assert parallel.score == pytest.approx(sequential.score, abs=0.012)

    def test_rounds_override(self, fattree4, inventory, plan, structure):
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=1_000, workers=2, rng=1, backend="inline")) as pa:
            result = pa.assess(plan, structure, rounds=600)
        assert result.estimate.rounds == 600


class TestProcessBackend:
    def test_process_pool_roundtrip(self, fattree4, inventory, plan, structure):
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=4_000, workers=2, rng=3, backend="process")) as pa:
            result = pa.assess(plan, structure)
        assert result.estimate.rounds == 4_000
        assert 0.5 < result.score <= 1.0

    def test_process_matches_inline_statistically(
        self, fattree4, inventory, plan, structure
    ):
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=20_000, workers=2, rng=3, backend="process")) as pa:
            proc = pa.assess(plan, structure)
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=20_000, workers=2, rng=3, backend="inline")) as pa:
            inline = pa.assess(plan, structure)
        assert proc.score == pytest.approx(inline.score, abs=0.015)

    def test_pool_reusable_across_assessments(self, fattree4, inventory, plan, structure):
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=2_000, workers=2, rng=3, backend="process")) as pa:
            first = pa.assess(plan, structure)
            second = pa.assess(plan, structure)
        assert first.estimate.rounds == second.estimate.rounds == 2_000

    def test_close_idempotent(self, fattree4, inventory):
        pa = ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", workers=2, backend="process"))
        pa.close()
        pa.close()

    def test_close_drains_gracefully(self, fattree4, inventory, plan, structure):
        """A healthy pool is drained (close + join), not terminated: work
        dispatched before close() still lands, and no registry entry or
        worker process is leaked."""
        pa = ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=2_000, workers=2, rng=3, backend="process"))
        key = pa._registry_key
        result = pa.assess(plan, structure)
        assert result.estimate.rounds == 2_000
        pa.close()
        assert pa._pool is None
        assert key not in mapreduce._FORK_REGISTRY

    def test_del_reaps_pool(self, fattree4, inventory):
        pa = ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", workers=2, backend="process"))
        key = pa._registry_key
        pa.__del__()
        assert key not in mapreduce._FORK_REGISTRY


class TestRuntimeMetadata:
    def test_metadata_populated(self, fattree4, inventory, plan, structure):
        """The result carries real runtime metadata: actual worker count,
        one real per-portion seed per portion, zeroed fault counters."""
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=4_000, workers=2, rng=3, backend="process")) as pa:
            result = pa.assess(plan, structure)
        runtime = result.runtime
        assert runtime is not None
        assert runtime.backend == "process"
        assert runtime.workers == 2
        assert runtime.portions == 2
        assert len(runtime.portion_seeds) == 2
        assert len(set(runtime.portion_seeds)) == 2  # independent streams
        assert runtime.retries == 0
        assert runtime.pool_restarts == 0
        assert runtime.recovered_inline == 0
        assert runtime.dropped_rounds == 0
        assert not runtime.degraded
        assert not result.degraded
        # The aggregate closure size is a real count, not a sentinel.
        assert result.sampled_components > 0

    def test_inline_backend_also_reports_metadata(
        self, fattree4, inventory, plan, structure
    ):
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=1_000, workers=3, rng=1, backend="inline")) as pa:
            result = pa.assess(plan, structure)
        assert result.runtime.backend == "inline"
        assert result.runtime.portions == 3


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries >= 1
        assert policy.timeout_seconds is None

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_seconds=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_fraction=1.5)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_seconds=0.1,
            backoff_multiplier=2.0,
            max_backoff_seconds=0.3,
            jitter_fraction=0.0,
        )
        rng = np.random.default_rng(0)
        delays = [policy.backoff_for(a, rng) for a in range(1, 5)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert delays[2] == pytest.approx(0.3)  # capped
        assert delays[3] == pytest.approx(0.3)

    def test_jitter_bounded(self):
        policy = RetryPolicy(backoff_seconds=0.1, jitter_fraction=0.25)
        rng = np.random.default_rng(1)
        for _ in range(50):
            delay = policy.backoff_for(1, rng)
            assert 0.075 <= delay <= 0.125


class TestForkFallback:
    def test_falls_back_to_inline_without_fork(
        self, fattree4, inventory, monkeypatch
    ):
        monkeypatch.setattr(
            ParallelAssessor, "_fork_available", staticmethod(lambda: False)
        )
        with pytest.warns(RuntimeWarning, match="fork"):
            pa = ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", workers=2, backend="process"))
        try:
            assert pa.backend == "inline"
        finally:
            pa.close()

    def test_explicit_inline_does_not_warn(self, fattree4, inventory, monkeypatch):
        monkeypatch.setattr(
            ParallelAssessor, "_fork_available", staticmethod(lambda: False)
        )
        import warnings

        from repro.core.api import AssessmentConfig

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = AssessmentConfig(mode="parallel", workers=2, backend="inline")
            with ParallelAssessor.from_config(fattree4, inventory, config) as pa:
                assert pa.backend == "inline"
