"""Tests for the parallel MapReduce-style assessor (repro.runtime)."""

import numpy as np
import pytest

from repro.app.structure import ApplicationStructure
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.runtime.mapreduce import ParallelAssessor
from repro.util.errors import ConfigurationError


@pytest.fixture
def structure():
    return ApplicationStructure.k_of_n(2, 3)


@pytest.fixture
def plan(fattree4, structure):
    return DeploymentPlan.random(fattree4, structure, rng=4)


class TestPortions:
    def test_even_split(self, fattree4, inventory):
        with ParallelAssessor(fattree4, inventory, workers=4, backend="inline") as pa:
            assert pa._portions(100) == [25, 25, 25, 25]

    def test_remainder_distributed(self, fattree4, inventory):
        with ParallelAssessor(fattree4, inventory, workers=3, backend="inline") as pa:
            assert pa._portions(10) == [4, 3, 3]

    def test_more_workers_than_rounds(self, fattree4, inventory):
        with ParallelAssessor(fattree4, inventory, workers=4, backend="inline") as pa:
            assert pa._portions(2) == [1, 1]

    def test_rejects_zero_workers(self, fattree4, inventory):
        with pytest.raises(ConfigurationError):
            ParallelAssessor(fattree4, inventory, workers=0)

    def test_rejects_unknown_backend(self, fattree4, inventory):
        with pytest.raises(ConfigurationError):
            ParallelAssessor(fattree4, inventory, backend="gpu")


class TestInlineBackend:
    def test_total_rounds_preserved(self, fattree4, inventory, plan, structure):
        with ParallelAssessor(
            fattree4, inventory, rounds=1_000, workers=3, rng=1, backend="inline"
        ) as pa:
            result = pa.assess(plan, structure)
        assert result.estimate.rounds == 1_000
        assert result.per_round.shape == (1_000,)

    def test_statistically_matches_sequential(self, fattree4, inventory, plan, structure):
        sequential = ReliabilityAssessor(
            fattree4, inventory, rounds=30_000, rng=7
        ).assess(plan, structure)
        with ParallelAssessor(
            fattree4, inventory, rounds=30_000, workers=3, rng=8, backend="inline"
        ) as pa:
            parallel = pa.assess(plan, structure)
        # Two independent 30k-round estimates: sigma of difference ~ 0.002.
        assert parallel.score == pytest.approx(sequential.score, abs=0.012)

    def test_rounds_override(self, fattree4, inventory, plan, structure):
        with ParallelAssessor(
            fattree4, inventory, rounds=1_000, workers=2, rng=1, backend="inline"
        ) as pa:
            result = pa.assess(plan, structure, rounds=600)
        assert result.estimate.rounds == 600


class TestProcessBackend:
    def test_process_pool_roundtrip(self, fattree4, inventory, plan, structure):
        with ParallelAssessor(
            fattree4, inventory, rounds=4_000, workers=2, rng=3, backend="process"
        ) as pa:
            result = pa.assess(plan, structure)
        assert result.estimate.rounds == 4_000
        assert 0.5 < result.score <= 1.0

    def test_process_matches_inline_statistically(
        self, fattree4, inventory, plan, structure
    ):
        with ParallelAssessor(
            fattree4, inventory, rounds=20_000, workers=2, rng=3, backend="process"
        ) as pa:
            proc = pa.assess(plan, structure)
        with ParallelAssessor(
            fattree4, inventory, rounds=20_000, workers=2, rng=3, backend="inline"
        ) as pa:
            inline = pa.assess(plan, structure)
        assert proc.score == pytest.approx(inline.score, abs=0.015)

    def test_pool_reusable_across_assessments(self, fattree4, inventory, plan, structure):
        with ParallelAssessor(
            fattree4, inventory, rounds=2_000, workers=2, rng=3, backend="process"
        ) as pa:
            first = pa.assess(plan, structure)
            second = pa.assess(plan, structure)
        assert first.estimate.rounds == second.estimate.rounds == 2_000

    def test_close_idempotent(self, fattree4, inventory):
        pa = ParallelAssessor(fattree4, inventory, workers=2, backend="process")
        pa.close()
        pa.close()
