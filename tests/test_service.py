"""The resilient assessment service: admission, scheduling, anytime
degradation, drain semantics, health probes and the HTTP front-end."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.app.structure import ApplicationStructure
from repro.core.api import AssessmentConfig
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.service.client import HttpServiceClient, ServiceClient
from repro.service.health import (
    DRAINING,
    SERVING,
    STARTING,
    STOPPED,
    HealthMonitor,
)
from repro.service.queue import AdmissionQueue
from repro.service.requests import AssessRequest, SearchRequest, Ticket
from repro.service.scheduler import AssessmentService, ServiceConfig
from repro.service.server import ServiceHTTPServer
from repro.util.cancel import CancellationToken
from repro.util.errors import AdmissionRejected, ReproError, ValidationError


def _ticket(n: int) -> Ticket:
    return Ticket(
        id=f"t-{n}", kind="assess",
        request=AssessRequest(hosts=("h",), k=1),
        token=CancellationToken(),
    )


def _service(fattree4, inventory, **overrides) -> AssessmentService:
    defaults = dict(
        scale="tiny", rounds=2_000, queue_capacity=4, scheduler_workers=2
    )
    defaults.update(overrides)
    return AssessmentService(
        ServiceConfig(**defaults), topology=fattree4, dependency_model=inventory
    )


class TestAdmissionQueue:
    def test_fifo_and_depth(self):
        queue = AdmissionQueue(capacity=3)
        a, b = _ticket(1), _ticket(2)
        queue.submit(a)
        queue.submit(b)
        assert len(queue) == 2
        assert queue.pop() is a
        assert queue.pop() is b

    def test_overflow_is_typed_and_immediate(self):
        queue = AdmissionQueue(capacity=2)
        queue.submit(_ticket(1))
        queue.submit(_ticket(2))
        with pytest.raises(AdmissionRejected) as excinfo:
            queue.submit(_ticket(3))
        assert excinfo.value.reason == "queue_full"
        assert excinfo.value.queue_depth == 2
        assert excinfo.value.capacity == 2

    def test_drain_returns_stranded_and_rejects_new(self):
        queue = AdmissionQueue(capacity=4)
        queue.submit(_ticket(1))
        queue.submit(_ticket(2))
        stranded = queue.drain()
        assert [t.id for t in stranded] == ["t-1", "t-2"]
        assert len(queue) == 0
        with pytest.raises(AdmissionRejected) as excinfo:
            queue.submit(_ticket(3))
        assert excinfo.value.reason == "draining"

    def test_stopped_queue_rejects_with_stopped(self):
        queue = AdmissionQueue(capacity=2)
        queue.stop()
        with pytest.raises(AdmissionRejected) as excinfo:
            queue.submit(_ticket(1))
        assert excinfo.value.reason == "stopped"

    def test_pop_timeout_returns_none(self):
        queue = AdmissionQueue(capacity=1)
        assert queue.pop(timeout=0.01) is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)


class TestHealthMonitor:
    def test_lifecycle_is_forward_only(self):
        health = HealthMonitor()
        assert health.state == STARTING
        health.transition(SERVING)
        health.transition(DRAINING)
        health.transition(SERVING)  # ignored: backwards
        assert health.state == DRAINING
        health.transition(STOPPED)
        assert health.state == STOPPED

    def test_live_and_ready_split(self):
        health = HealthMonitor()
        assert health.live and not health.ready
        health.transition(SERVING)
        assert health.live and health.ready
        health.transition(DRAINING)
        assert health.live and not health.ready
        health.transition(STOPPED)
        assert not health.live

    def test_snapshot_records_transitions(self):
        health = HealthMonitor()
        health.transition(SERVING)
        snapshot = health.snapshot()
        assert snapshot["state"] == SERVING
        assert [t["state"] for t in snapshot["transitions"]] == [
            STARTING, SERVING,
        ]

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            HealthMonitor().transition("confused")


class TestServiceLifecycle:
    def test_normal_assess_round_trip(self, fattree4, inventory):
        with _service(fattree4, inventory) as service:
            client = ServiceClient(service)
            response = client.assess(fattree4.hosts[:3], k=2, timeout=60.0)
            assert response.ok
            assert response.status == "ok"
            assert response.backend == "chunked-sequential"
            assert 0.0 <= response.result["estimate"]["score"] <= 1.0
            assert response.result["runtime"]["cancelled"] is False
            assert response.request_id.startswith("req-")
        assert service.health.state == STOPPED

    def test_search_round_trip(self, fattree4, inventory):
        with _service(fattree4, inventory, rounds=500) as service:
            client = ServiceClient(service)
            response = client.search(
                k=2, n=3, max_seconds=0.5, timeout=60.0
            )
            assert response.ok
            assert response.backend == "search"
            assert response.result["best_plan"]
        assert service.health.state == STOPPED

    def test_invalid_request_never_costs_a_queue_slot(self, fattree4, inventory):
        with _service(fattree4, inventory) as service:
            with pytest.raises(ValidationError):
                service.submit(
                    "assess", AssessRequest(hosts=("host/nowhere",), k=1)
                )
            with pytest.raises(ValidationError):
                service.submit("mine", AssessRequest(hosts=("h",), k=1))
            assert len(service.queue) == 0
            assert service.status()["inflight"] == 0

    def test_burst_beyond_capacity_is_shed(self, fattree4, inventory):
        # Workers not started: the queue must fill to capacity exactly and
        # shed the rest with the typed rejection.
        service = _service(fattree4, inventory, queue_capacity=4)
        request = AssessRequest(hosts=tuple(fattree4.hosts[:3]), k=2)
        admitted, shed = [], 0
        for _ in range(10):
            try:
                admitted.append(service.submit("assess", request))
            except AdmissionRejected as exc:
                assert exc.reason == "queue_full"
                shed += 1
        assert len(admitted) == 4
        assert shed == 6
        assert service.metrics.counter("service/shed") == 6

        # Drain: every queued ticket resolves with a typed rejection
        # response instead of hanging forever.
        service.drain(timeout_seconds=1.0)
        for ticket in admitted:
            response = ticket.future.result(timeout=1.0)
            assert response.status == "rejected"
            assert response.error["reason"] == "draining"
        assert service.health.state == STOPPED

    def test_cancel_unknown_request_returns_false(self, fattree4, inventory):
        with _service(fattree4, inventory) as service:
            assert service.cancel("req-does-not-exist") is False

    def test_tight_deadline_yields_anytime_not_exception(
        self, fattree4, inventory
    ):
        """Deadline mid-run: the client gets a *response*, never a timeout
        exception — degraded (partial estimate) or cancelled (nothing
        completed), depending on where the deadline lands."""
        with _service(fattree4, inventory, chunks=16) as service:
            client = ServiceClient(service)
            response = client.assess(
                fattree4.hosts[:3],
                k=2,
                rounds=3_000_000,
                deadline_seconds=0.15,
                timeout=60.0,
            )
            assert response.status in ("ok", "degraded", "cancelled")
            if response.status == "degraded":
                runtime = response.result["runtime"]
                assert runtime["cancelled"] is True
                assert runtime["dropped_rounds"] > 0
            elif response.status == "cancelled":
                assert response.error["error"] == "cancelled"

    def test_drain_rejects_queued_but_finishes_inflight(
        self, fattree4, inventory
    ):
        service = _service(
            fattree4, inventory, scheduler_workers=1, queue_capacity=4,
            rounds=200_000, chunks=4,
        ).start()
        request = AssessRequest(hosts=tuple(fattree4.hosts[:3]), k=2)
        tickets = [service.submit("assess", request) for _ in range(3)]
        service.drain(timeout_seconds=30.0)
        responses = [t.future.result(timeout=5.0) for t in tickets]
        statuses = sorted(r.status for r in responses)
        # At least the tail of the queue was rejected; whatever a worker
        # had already popped finished (possibly degraded, never dropped).
        assert "rejected" in statuses
        for response in responses:
            assert response.status in ("ok", "degraded", "cancelled", "rejected")
        assert service.health.state == STOPPED

    def test_status_snapshot_shape(self, fattree4, inventory):
        with _service(fattree4, inventory) as service:
            status = service.status()
            assert status["health"]["state"] == SERVING
            assert status["queue"] == {
                "depth": 0, "capacity": 4, "draining": False,
            }
            assert status["breaker"]["state"] == "closed"
            assert status["inflight"] == 0

    def test_metrics_record_requests_and_latency(self, fattree4, inventory):
        with _service(fattree4, inventory) as service:
            ServiceClient(service).assess(
                fattree4.hosts[:3], k=2, timeout=60.0
            )
            assert service.metrics.counter("service/requests") == 1
            assert service.metrics.counter("service/admitted") == 1
            assert service.metrics.counter("service/status/ok") == 1
            snapshot = service.metrics.snapshot()
            assert snapshot["timers"]["service/latency"]["calls"] == 1
            assert snapshot["timers"]["service/queue_wait"]["calls"] == 1


class TestChunkedAnytime:
    """The sequential anytime backend, driven deterministically."""

    STRUCTURE = ApplicationStructure.k_of_n(2, 3)

    class _CancelAfterFirstChunk:
        """Assessor proxy: fires the token once the first chunk returns."""

        def __init__(self, assessor, token):
            self._assessor = assessor
            self._token = token

        def assess(self, plan, structure, rounds=None, cancel=None):
            result = self._assessor.assess(
                plan, structure, rounds=rounds, cancel=cancel
            )
            self._token.cancel("test: first chunk done")
            return result

    def test_partial_chunks_become_widened_estimate(self, fattree4, inventory):
        service = _service(fattree4, inventory, chunks=8)
        assessor = ReliabilityAssessor.from_config(
            fattree4, inventory, AssessmentConfig(rounds=800, rng=11)
        )
        token = CancellationToken()
        plan = DeploymentPlan.single_component(
            fattree4.hosts[:3], self.STRUCTURE.components[0].name
        )
        result = service._chunked_assess(
            self._CancelAfterFirstChunk(assessor, token),
            plan,
            self.STRUCTURE,
            800,
            token,
        )
        assert result.runtime.cancelled
        assert result.runtime.backend == "chunked"
        assert result.estimate.rounds == 100  # 1 of 8 chunks
        assert result.runtime.dropped_rounds == 700
        assert result.runtime.dropped_portions == 7
        assert result.degraded

        from repro.sampling.statistics import estimate_from_results

        unwidened = estimate_from_results(np.asarray(result.per_round))
        coverage = 800 / 100
        assert result.estimate.variance == pytest.approx(
            unwidened.variance * coverage
        )

    def test_pre_fired_token_raises(self, fattree4, inventory):
        from repro.util.errors import OperationCancelled

        service = _service(fattree4, inventory)
        assessor = ReliabilityAssessor.from_config(
            fattree4, inventory, AssessmentConfig(rounds=800, rng=11)
        )
        token = CancellationToken()
        token.cancel("gone")
        plan = DeploymentPlan.single_component(
            fattree4.hosts[:3], self.STRUCTURE.components[0].name
        )
        with pytest.raises(OperationCancelled):
            service._chunked_assess(assessor, plan, self.STRUCTURE, 800, token)

    def test_uncancelled_run_is_not_degraded(self, fattree4, inventory):
        service = _service(fattree4, inventory, chunks=8)
        assessor = ReliabilityAssessor.from_config(
            fattree4, inventory, AssessmentConfig(rounds=800, rng=11)
        )
        plan = DeploymentPlan.single_component(
            fattree4.hosts[:3], self.STRUCTURE.components[0].name
        )
        result = service._chunked_assess(
            assessor, plan, self.STRUCTURE, 800, CancellationToken()
        )
        assert not result.degraded
        assert not result.runtime.cancelled
        assert result.estimate.rounds == 800


class TestHTTPFrontend:
    @pytest.fixture
    def http_service(self, fattree4, inventory):
        service = _service(fattree4, inventory).start()
        httpd = ServiceHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        port = httpd.server_address[1]
        client = HttpServiceClient(f"http://127.0.0.1:{port}", timeout=60.0)
        yield service, client
        httpd.shutdown()
        thread.join(timeout=5.0)
        httpd.server_close()
        service.close()

    def test_readyz_and_healthz(self, http_service):
        service, client = http_service
        assert client.readyz() == {"ready": True, "state": "serving"}
        health = client.healthz()
        assert health["health"]["state"] == "serving"
        assert health["breaker"]["state"] == "closed"

    def test_assess_over_http(self, http_service, fattree4):
        _, client = http_service
        document = client.assess(fattree4.hosts[:3], k=2, rounds=1_000)
        assert document["status"] == "ok"
        assert document["backend"] == "chunked-sequential"
        assert 0.0 <= document["result"]["estimate"]["score"] <= 1.0

    def test_validation_error_rehydrates_client_side(self, http_service):
        _, client = http_service
        with pytest.raises(ValidationError) as excinfo:
            client.assess(["host/nowhere"], k=1)
        assert "hosts" in excinfo.value.fields()

    def test_malformed_body_is_a_field_error(self, http_service):
        _, client = http_service
        with pytest.raises(ValidationError) as excinfo:
            client.search(k="two", n=3)
        assert "k" in excinfo.value.fields()

    def test_cancel_unknown_request_is_404(self, http_service):
        _, client = http_service
        with pytest.raises(ReproError):
            client.cancel("req-unknown")

    def test_metrics_endpoint(self, http_service, fattree4):
        _, client = http_service
        client.assess(fattree4.hosts[:3], k=2, rounds=1_000)
        snapshot = client.metrics()
        assert snapshot["counters"]["service/requests"] >= 1
        assert "service/latency" in snapshot["timers"]
