"""Tests for the dependency model and synthetic inventories."""

import numpy as np
import pytest

from repro.faults.component import Component, ComponentType
from repro.faults.dependencies import DependencyModel
from repro.faults.faulttree import and_gate, basic
from repro.faults.inventory import (
    attach_host_software,
    attach_power_supplies,
    attach_rack_cooling,
    attach_redundant_power,
    build_paper_inventory,
    build_rich_inventory,
    power_supplies_of_plan,
)
from repro.util.errors import ConfigurationError


class TestDependencyModel:
    def test_empty_model_uses_trivial_trees(self, bare_model):
        tree = bare_model.tree_for("host/0/0/0")
        assert tree.basic_events() == {"host/0/0/0"}

    def test_unknown_subject_rejected(self, bare_model):
        with pytest.raises(ConfigurationError):
            bare_model.tree_for("ghost")

    def test_attach_branch_builds_or_tree(self, fattree4):
        model = DependencyModel.empty(fattree4)
        model.add_dependency_component(
            Component("power/0", ComponentType.POWER_SUPPLY, 0.05)
        )
        model.attach_branch("host/0/0/0", basic("power/0"))
        tree = model.tree_for("host/0/0/0")
        assert tree.basic_events() == {"host/0/0/0", "power/0"}
        assert tree.evaluate_round({"power/0"})
        assert tree.evaluate_round({"host/0/0/0"})
        assert not tree.evaluate_round(set())

    def test_attach_multiple_branches_flattens_or(self, fattree4):
        model = DependencyModel.empty(fattree4)
        for i in range(3):
            model.add_dependency_component(
                Component(f"dep/{i}", ComponentType.COOLING, 0.05)
            )
            model.attach_branch("host/0/0/0", basic(f"dep/{i}"))
        tree = model.tree_for("host/0/0/0")
        assert len(tree.root.children) == 4  # own event + 3 branches
        assert tree.depth() == 2

    def test_attach_and_branch(self, fattree4):
        model = DependencyModel.empty(fattree4)
        for name in ("a", "b"):
            model.add_dependency_component(
                Component(name, ComponentType.POWER_SUPPLY, 0.1)
            )
        model.attach_branch("host/0/0/0", and_gate(basic("a"), basic("b")))
        tree = model.tree_for("host/0/0/0")
        assert not tree.evaluate_round({"a"})
        assert tree.evaluate_round({"a", "b"})

    def test_dependency_id_collision_with_topology(self, fattree4):
        model = DependencyModel.empty(fattree4)
        with pytest.raises(ConfigurationError):
            model.add_dependency_component(
                Component("host/0/0/0", ComponentType.POWER_SUPPLY, 0.1)
            )

    def test_conflicting_dependency_definition(self, fattree4):
        model = DependencyModel.empty(fattree4)
        model.add_dependency_component(Component("p", ComponentType.POWER_SUPPLY, 0.1))
        with pytest.raises(ConfigurationError):
            model.add_dependency_component(
                Component("p", ComponentType.POWER_SUPPLY, 0.2)
            )
        # Re-adding the identical component is fine.
        model.add_dependency_component(Component("p", ComponentType.POWER_SUPPLY, 0.1))

    def test_attach_to_unknown_subject(self, fattree4):
        model = DependencyModel.empty(fattree4)
        with pytest.raises(ConfigurationError):
            model.attach_branch("ghost", basic("x"))

    def test_failure_probabilities_include_dependencies(self, inventory):
        probs = inventory.failure_probabilities()
        assert "power/0" in probs
        assert "host/0/0/0" in probs

    def test_basic_events_for_closure(self, inventory):
        events = inventory.basic_events_for(["host/0/0/0"])
        assert "host/0/0/0" in events
        assert any(e.startswith("power/") for e in events)

    def test_subject_failures_vectorised(self, inventory, rng):
        subjects = ["host/0/0/0", "edge/0/0"]
        events = inventory.basic_events_for(subjects)
        states = {e: rng.random(100) < 0.3 for e in events}
        failures = inventory.subject_failures(subjects, states)
        for subject in subjects:
            expected = inventory.tree_for(subject).evaluate(states)
            assert np.array_equal(failures[subject], expected)

    def test_component_lookup_spans_both_namespaces(self, inventory, fattree4):
        assert inventory.component("power/0").component_type is ComponentType.POWER_SUPPLY
        assert inventory.component("host/0/0/0").component_type is ComponentType.HOST

    def test_repr(self, inventory):
        assert "5 dependencies" in repr(inventory)


class TestPowerSupplies:
    def test_count_and_round_robin(self, fattree4):
        model = DependencyModel.empty(fattree4)
        ids = attach_power_supplies(model, count=5, seed=1)
        assert len(ids) == 5
        assert model.dependency_count() == 5

    def test_every_switch_and_host_annotated(self, inventory, fattree4):
        for switch in fattree4.switches:
            events = inventory.tree_for(switch).basic_events()
            assert any(e.startswith("power/") for e in events)
        for host in fattree4.hosts:
            events = inventory.tree_for(host).basic_events()
            assert any(e.startswith("power/") for e in events)

    def test_hosts_under_same_edge_share_supply(self, inventory, fattree4):
        for rack in fattree4.racks():
            supplies = set()
            for host in fattree4.hosts_in_rack(rack):
                events = inventory.tree_for(host).basic_events() - {host}
                supplies.add(frozenset(events))
            assert len(supplies) == 1  # the whole rack group shares one

    def test_power_failure_is_correlated(self, inventory, fattree4):
        """One supply failing brings down every subject depending on it."""
        shared = inventory.shared_dependencies()
        assert shared  # 5 supplies across 20 switches + 12 hosts must share
        supply = next(iter(s for s in shared if s.startswith("power/")))
        dependents = [
            s
            for s in list(fattree4.switches) + list(fattree4.hosts)
            if supply in inventory.tree_for(s).basic_events()
        ]
        assert len(dependents) >= 2
        for subject in dependents:
            assert inventory.tree_for(subject).evaluate_round({supply})

    def test_rejects_zero_supplies(self, fattree4):
        model = DependencyModel.empty(fattree4)
        with pytest.raises(ConfigurationError):
            attach_power_supplies(model, count=0)

    def test_power_supplies_of_plan(self, inventory, fattree4):
        hosts = fattree4.hosts[:3]
        supplies = power_supplies_of_plan(inventory, hosts)
        assert len(supplies) == 3
        for s in supplies:
            assert len(s) == 1
            assert next(iter(s)).startswith("power/")


class TestRichInventory:
    def test_redundant_power_needs_both(self, fattree4):
        model = DependencyModel.empty(fattree4)
        pairs = attach_redundant_power(model, pairs=2, seed=1)
        assert len(pairs) == 2
        tree = model.tree_for("host/0/0/0")
        pair = next(p for p in pairs if p[0] in tree.basic_events())
        assert not tree.evaluate_round({pair[0]})
        assert tree.evaluate_round({pair[0], pair[1]})

    def test_cooling_per_rack(self, fattree4):
        model = DependencyModel.empty(fattree4)
        cooling = attach_rack_cooling(model, redundancy=2, seed=1)
        assert set(cooling) == set(fattree4.racks())
        rack = fattree4.racks()[0]
        units = cooling[rack]
        host = fattree4.hosts_in_rack(rack)[0]
        tree = model.tree_for(host)
        assert not tree.evaluate_round({units[0]})
        assert tree.evaluate_round(set(units))

    def test_single_cooling_unit_is_single_point_of_failure(self, fattree4):
        model = DependencyModel.empty(fattree4)
        cooling = attach_rack_cooling(model, redundancy=1, seed=1)
        rack = fattree4.racks()[0]
        host = fattree4.hosts_in_rack(rack)[0]
        assert model.tree_for(host).evaluate_round({cooling[rack][0]})

    def test_software_shared_across_hosts(self, fattree4):
        model = DependencyModel.empty(fattree4)
        software = attach_host_software(model, os_images=2, shared_libraries=2, seed=1)
        assert set(software) == set(fattree4.hosts)
        os_id = software[fattree4.hosts[0]][0]
        sharers = [h for h, deps in software.items() if deps[0] == os_id]
        assert len(sharers) >= 2
        for host in sharers:
            assert model.tree_for(host).evaluate_round({os_id})

    def test_build_rich_inventory_composes_everything(self, rich_inventory, fattree4):
        host = fattree4.hosts[0]
        events = rich_inventory.tree_for(host).basic_events()
        kinds = {e.split("/")[0] for e in events}
        assert {"power", "cooling", "os", "lib"} <= kinds

    def test_rich_inventory_deterministic(self, fattree4):
        a = build_rich_inventory(fattree4, seed=9)
        b = build_rich_inventory(fattree4, seed=9)
        assert a.failure_probabilities() == b.failure_probabilities()

    def test_paper_inventory_deterministic(self, fattree4):
        a = build_paper_inventory(fattree4, seed=9)
        b = build_paper_inventory(fattree4, seed=9)
        assert a.failure_probabilities() == b.failure_probabilities()
