"""Tests for the reliability assessor (repro.core.assessment).

The gold-standard test computes the *exact* reliability of a plan on a
micro-topology by exhaustive enumeration of component states and checks
that assessments land within their own reported confidence interval.
"""

import itertools

import numpy as np
import pytest

from repro.app.structure import ApplicationStructure
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.faults.dependencies import DependencyModel
from repro.faults.inventory import build_paper_inventory
from repro.faults.probability import DefaultProbabilityPolicy
from repro.routing.base import RoundStates, engine_for
from repro.sampling.dagger import ExtendedDaggerSampler
from repro.sampling.montecarlo import MonteCarloSampler
from repro.topology.fattree import FatTreeTopology
from repro.util.errors import ConfigurationError
from repro.core.api import AssessmentConfig


def exact_k_of_n_reliability(topology, model, hosts, k, engine=None):
    """Ground truth by enumerating all failure states of the closure.

    Uses the same routing engine the assessor would (up-down for
    fat-trees), so the enumeration shares the reachability semantics.
    """
    engine = engine or engine_for(topology)
    subjects = [
        cid for cid in engine.relevant_elements(list(hosts)) if cid in topology.graph
    ]
    events = sorted(model.basic_events_for(subjects))
    probabilities = model.failure_probabilities()
    active = [e for e in events if probabilities[e] > 0]
    assert len(active) <= 18, "enumeration too large for a test"

    total = 0.0
    for pattern in itertools.product([False, True], repeat=len(active)):
        weight = 1.0
        for failed, event in zip(pattern, active):
            p = probabilities[event]
            weight *= p if failed else 1.0 - p
        if weight == 0.0:
            continue
        failed_set = {e for f, e in zip(pattern, active) if f}
        failed_states = {}
        for subject in subjects:
            tree = model.tree_for(subject)
            failed_states[subject] = np.array([tree.evaluate_round(failed_set)])
        states = RoundStates(1, failed_states)
        reachable = engine.external_reachable(states, hosts)
        alive = sum(1 for h in hosts if reachable[h][0])
        if alive >= k:
            total += weight
    return total


@pytest.fixture
def micro_topology():
    """k=4 fat-tree with moderately high probabilities and few distinct
    failing components so exact enumeration stays tractable."""
    topo = FatTreeTopology(
        4, probability_policy=DefaultProbabilityPolicy(0.05), seed=11
    )
    # Keep only a handful of failure-prone components: zero out the rest.
    keep = {
        "host/0/0/0", "host/1/0/0", "edge/0/0", "edge/1/0",
        "agg/0/0", "agg/0/1", "agg/1/0", "agg/1/1",
        "core/0/0", "core/0/1", "core/1/0", "core/1/1",
        "border/0", "border/1",
    }
    overrides = {
        cid: 0.0
        for cid in topo.components
        if cid not in keep and topo.component(cid).failure_probability > 0
    }
    topo.override_probabilities(overrides)
    return topo


class TestAgainstExactEnumeration:
    @pytest.mark.parametrize("k", [1, 2])
    def test_assessment_ci_contains_exact_value(self, micro_topology, k):
        model = DependencyModel.empty(micro_topology)
        hosts = ["host/0/0/0", "host/1/0/0"]
        exact = exact_k_of_n_reliability(micro_topology, model, hosts, k)
        assessor = ReliabilityAssessor(micro_topology, model, config=AssessmentConfig(rounds=40_000, rng=3))
        result = assessor.assess_k_of_n(hosts, k)
        # Allow 1.5x the CI: a ~95% interval should rarely miss by 50%.
        half = 0.75 * result.estimate.confidence_interval_width
        assert abs(result.score - exact) <= max(half, 2e-3), (
            result.score, exact,
        )

    def test_monte_carlo_agrees_with_dagger(self, micro_topology):
        model = DependencyModel.empty(micro_topology)
        hosts = ["host/0/0/0", "host/1/0/0"]
        dagger = ReliabilityAssessor(micro_topology, model, config=AssessmentConfig(sampler=ExtendedDaggerSampler(), rounds=40_000, rng=5)).assess_k_of_n(hosts, 2)
        monte_carlo = ReliabilityAssessor(micro_topology, model, config=AssessmentConfig(sampler=MonteCarloSampler(), rounds=40_000, rng=6)).assess_k_of_n(hosts, 2)
        # Both at 40k rounds: sigma of the difference ~ 0.003.
        assert dagger.score == pytest.approx(monte_carlo.score, abs=1.2e-2)

    def test_dependencies_lower_reliability(self, micro_topology):
        """Shared power supplies can only hurt: R(with deps) <= R(without)."""
        hosts = ["host/0/0/0", "host/1/0/0"]
        bare = ReliabilityAssessor(micro_topology, DependencyModel.empty(micro_topology), config=AssessmentConfig(rounds=30_000, rng=7)).assess_k_of_n(hosts, 2)
        powered = build_paper_inventory(micro_topology, seed=8)
        with_deps = ReliabilityAssessor(micro_topology, powered, config=AssessmentConfig(rounds=30_000, rng=7)).assess_k_of_n(hosts, 2)
        assert with_deps.score < bare.score + 2e-3


class TestAssessorMechanics:
    def test_returns_well_formed_result(self, assessor, fattree4):
        result = assessor.assess_k_of_n(fattree4.hosts[:3], 2)
        assert result.estimate.rounds == 4_000
        assert result.per_round.shape == (4_000,)
        assert result.per_round.dtype == bool
        assert 0 <= result.score <= 1
        assert result.elapsed_seconds > 0
        assert result.sampled_components > 0

    def test_rounds_override(self, assessor, fattree4):
        result = assessor.assess_k_of_n(fattree4.hosts[:2], 1, rounds=500)
        assert result.estimate.rounds == 500

    def test_closure_much_smaller_than_full(self, assessor, fattree4):
        plan = DeploymentPlan.single_component(fattree4.hosts[:2], "app")
        _subjects, sampled = assessor.closure_for(plan)
        assert len(sampled) < len(fattree4.components)

    def test_full_infrastructure_mode(self, fattree4, inventory):
        assessor = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=500, rng=1, sample_full_infrastructure=True))
        result = assessor.assess_k_of_n(fattree4.hosts[:2], 1)
        # Everything with p > 0 is sampled: all hosts/switches + supplies.
        expected = sum(
            1
            for p in inventory.failure_probabilities().values()
        )
        assert result.sampled_components == expected

    def test_closure_and_full_sampling_agree(self, fattree4, inventory):
        """Restricting sampling to the closure is distribution-preserving."""
        hosts = fattree4.hosts[:3]
        closure = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=30_000, rng=2)).assess_k_of_n(hosts, 2)
        full = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=30_000, rng=2, sample_full_infrastructure=True)).assess_k_of_n(hosts, 2)
        assert closure.score == pytest.approx(full.score, abs=6e-3)

    def test_rejects_zero_rounds(self, fattree4, inventory):
        with pytest.raises(ConfigurationError):
            ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=0))

    def test_rejects_foreign_dependency_model(self, fattree4, fattree8):
        model = DependencyModel.empty(fattree8)
        with pytest.raises(ConfigurationError):
            ReliabilityAssessor(fattree4, model)

    def test_refresh_probabilities(self, fattree4):
        model = DependencyModel.empty(fattree4)
        assessor = ReliabilityAssessor(fattree4, model, config=AssessmentConfig(rounds=20_000, rng=3))
        hosts = fattree4.hosts[:2]
        before = assessor.assess_k_of_n(hosts, 2).score
        # Making one deployed host much worse must show after refresh.
        fattree4.override_probabilities({hosts[0]: 0.4})
        assessor.refresh_probabilities()
        after = assessor.assess_k_of_n(hosts, 2).score
        assert after < before - 0.2

    def test_reproducible_with_seed(self, fattree4, inventory):
        a = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=2_000, rng=9))
        b = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=2_000, rng=9))
        hosts = fattree4.hosts[:3]
        assert a.assess_k_of_n(hosts, 2).score == b.assess_k_of_n(hosts, 2).score

    def test_structure_and_k_of_n_paths_agree(self, fattree4, inventory):
        hosts = fattree4.hosts[:3]
        structure = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.single_component(hosts, "app")
        a = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=5_000, rng=4))
        r1 = a.assess(plan, structure)
        b = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=5_000, rng=4))
        r2 = b.assess_k_of_n(hosts, 2, rounds=5_000)
        assert r1.score == r2.score

    def test_plan_validated(self, assessor, fattree4):
        structure = ApplicationStructure.k_of_n(1, 2)
        bad_plan = DeploymentPlan.single_component(["host/0/0/0", "edge/0/0"], "app")
        with pytest.raises(Exception):
            assessor.assess(bad_plan, structure)


class TestLimitedInformationModes:
    def test_no_dependency_model(self, fattree4):
        """§3.4: works with no dependency information at all."""
        assessor = ReliabilityAssessor(fattree4, config=AssessmentConfig(rounds=2_000, rng=1))
        result = assessor.assess_k_of_n(fattree4.hosts[:3], 2)
        assert 0.8 < result.score <= 1.0

    def test_default_probability_policy(self):
        """§3.4: works with a flat default failure probability."""
        topo = FatTreeTopology(
            4, probability_policy=DefaultProbabilityPolicy(0.01), seed=1
        )
        assessor = ReliabilityAssessor(topo, config=AssessmentConfig(rounds=2_000, rng=1))
        result = assessor.assess_k_of_n(topo.hosts[:3], 2)
        assert 0.9 < result.score <= 1.0
