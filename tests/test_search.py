"""Tests for the reliable-deployment search (repro.core.search).

Time-dependent behaviour is made deterministic with a fake clock that
advances a fixed amount per call.
"""

import numpy as np
import pytest

from repro.app.structure import ApplicationStructure
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.core.search import DeploymentSearch, SearchSpec
from repro.util.errors import ConfigurationError
from repro.core.api import AssessmentConfig


class FakeClock:
    """Monotonic clock advancing ``step`` seconds per reading."""

    def __init__(self, step=0.01):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


@pytest.fixture
def quick_assessor(fattree4, inventory):
    return ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=1_500, rng=5))


def _search(quick_assessor, **kwargs):
    kwargs.setdefault("rng", 11)
    kwargs.setdefault("clock", FakeClock())
    return DeploymentSearch(quick_assessor, **kwargs)


class TestSpecValidation:
    def test_rejects_bad_reliability(self):
        with pytest.raises(ConfigurationError):
            SearchSpec(ApplicationStructure.k_of_n(1, 2), desired_reliability=1.5)

    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError):
            SearchSpec(ApplicationStructure.k_of_n(1, 2), max_seconds=0)


class TestSearchLoop:
    def test_runs_until_budget(self, quick_assessor):
        search = _search(quick_assessor)
        spec = SearchSpec(
            ApplicationStructure.k_of_n(2, 3),
            desired_reliability=1.0,  # unattainable: runs the full budget
            max_seconds=2.0,
        )
        result = search.search(spec)
        assert not result.satisfied
        assert result.iterations > 0
        assert result.plans_assessed >= 1
        assert result.elapsed_seconds >= 2.0

    def test_satisfied_stops_early(self, quick_assessor):
        search = _search(quick_assessor)
        spec = SearchSpec(
            ApplicationStructure.k_of_n(1, 3),
            desired_reliability=0.5,  # trivially satisfied
            max_seconds=100.0,
        )
        result = search.search(spec)
        assert result.satisfied
        assert result.best_score >= 0.5
        assert result.elapsed_seconds < 100.0

    def test_max_iterations_cap(self, quick_assessor):
        search = _search(quick_assessor)
        spec = SearchSpec(
            ApplicationStructure.k_of_n(2, 3),
            max_seconds=1_000.0,
            max_iterations=5,
        )
        result = search.search(spec)
        assert result.iterations == 5

    def test_initial_plan_respected(self, quick_assessor, fattree4):
        initial = DeploymentPlan.single_component(fattree4.hosts[:3], "app")
        search = _search(quick_assessor)
        spec = SearchSpec(
            ApplicationStructure.k_of_n(1, 3),
            desired_reliability=0.5,
            max_seconds=10.0,
        )
        result = search.search(spec, initial_plan=initial)
        assert result.satisfied
        assert result.best_plan == initial

    def test_deterministic_given_seed(self, fattree4, inventory):
        def run():
            assessor = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=800, rng=5))
            search = DeploymentSearch(assessor, rng=42, clock=FakeClock())
            spec = SearchSpec(
                ApplicationStructure.k_of_n(2, 3), max_seconds=50.0, max_iterations=30
            )
            return search.search(spec)

        a, b = run(), run()
        assert a.best_plan == b.best_plan
        assert a.best_score == b.best_score
        assert a.plans_skipped_symmetric == b.plans_skipped_symmetric

    def test_trace_recorded(self, quick_assessor):
        search = _search(quick_assessor, keep_trace=True)
        spec = SearchSpec(
            ApplicationStructure.k_of_n(2, 3), max_seconds=50.0, max_iterations=20
        )
        result = search.search(spec)
        assert result.trace
        for record in result.trace:
            assert 0.0 <= record.temperature <= 1.0
            assert record.best_score >= 0.0

    def test_plans_considered_counts_symmetric_skips(self, quick_assessor):
        search = _search(quick_assessor)
        spec = SearchSpec(
            ApplicationStructure.k_of_n(2, 3), max_seconds=50.0, max_iterations=60
        )
        result = search.search(spec)
        assert (
            result.plans_considered
            == result.plans_assessed + result.plans_skipped_symmetric
        )

    def test_symmetry_can_be_disabled(self, quick_assessor):
        search = _search(quick_assessor, use_symmetry=False)
        spec = SearchSpec(
            ApplicationStructure.k_of_n(2, 3), max_seconds=50.0, max_iterations=30
        )
        result = search.search(spec)
        assert result.plans_skipped_symmetric == 0

    def test_resource_filter_drops_candidates(self, quick_assessor, fattree4):
        forbidden = set(fattree4.hosts[6:])

        def only_first_pods(plan):
            return not (set(plan.hosts()) & forbidden)

        search = _search(quick_assessor, resource_filter=only_first_pods)
        spec = SearchSpec(
            ApplicationStructure.k_of_n(2, 3), max_seconds=50.0, max_iterations=100
        )
        initial = DeploymentPlan.single_component(fattree4.hosts[:3], "app")
        result = search.search(spec, initial_plan=initial)
        assert not (set(result.best_plan.hosts()) & forbidden)

    def test_search_improves_over_random_start(self, fattree4, inventory):
        """On average the searched plan beats its random starting point."""
        assessor = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=3_000, rng=5))
        reference = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=30_000, rng=99))
        structure = ApplicationStructure.k_of_n(4, 5)

        wins = ties_or_better = 0
        trials = 3
        for seed in range(trials):
            initial = DeploymentPlan.random(fattree4, structure, rng=seed)
            initial_score = reference.assess(initial, structure).score
            search = DeploymentSearch(assessor, rng=seed, clock=FakeClock(0.005))
            result = search.search(
                SearchSpec(structure, max_seconds=3.0), initial_plan=initial
            )
            final_score = reference.assess(result.best_plan, structure).score
            if final_score > initial_score:
                wins += 1
            if final_score >= initial_score - 0.003:
                ties_or_better += 1
        assert ties_or_better == trials
        assert wins >= 2


class TestCrnBehaviour:
    def test_crn_uses_independent_final_assessment(self, quick_assessor):
        search = _search(quick_assessor, common_random_numbers=True)
        spec = SearchSpec(
            ApplicationStructure.k_of_n(2, 3), max_seconds=50.0, max_iterations=10
        )
        result = search.search(spec)
        # The reported assessment was produced by the base assessor and
        # therefore carries a real closure size (CRN path also does, but
        # determinism across runs is the cheap observable here).
        assert result.best_assessment.estimate.rounds == quick_assessor.rounds

    def test_no_crn_mode_runs(self, quick_assessor):
        search = _search(quick_assessor, common_random_numbers=False)
        spec = SearchSpec(
            ApplicationStructure.k_of_n(2, 3), max_seconds=50.0, max_iterations=10
        )
        result = search.search(spec)
        assert result.plans_assessed >= 1
