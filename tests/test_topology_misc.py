"""Tests for the topology base class, leaf-spine, and shared validation."""

import networkx as nx
import pytest

from repro.faults.component import ComponentType
from repro.faults.probability import DefaultProbabilityPolicy
from repro.topology.base import Topology, validate_hosts_exist
from repro.topology.leafspine import LeafSpineTopology
from repro.util.errors import ConfigurationError, TopologyError


class TestLeafSpine:
    def test_counts(self, leafspine):
        summary = leafspine.summarize()
        assert summary.hosts == 18
        assert summary.edge_switches == 6  # leaves
        assert summary.core_switches == 4  # spines
        assert summary.border_switches == 2

    def test_every_leaf_connects_to_every_spine(self, leafspine):
        for leaf in leafspine.leaf_ids:
            neighbors = set(leafspine.neighbors(leaf))
            assert set(leafspine.spine_ids) <= neighbors

    def test_borders_connect_to_all_spines(self, leafspine):
        for border in leafspine.border_switches:
            assert sorted(leafspine.neighbors(border)) == sorted(leafspine.spine_ids)

    def test_connected(self, leafspine):
        assert nx.is_connected(leafspine.graph)

    def test_edge_switch_of(self, leafspine):
        assert leafspine.edge_switch_of("host/2/1") == "leaf/2"

    def test_racks_are_leaves(self, leafspine):
        assert sorted(leafspine.racks()) == sorted(leafspine.leaf_ids)

    def test_rejects_zero_spines(self):
        with pytest.raises(ConfigurationError):
            LeafSpineTopology(spines=0, leaves=2, hosts_per_leaf=2)

    def test_symmetry_class(self, leafspine):
        assert leafspine.symmetry_class_of("spine/0") == "core_switch"
        assert leafspine.symmetry_class_of("leaf/0") == "edge_switch"


class _BareTopology(Topology):
    """Minimal custom topology used to exercise base-class validation."""

    def __init__(self, with_border=True, with_host=True):
        super().__init__("bare", probability_policy=DefaultProbabilityPolicy(0.1))
        if with_host:
            self._add_host("h0")
        self._add_switch("sw0", ComponentType.EDGE_SWITCH)
        if with_border:
            self._add_switch("b0", ComponentType.BORDER_SWITCH)
            self._add_link("sw0", "b0")
        if with_host:
            self._add_link("h0", "sw0")
        self._freeze()


class TestBaseValidation:
    def test_requires_hosts(self):
        with pytest.raises(TopologyError):
            _BareTopology(with_host=False)

    def test_requires_border_switches(self):
        with pytest.raises(TopologyError):
            _BareTopology(with_border=False)

    def test_duplicate_component_rejected(self):
        topo = Topology("x", probability_policy=DefaultProbabilityPolicy(0.1))
        topo._add_host("h0")
        with pytest.raises(TopologyError):
            topo._add_host("h0")

    def test_duplicate_link_rejected(self):
        topo = Topology("x", probability_policy=DefaultProbabilityPolicy(0.1))
        topo._add_host("h0")
        topo._add_switch("s0", ComponentType.EDGE_SWITCH)
        topo._add_link("h0", "s0")
        with pytest.raises(TopologyError):
            topo._add_link("s0", "h0")

    def test_link_to_unknown_endpoint_rejected(self):
        topo = Topology("x", probability_policy=DefaultProbabilityPolicy(0.1))
        topo._add_host("h0")
        with pytest.raises(TopologyError):
            topo._add_link("h0", "ghost")

    def test_non_switch_type_rejected_for_switch(self):
        topo = Topology("x", probability_policy=DefaultProbabilityPolicy(0.1))
        with pytest.raises(TopologyError):
            topo._add_switch("s0", ComponentType.HOST)

    def test_link_between_unlinked_raises(self):
        topo = _BareTopology()
        with pytest.raises(TopologyError):
            topo.link_between("h0", "b0")

    def test_validate_hosts_exist(self, fattree4):
        validate_hosts_exist(fattree4, ["host/0/0/0"])
        with pytest.raises(TopologyError):
            validate_hosts_exist(fattree4, ["edge/0/0"])
        with pytest.raises(TopologyError):
            validate_hosts_exist(fattree4, ["ghost"])

    def test_edge_switch_of_requires_single_attachment(self):
        topo = Topology("x", probability_policy=DefaultProbabilityPolicy(0.1))
        topo._add_host("h0")
        topo._add_switch("s0", ComponentType.EDGE_SWITCH)
        topo._add_switch("s1", ComponentType.BORDER_SWITCH)
        topo._add_link("h0", "s0")
        topo._add_link("h0", "s1")
        topo._freeze()
        with pytest.raises(TopologyError):
            topo.edge_switch_of("h0")
