"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["topology", "--scale", "galactic"])


class TestTopologyCommand:
    def test_human_output(self, capsys):
        code, out, _err = run_cli(capsys, "topology", "--scale", "tiny")
        assert code == 0
        assert "hosts: 112" in out
        assert "border_switches: 4" in out

    def test_json_output(self, capsys):
        code, out, _err = run_cli(capsys, "topology", "--scale", "tiny", "--json")
        assert code == 0
        document = json.loads(out)
        assert document["hosts"] == 112
        assert document["power_supplies"] == 5


class TestAssessCommand:
    HOSTS = "host/0/0/0,host/1/0/0,host/2/0/0"

    def test_human_output(self, capsys):
        code, out, _err = run_cli(
            capsys,
            "assess", "--scale", "tiny", "--hosts", self.HOSTS, "--k", "2",
            "--rounds", "2000",
        )
        assert code == 0
        assert "estimate" in out
        assert "R=" in out

    def test_json_output(self, capsys):
        code, out, _err = run_cli(
            capsys,
            "assess", "--scale", "tiny", "--hosts", self.HOSTS, "--k", "2",
            "--rounds", "2000", "--json",
        )
        assert code == 0
        document = json.loads(out)
        assert document["format"] == "assessment-result"
        assert 0.5 < document["estimate"]["score"] <= 1.0

    def test_unknown_host_is_reported(self, capsys):
        code, _out, err = run_cli(
            capsys,
            "assess", "--scale", "tiny", "--hosts", "ghost,host/0/0/0",
            "--k", "1", "--rounds", "500",
        )
        assert code == 2
        assert "error" in err


class TestSearchCommand:
    def test_search_runs(self, capsys):
        code, out, _err = run_cli(
            capsys,
            "search", "--scale", "tiny", "--k", "2", "--n", "3",
            "--seconds", "2", "--rounds", "2000", "--desired", "0.5",
        )
        assert code == 0
        assert "satisfied : True" in out

    def test_search_json(self, capsys):
        code, out, _err = run_cli(
            capsys,
            "search", "--scale", "tiny", "--k", "2", "--n", "3",
            "--seconds", "2", "--rounds", "2000", "--json",
        )
        assert code == 0
        document = json.loads(out)
        assert document["format"] == "search-result"
        assert document["best_plan"]["format"] == "deployment-plan"

    def test_unsatisfied_exit_code(self, capsys):
        # k == n caps the reliability near (1 - p_host)^3 ~ 0.97, so the
        # 0.9999 bar stays out of reach no matter how many plans the
        # search manages to try within the budget.
        code, _out, _err = run_cli(
            capsys,
            "search", "--scale", "tiny", "--k", "3", "--n", "3",
            "--seconds", "1", "--rounds", "1000", "--desired", "0.9999",
        )
        assert code == 3


class TestRiskCommand:
    def test_risk_report(self, capsys):
        code, out, _err = run_cli(
            capsys,
            "risk", "--scale", "tiny",
            "--hosts", "host/0/0/0,host/0/0/1,host/1/0/0", "--k", "2",
        )
        assert code == 0
        assert "edge/0/0" in out  # shared rack switch shows up

    def test_risk_json(self, capsys):
        code, out, _err = run_cli(
            capsys,
            "risk", "--scale", "tiny",
            "--hosts", "host/0/0/0,host/1/0/0", "--k", "1", "--json",
        )
        assert code == 0
        document = json.loads(out)
        assert document["format"] == "risk-report"
        assert document["entries"]


class TestExitCodes:
    def test_exit_code_taxonomy_is_stable(self):
        # Scripts key off these; renumbering them is a breaking change.
        from repro import cli

        assert cli.EXIT_OK == 0
        assert cli.EXIT_CONFIG == 2
        assert cli.EXIT_UNSATISFIED == 3
        assert cli.EXIT_PREEMPTED == 4
        assert cli.EXIT_DEGRADED == 5
        assert len({cli.EXIT_OK, cli.EXIT_CONFIG, cli.EXIT_UNSATISFIED,
                    cli.EXIT_PREEMPTED, cli.EXIT_DEGRADED}) == 5

    def test_validation_errors_list_every_field(self, capsys):
        code, _out, err = run_cli(
            capsys,
            "assess", "--scale", "tiny", "--hosts", "ghost,ghoul",
            "--k", "1", "--rounds", "500",
        )
        assert code == 2
        assert "validation failed" in err
        assert "ghost" in err and "ghoul" in err


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8321
        assert args.queue_capacity == 8
        assert args.scheduler_workers == 2
        assert args.parallel_workers == 0
        assert args.default_deadline is None
        assert args.drain_timeout == 30.0
        assert args.handler.__name__ == "cmd_serve"

    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve", "--port", "0", "--queue-capacity", "2",
                "--parallel-workers", "4", "--default-deadline", "1.5",
            ]
        )
        assert args.port == 0
        assert args.queue_capacity == 2
        assert args.parallel_workers == 4
        assert args.default_deadline == 1.5


class TestBaselineCommand:
    def test_baseline_output(self, capsys):
        code, out, _err = run_cli(
            capsys,
            "baseline", "--scale", "tiny", "--k", "4", "--n", "5",
            "--rounds", "2000",
        )
        assert code == 0
        assert "common-practice" in out
        assert "enhanced-common-practice" in out

    def test_baseline_json(self, capsys):
        code, out, _err = run_cli(
            capsys,
            "baseline", "--scale", "tiny", "--k", "4", "--n", "5",
            "--rounds", "2000", "--json",
        )
        assert code == 0
        document = json.loads(out)
        assert set(document["plans"]) == {
            "common-practice", "enhanced-common-practice",
        }


class TestRedeployCommand:
    BASE = (
        "redeploy", "--zones", "2", "--fabric-k", "4", "--k", "2", "--n", "3",
        "--rounds", "300", "--move-budget", "10", "--cycles", "1",
        "--primary-zone", "zone0", "--min-outside-primary", "1",
    )

    def test_outage_run_then_recovery(self, capsys, tmp_path):
        state = str(tmp_path / "state")
        code, out, _err = run_cli(
            capsys, *self.BASE, "--state-dir", state,
            "--cycles", "2", "--inject-outage", "zone0", "--json",
        )
        assert code == 0
        document = json.loads(out)
        assert document["format"] == "redeploy-report"
        assert document["recovery"]["incumbent_restored"] is False
        # A rerun against the same state dir recovers the committed
        # incumbent from the journal instead of seeding a fresh one.
        code, out, _err = run_cli(
            capsys, *self.BASE, "--state-dir", state, "--json",
        )
        assert code == 0
        rerun = json.loads(out)
        assert rerun["recovery"]["incumbent_restored"] is True
        assert rerun["recovery"]["completed_applies"] == 0
        assert rerun["incumbent"] == document["incumbent"]

    def test_unknown_zone_is_config_error(self, capsys, tmp_path):
        code, _out, err = run_cli(
            capsys, "redeploy", "--zones", "2", "--fabric-k", "4",
            "--k", "2", "--n", "3", "--state-dir", str(tmp_path / "s"),
            "--primary-zone", "zone7", "--min-outside-primary", "1",
        )
        assert code == 2
        assert "unknown zone" in err and "zone7" in err

    def test_bad_pin_spec_is_config_error(self, capsys, tmp_path):
        code, _out, err = run_cli(
            capsys, "redeploy", "--zones", "2", "--fabric-k", "4",
            "--k", "2", "--n", "3", "--state-dir", str(tmp_path / "s"),
            "--pin", "app:zone1",
        )
        assert code == 2
        assert "--pin" in err
