"""Tests for the single-failure risk analyzer (repro.core.risk)."""

import pytest

from repro.app.generators import two_tier
from repro.app.structure import ApplicationStructure
from repro.core.plan import DeploymentPlan
from repro.core.risk import RiskAnalyzer


@pytest.fixture
def analyzer(fattree4, inventory):
    return RiskAnalyzer(fattree4, inventory)


def _entry(report, component_id):
    matches = [e for e in report if e.component_id == component_id]
    assert matches, f"{component_id} not in report"
    return matches[0]


class TestWhatIf:
    def test_no_failures_everything_active(self, analyzer, fattree4):
        structure = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.single_component(
            ["host/0/0/0", "host/1/0/0", "host/2/0/0"], "app"
        )
        survives, counts = analyzer.what_if(plan, structure, [])
        assert survives
        assert counts == {"app": 3}

    def test_single_host_failure(self, analyzer):
        structure = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.single_component(
            ["host/0/0/0", "host/1/0/0", "host/2/0/0"], "app"
        )
        survives, counts = analyzer.what_if(plan, structure, ["host/0/0/0"])
        assert survives
        assert counts == {"app": 2}

    def test_edge_switch_failure_counts_rack(self, analyzer):
        structure = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.single_component(
            ["host/0/0/0", "host/0/0/1", "host/1/0/0"], "app"
        )
        survives, counts = analyzer.what_if(plan, structure, ["edge/0/0"])
        assert not survives
        assert counts == {"app": 1}

    def test_power_supply_failure_is_correlated(self, analyzer, inventory):
        structure = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.single_component(
            ["host/0/0/0", "host/1/0/0", "host/2/0/0"], "app"
        )
        # The supply feeding host/0/0/0's rack group.
        supply = next(
            iter(inventory.tree_for("host/0/0/0").basic_events() - {"host/0/0/0"})
        )
        _survives, counts = analyzer.what_if(plan, structure, [supply])
        assert counts["app"] < 3  # at least the dependent instance is gone


class TestReport:
    def test_hosts_lose_exactly_one_instance(self, analyzer):
        structure = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.single_component(
            ["host/0/0/0", "host/1/0/0", "host/2/0/0"], "app"
        )
        report = analyzer.report(plan, structure)
        for host in plan.hosts():
            entry = _entry(report, host)
            assert entry.instances_lost == 1
            assert not entry.application_down
            assert entry.components_degraded == ("app",)

    def test_spof_detection_k_equals_n(self, analyzer):
        structure = ApplicationStructure.k_of_n(3, 3)
        plan = DeploymentPlan.single_component(
            ["host/0/0/0", "host/1/0/0", "host/2/0/0"], "app"
        )
        spofs = analyzer.single_points_of_failure(plan, structure)
        # With K = N, every host (and its edge switch, etc.) is a SPOF.
        spof_ids = {e.component_id for e in spofs}
        assert set(plan.hosts()) <= spof_ids

    def test_shared_rack_blast_radius(self, analyzer, fattree4):
        structure = ApplicationStructure.k_of_n(1, 3)
        colocated = DeploymentPlan.single_component(
            ["host/0/0/0", "host/0/0/1", "host/1/0/0"], "app"
        )
        spread = DeploymentPlan.single_component(
            ["host/0/0/0", "host/1/0/0", "host/2/0/0"], "app"
        )
        assert analyzer.max_instances_lost_to_one_failure(colocated, structure) >= 2
        # Spread across pods: single network failure loses at most 1
        # instance... unless a shared power supply covers two racks.
        report = analyzer.report(spread, structure)
        network_entries = [
            e for e in report if not e.component_id.startswith("power/")
        ]
        assert max(e.instances_lost for e in network_entries) == 1

    def test_dependency_only_report(self, analyzer):
        structure = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.single_component(
            ["host/0/0/0", "host/1/0/0", "host/2/0/0"], "app"
        )
        report = analyzer.report(plan, structure, include_network_elements=False)
        assert report  # power supplies affect the instances
        assert all(e.component_id.startswith("power/") for e in report)

    def test_ranking_spofs_first(self, analyzer):
        structure = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.single_component(
            ["host/0/0/0", "host/0/0/1", "host/1/0/0"], "app"
        )
        report = analyzer.report(plan, structure)
        downs = [e.application_down for e in report]
        # All application-down entries come before all others.
        assert downs == sorted(downs, reverse=True)

    def test_expected_loss(self, analyzer):
        structure = ApplicationStructure.k_of_n(1, 2)
        plan = DeploymentPlan.single_component(["host/0/0/0", "host/1/0/0"], "app")
        entry = _entry(analyzer.report(plan, structure), "host/0/0/0")
        assert entry.expected_loss == pytest.approx(
            entry.failure_probability * entry.instances_lost
        )

    def test_two_tier_structure_awareness(self, analyzer):
        structure = two_tier()
        plan = DeploymentPlan.from_mapping(
            {
                "frontend": ["host/0/0/0", "host/1/0/0"],
                "database": ["host/0/1/0", "host/2/0/0"],
            }
        )
        report = analyzer.report(plan, structure)
        fe_host = _entry(report, "host/0/0/0")
        assert fe_host.components_degraded == ("frontend",)
        db_host = _entry(report, "host/0/1/0")
        assert db_host.components_degraded == ("database",)


class TestReliablePlansHaveSmallBlastRadius:
    def test_search_reduces_blast_radius(self, fattree8):
        """A searched plan should have no single failure killing 2+
        instances more often than a same-rack plan does."""
        from repro.faults.inventory import build_paper_inventory

        inventory = build_paper_inventory(fattree8, seed=2)
        analyzer = RiskAnalyzer(fattree8, inventory)
        structure = ApplicationStructure.k_of_n(4, 5)
        colocated = DeploymentPlan.single_component(
            fattree8.hosts_in_rack("edge/0/0")[:4] + ["host/1/0/0"], "app"
        )
        spread_hosts = [f"host/{p}/0/0" for p in range(5)]
        spread = DeploymentPlan.single_component(spread_hosts, "app")
        assert analyzer.max_instances_lost_to_one_failure(
            spread, structure
        ) <= analyzer.max_instances_lost_to_one_failure(colocated, structure)
