"""Route-and-check tests: RoundStates, generic engine, fast engines.

The fat-tree fast engine is validated against a brute-force enumeration of
valid up-down paths; the generic engine against networkx connectivity; and
the fast engines are checked to be *subsets* of graph connectivity (a
routed path is in particular a physical path).
"""

import networkx as nx
import numpy as np
import pytest

from repro.faults.component import link_id
from repro.faults.probability import DefaultProbabilityPolicy
from repro.routing.base import (
    RoundStates,
    all_alive,
    any_path,
    engine_for,
    materialize,
)
from repro.routing.fattree_fast import FatTreeReachabilityEngine
from repro.routing.generic import GenericReachabilityEngine
from repro.routing.leafspine_fast import LeafSpineReachabilityEngine
from repro.sampling.montecarlo import MonteCarloSampler
from repro.topology.fattree import FatTreeTopology
from repro.topology.leafspine import LeafSpineTopology
from repro.util.errors import ConfigurationError, TopologyError

ROUNDS = 400


def _states_for(topology, seed=2, rounds=ROUNDS):
    batch = MonteCarloSampler().sample(
        topology.failure_probabilities(), rounds, np.random.default_rng(seed)
    )
    failed = {cid: batch.dense(cid) for cid in batch.failed_rounds}
    return RoundStates(rounds, failed)


def _alive(states, cid, i):
    return not states.failed_in_round(cid, i)


# ----------------------------------------------------------------------
# Brute-force up-down references
# ----------------------------------------------------------------------


def fattree_ext_reference(t, states, host, i):
    e = t.edge_switch_of(host)
    if not (
        _alive(states, host, i)
        and _alive(states, link_id(host, e), i)
        and _alive(states, e, i)
    ):
        return False
    pod = t.edge_pod[e]
    for g in range(t.radix):
        agg = t.agg_ids[(pod, g)]
        if not (_alive(states, agg, i) and _alive(states, link_id(e, agg), i)):
            continue
        border = t.border_ids[g]
        if not _alive(states, border, i):
            continue
        for j in range(t.radix):
            core = t.core_ids[(g, j)]
            if (
                _alive(states, core, i)
                and _alive(states, link_id(agg, core), i)
                and _alive(states, link_id(border, core), i)
            ):
                return True
    return False


def fattree_pair_reference(t, states, h1, h2, i):
    if h1 == h2:
        return _alive(states, h1, i)
    e1, e2 = t.edge_switch_of(h1), t.edge_switch_of(h2)
    for cid in (h1, h2, link_id(h1, e1), link_id(h2, e2), e1, e2):
        if not _alive(states, cid, i):
            return False
    if e1 == e2:
        return True
    p1, p2 = t.edge_pod[e1], t.edge_pod[e2]
    if p1 == p2:
        return any(
            _alive(states, t.agg_ids[(p1, g)], i)
            and _alive(states, link_id(e1, t.agg_ids[(p1, g)]), i)
            and _alive(states, link_id(e2, t.agg_ids[(p1, g)]), i)
            for g in range(t.radix)
        )
    for g in range(t.radix):
        a1, a2 = t.agg_ids[(p1, g)], t.agg_ids[(p2, g)]
        if not (
            _alive(states, a1, i)
            and _alive(states, a2, i)
            and _alive(states, link_id(e1, a1), i)
            and _alive(states, link_id(e2, a2), i)
        ):
            continue
        for j in range(t.radix):
            core = t.core_ids[(g, j)]
            if (
                _alive(states, core, i)
                and _alive(states, link_id(a1, core), i)
                and _alive(states, link_id(a2, core), i)
            ):
                return True
    return False


@pytest.fixture
def lossy_states(lossy_fattree4):
    return _states_for(lossy_fattree4)


class TestRoundStates:
    def test_alive_mask_none_for_unknown(self):
        states = RoundStates(10, {})
        assert states.alive_mask("x") is None
        assert states.is_always_alive("x")

    def test_alive_mask_inverts_failed(self):
        failed = np.array([True, False, True])
        states = RoundStates(3, {"c": failed})
        assert np.array_equal(states.alive_mask("c"), ~failed)

    def test_failed_in_round(self):
        states = RoundStates(3, {"c": np.array([True, False, True])})
        assert states.failed_in_round("c", 0)
        assert not states.failed_in_round("c", 1)
        assert not states.failed_in_round("ghost", 2)

    def test_rounds_with_failures(self):
        states = RoundStates(
            4,
            {
                "a": np.array([True, False, False, False]),
                "b": np.array([False, False, True, False]),
            },
        )
        assert list(states.rounds_with_failures(["a", "b"])) == [0, 2]
        assert list(states.rounds_with_failures(["a"])) == [0]
        assert list(states.rounds_with_failures(["ghost"])) == []

    def test_rejects_non_positive_rounds(self):
        with pytest.raises(ConfigurationError):
            RoundStates(0, {})


class TestCombinators:
    def test_all_alive_none_when_all_reliable(self):
        states = RoundStates(5, {})
        assert all_alive(states, ["a", "b"]) is None

    def test_all_alive_ands_masks(self):
        states = RoundStates(
            3,
            {
                "a": np.array([True, False, False]),
                "b": np.array([False, True, False]),
            },
        )
        mask = all_alive(states, ["a", "b", "ghost"])
        assert list(mask) == [False, False, True]

    def test_any_path_none_dominates(self):
        assert any_path([np.zeros(3, bool), None], 3) is None

    def test_any_path_empty_is_unreachable(self):
        assert not any_path([], 3).any()

    def test_any_path_ors(self):
        a = np.array([True, False, False])
        b = np.array([False, True, False])
        assert list(any_path([a, b], 3)) == [True, True, False]

    def test_materialize(self):
        assert materialize(None, 2).all()
        mask = np.array([True, False])
        assert np.array_equal(materialize(mask, 2), mask)


class TestFatTreeEngineVsBruteForce:
    def test_external_matches_reference(self, lossy_fattree4, lossy_states):
        engine = FatTreeReachabilityEngine(lossy_fattree4)
        hosts = lossy_fattree4.hosts
        result = engine.external_reachable(lossy_states, hosts)
        for host in hosts:
            for i in range(ROUNDS):
                assert result[host][i] == fattree_ext_reference(
                    lossy_fattree4, lossy_states, host, i
                ), (host, i)

    def test_pairwise_matches_reference(self, lossy_fattree4, lossy_states):
        engine = FatTreeReachabilityEngine(lossy_fattree4)
        hosts = lossy_fattree4.hosts
        pairs = [
            (hosts[0], hosts[1]),  # same edge
            (hosts[0], hosts[2]),  # same pod, different edge
            (hosts[0], hosts[5]),  # different pod
            (hosts[3], hosts[11]),  # different pod
            (hosts[7], hosts[7]),  # self
        ]
        result = engine.pairwise_reachable(lossy_states, pairs)
        for pair in pairs:
            for i in range(ROUNDS):
                assert result[pair][i] == fattree_pair_reference(
                    lossy_fattree4, lossy_states, *pair, i
                ), (pair, i)

    def test_updown_is_subset_of_connectivity(self, lossy_fattree4, lossy_states):
        fast = FatTreeReachabilityEngine(lossy_fattree4)
        generic = GenericReachabilityEngine(lossy_fattree4)
        hosts = lossy_fattree4.hosts[:6]
        rf = fast.external_reachable(lossy_states, hosts)
        rg = generic.external_reachable(RoundStates(ROUNDS, lossy_states.failed), hosts)
        for host in hosts:
            assert not np.any(rf[host] & ~rg[host])

    def test_no_failures_everything_reachable(self, fattree4):
        engine = FatTreeReachabilityEngine(fattree4)
        states = RoundStates(10, {})
        result = engine.external_reachable(states, fattree4.hosts)
        for host in fattree4.hosts:
            assert result[host].all()

    def test_rejects_non_fattree(self, leafspine):
        with pytest.raises(TopologyError):
            FatTreeReachabilityEngine(leafspine)

    def test_relevant_elements_closure_sound(self, lossy_fattree4):
        """Failures outside the closure must not change any answer."""
        engine = FatTreeReachabilityEngine(lossy_fattree4)
        hosts = [lossy_fattree4.hosts[0], lossy_fattree4.hosts[6]]
        closure = engine.relevant_elements(hosts)
        states = _states_for(lossy_fattree4, seed=5)
        full = engine.external_reachable(states, hosts)
        restricted_failed = {
            cid: failed for cid, failed in states.failed.items() if cid in closure
        }
        restricted = engine.external_reachable(
            RoundStates(ROUNDS, restricted_failed), hosts
        )
        for host in hosts:
            assert np.array_equal(full[host], restricted[host])


class TestGenericEngine:
    def test_matches_networkx_connectivity(self, lossy_fattree4, lossy_states):
        engine = GenericReachabilityEngine(lossy_fattree4)
        hosts = lossy_fattree4.hosts[:5]
        result = engine.external_reachable(lossy_states, hosts)
        for i in range(0, ROUNDS, 7):  # spot-check a sample of rounds
            graph = nx.Graph()
            for node in lossy_fattree4.graph.nodes:
                if not lossy_states.failed_in_round(node, i):
                    graph.add_node(node)
            for a, b, data in lossy_fattree4.graph.edges(data=True):
                if (
                    a in graph
                    and b in graph
                    and not lossy_states.failed_in_round(data["component_id"], i)
                ):
                    graph.add_edge(a, b)
            alive_borders = [
                b for b in lossy_fattree4.border_switches if b in graph
            ]
            for host in hosts:
                expected = host in graph and any(
                    nx.has_path(graph, host, b) for b in alive_borders
                )
                assert result[host][i] == expected, (host, i)

    def test_pairwise_symmetric(self, lossy_fattree4, lossy_states):
        engine = GenericReachabilityEngine(lossy_fattree4)
        h = lossy_fattree4.hosts
        fwd = engine.pairwise_reachable(lossy_states, [(h[0], h[5])])
        states2 = RoundStates(ROUNDS, lossy_states.failed)
        rev = engine.pairwise_reachable(states2, [(h[5], h[0])])
        assert np.array_equal(fwd[(h[0], h[5])], rev[(h[5], h[0])])

    def test_reachable_hosts_in_round(self, fattree4):
        engine = GenericReachabilityEngine(fattree4)
        # Fail one edge switch: exactly its hosts become unreachable.
        failed = {"edge/0/0": np.array([True])}
        states = RoundStates(1, failed)
        reachable = engine.reachable_hosts_in_round(states, 0)
        assert reachable == set(fattree4.hosts) - {"host/0/0/0", "host/0/0/1"}


class TestLeafSpineEngine:
    def test_matches_generic_connectivity(self, leafspine):
        """On a leaf-spine, up-down host<->external equals connectivity
        whenever border switches attach to all spines."""
        policy_states = _states_for(
            LeafSpineTopology(
                spines=3,
                leaves=4,
                hosts_per_leaf=2,
                probability_policy=DefaultProbabilityPolicy(0.2, link_probability=0.1),
                seed=3,
            ),
            seed=4,
        )
        topo = LeafSpineTopology(
            spines=3,
            leaves=4,
            hosts_per_leaf=2,
            probability_policy=DefaultProbabilityPolicy(0.2, link_probability=0.1),
            seed=3,
        )
        fast = LeafSpineReachabilityEngine(topo)
        generic = GenericReachabilityEngine(topo)
        hosts = topo.hosts
        rf = fast.external_reachable(policy_states, hosts)
        rg = generic.external_reachable(
            RoundStates(policy_states.rounds, policy_states.failed), hosts
        )
        for host in hosts:
            # Up-down is a subset of connectivity...
            assert not np.any(rf[host] & ~rg[host])
            # ...and disagreements need a valley path (rare): bound them.
            disagreement = np.mean(rf[host] != rg[host])
            assert disagreement < 0.05

    def test_no_failures_everything_reachable(self, leafspine):
        engine = LeafSpineReachabilityEngine(leafspine)
        states = RoundStates(5, {})
        result = engine.external_reachable(states, leafspine.hosts)
        for host in leafspine.hosts:
            assert result[host].all()

    def test_same_leaf_pair_needs_only_leaf(self, leafspine):
        engine = LeafSpineReachabilityEngine(leafspine)
        # Fail every spine: same-leaf hosts still talk, cross-leaf do not.
        failed = {s: np.array([True]) for s in leafspine.spine_ids}
        states = RoundStates(1, failed)
        same = engine.pairwise_reachable(states, [("host/0/0", "host/0/1")])
        cross = engine.pairwise_reachable(states, [("host/0/0", "host/1/0")])
        assert same[("host/0/0", "host/0/1")][0]
        assert not cross[("host/0/0", "host/1/0")][0]

    def test_rejects_non_leafspine(self, fattree4):
        with pytest.raises(TopologyError):
            LeafSpineReachabilityEngine(fattree4)


class TestEngineFactory:
    def test_fattree_gets_fast_engine(self, fattree4):
        assert isinstance(engine_for(fattree4), FatTreeReachabilityEngine)

    def test_leafspine_gets_fast_engine(self, leafspine):
        assert isinstance(engine_for(leafspine), LeafSpineReachabilityEngine)

    def test_unknown_topology_gets_generic(self):
        from repro.faults.component import ComponentType
        from repro.topology.base import Topology

        topo = Topology("custom", probability_policy=DefaultProbabilityPolicy(0.1))
        topo._add_host("h0")
        topo._add_switch("s0", ComponentType.BORDER_SWITCH)
        topo._add_link("h0", "s0")
        topo._freeze()
        assert isinstance(engine_for(topo), GenericReachabilityEngine)
