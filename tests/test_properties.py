"""Cross-cutting property-based tests (hypothesis).

These complement the per-module suites with invariants that span
subsystems: plan moves preserve shape, symmetry signatures respect
automorphisms, reliability is monotone in failure probabilities, and
assessments are invariant to things that must not matter (instance
order, host relabeling within a symmetry class).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.app.structure import ApplicationStructure
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.core.transforms import SymmetryChecker
from repro.faults.dependencies import DependencyModel
from repro.faults.inventory import build_paper_inventory
from repro.faults.probability import DefaultProbabilityPolicy
from repro.routing.base import RoundStates
from repro.routing.fattree_fast import FatTreeReachabilityEngine
from repro.topology.fattree import FatTreeTopology
from repro.core.api import AssessmentConfig

# Module-level fixtures built once: hypothesis re-runs the bodies many
# times and the topology is immutable under these tests.
TOPOLOGY = FatTreeTopology(
    4, probability_policy=DefaultProbabilityPolicy(0.01), seed=3
)
INVENTORY = build_paper_inventory(TOPOLOGY, seed=4)
CHECKER = SymmetryChecker(TOPOLOGY, INVENTORY)
HOSTS = list(TOPOLOGY.hosts)


host_sets = st.permutations(HOSTS).map(lambda p: list(p[:4]))


class TestPlanProperties:
    @given(hosts=host_sets, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_neighbor_move_preserves_shape(self, hosts, data):
        plan = DeploymentPlan.single_component(hosts, "app")
        seed = data.draw(st.integers(0, 2**31))
        neighbor = plan.random_neighbor(TOPOLOGY, rng=seed)
        assert neighbor.instance_count() == plan.instance_count()
        assert len(neighbor.host_set()) == len(plan.host_set())
        assert len(plan.host_set() - neighbor.host_set()) == 1

    @given(hosts=host_sets)
    @settings(max_examples=30, deadline=None)
    def test_canonical_key_order_invariant(self, hosts):
        forward = DeploymentPlan.single_component(hosts, "app")
        backward = DeploymentPlan.single_component(list(reversed(hosts)), "app")
        assert forward.canonical_key() == backward.canonical_key()

    @given(hosts=host_sets)
    @settings(max_examples=20, deadline=None)
    def test_signature_order_invariant(self, hosts):
        forward = DeploymentPlan.single_component(hosts, "app")
        backward = DeploymentPlan.single_component(list(reversed(hosts)), "app")
        assert CHECKER.signature(forward) == CHECKER.signature(backward)

    @given(hosts=host_sets)
    @settings(max_examples=20, deadline=None)
    def test_equivalence_is_reflexive(self, hosts):
        plan = DeploymentPlan.single_component(hosts, "app")
        assert CHECKER.equivalent(plan, plan)


class TestReachabilityProperties:
    @given(
        failed_fraction=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_more_failures_never_help(self, failed_fraction, seed):
        """Reachability is antitone in the failure pattern."""
        rng = np.random.default_rng(seed)
        engine = FatTreeReachabilityEngine(TOPOLOGY)
        elements = [cid for cid in TOPOLOGY.components if cid in TOPOLOGY.graph]
        base_failed = {
            cid: np.array([rng.random() < failed_fraction]) for cid in elements
        }
        more_failed = {
            cid: np.array([bool(v[0]) or rng.random() < 0.2])
            for cid, v in base_failed.items()
        }
        hosts = HOSTS[:5]
        base = engine.external_reachable(RoundStates(1, base_failed), hosts)
        more = engine.external_reachable(RoundStates(1, more_failed), hosts)
        for host in hosts:
            # Anything reachable under MORE failures must be reachable
            # under fewer.
            assert not (more[host][0] and not base[host][0])

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_pairwise_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        engine = FatTreeReachabilityEngine(TOPOLOGY)
        elements = [cid for cid in TOPOLOGY.components if cid in TOPOLOGY.graph]
        failed = {cid: rng.random(8) < 0.2 for cid in elements}
        a, b = HOSTS[0], HOSTS[7]
        fwd = engine.pairwise_reachable(RoundStates(8, failed), [(a, b)])
        rev = engine.pairwise_reachable(RoundStates(8, dict(failed)), [(b, a)])
        assert np.array_equal(fwd[(a, b)], rev[(b, a)])


class TestAssessmentProperties:
    @given(k=st.integers(min_value=1, max_value=4))
    @settings(max_examples=8, deadline=None)
    def test_reliability_antitone_in_k(self, k):
        """Requiring more alive instances can only lower reliability."""
        hosts = HOSTS[:4]
        assessor = ReliabilityAssessor(TOPOLOGY, INVENTORY, config=AssessmentConfig(rounds=6_000, rng=9))
        structure_k = ApplicationStructure.k_of_n(k, 4)
        plan = DeploymentPlan.single_component(hosts, structure_k.components[0].name)
        # Reuse one sampled batch implicitly by fixing the assessor seed
        # per comparison pair.
        score_k = ReliabilityAssessor(TOPOLOGY, INVENTORY, config=AssessmentConfig(rounds=6_000, rng=9)).assess(plan, ApplicationStructure.k_of_n(k, 4)).score
        score_1 = ReliabilityAssessor(TOPOLOGY, INVENTORY, config=AssessmentConfig(rounds=6_000, rng=9)).assess(plan, ApplicationStructure.k_of_n(1, 4)).score
        assert score_k <= score_1 + 1e-12

    def test_reliability_monotone_in_probability(self):
        """Raising one deployed host's p can only lower the score."""
        topo = FatTreeTopology(
            4, probability_policy=DefaultProbabilityPolicy(0.01), seed=3
        )
        model = DependencyModel.empty(topo)
        hosts = topo.hosts[:3]
        before = ReliabilityAssessor(topo, model, config=AssessmentConfig(rounds=30_000, rng=2)).assess_k_of_n(
            hosts, 3
        )
        topo.override_probabilities({hosts[0]: 0.2})
        after = ReliabilityAssessor(topo, model, config=AssessmentConfig(rounds=30_000, rng=2)).assess_k_of_n(
            hosts, 3
        )
        assert after.score < before.score

    def test_instance_order_does_not_change_score(self):
        hosts = HOSTS[:4]
        a = ReliabilityAssessor(TOPOLOGY, INVENTORY, config=AssessmentConfig(rounds=8_000, rng=5))
        b = ReliabilityAssessor(TOPOLOGY, INVENTORY, config=AssessmentConfig(rounds=8_000, rng=5))
        forward = a.assess_k_of_n(hosts, 2).score
        backward = b.assess_k_of_n(list(reversed(hosts)), 2).score
        assert forward == pytest.approx(backward, abs=1e-12)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_score_in_unit_interval(self, seed):
        plan = DeploymentPlan.random(
            TOPOLOGY, ApplicationStructure.k_of_n(2, 3), rng=seed
        )
        assessor = ReliabilityAssessor(TOPOLOGY, INVENTORY, config=AssessmentConfig(rounds=1_000, rng=seed))
        result = assessor.assess(plan, ApplicationStructure.k_of_n(2, 3))
        assert 0.0 <= result.score <= 1.0
        assert result.estimate.ci_lower <= result.score <= result.estimate.ci_upper
