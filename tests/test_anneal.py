"""Tests for the annealing primitives (repro.core.anneal): Eqs. 4-6."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.anneal import (
    LinearTemperatureSchedule,
    MoveBudgetTemperatureSchedule,
    accept_neighbor,
    acceptance_probability,
    classic_delta,
    failure_odds,
    paper_delta,
)
from repro.util.errors import ConfigurationError


class TestPaperDelta:
    def test_paper_example(self):
        """§3.3.2: R_current=0.999, R_neighbor=0.99 -> one order of magnitude."""
        delta = paper_delta(0.999, 0.99)
        assert delta == pytest.approx(1.0)
        assert delta > classic_delta(0.999, 0.99) == pytest.approx(0.009)

    def test_sign_convention(self):
        assert paper_delta(0.99, 0.999) < 0  # neighbour better -> negative
        assert paper_delta(0.999, 0.99) > 0  # neighbour worse -> positive
        assert paper_delta(0.99, 0.99) == 0.0

    def test_floor_keeps_delta_finite(self):
        assert math.isfinite(paper_delta(1.0, 0.9))
        assert math.isfinite(paper_delta(0.9, 1.0))

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            paper_delta(1.1, 0.5)

    @given(
        rc=st.floats(min_value=0.0, max_value=1.0),
        rn=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_antisymmetry(self, rc, rn):
        assert paper_delta(rc, rn) == pytest.approx(-paper_delta(rn, rc))


class TestFailureOdds:
    def test_basic(self):
        assert failure_odds(0.99) == pytest.approx(0.01)

    def test_floor(self):
        assert failure_odds(1.0) > 0


class TestAcceptanceProbability:
    def test_improvement_always_accepted(self):
        assert acceptance_probability(-1.0, 0.5) == 1.0
        assert acceptance_probability(0.0, 0.5) == 1.0

    def test_eq4_for_worsening(self):
        assert acceptance_probability(1.0, 0.5) == pytest.approx(math.exp(-2.0))

    def test_zero_temperature_is_greedy(self):
        assert acceptance_probability(0.5, 0.0) == 0.0
        assert acceptance_probability(-0.5, 0.0) == 1.0

    def test_hotter_accepts_more(self):
        cold = acceptance_probability(1.0, 0.1)
        hot = acceptance_probability(1.0, 0.9)
        assert hot > cold

    def test_bigger_delta_accepts_less(self):
        small = acceptance_probability(0.1, 0.5)
        big = acceptance_probability(2.0, 0.5)
        assert small > big

    @given(
        delta=st.floats(min_value=0.0001, max_value=10.0),
        temperature=st.floats(min_value=0.001, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_probability_in_unit_interval(self, delta, temperature):
        p = acceptance_probability(delta, temperature)
        assert 0.0 <= p <= 1.0


class TestAcceptNeighbor:
    def test_improvement_accepted_without_draw(self):
        rng = np.random.default_rng(0)
        assert accept_neighbor(-1.0, 0.0, rng)

    def test_empirical_acceptance_rate(self):
        rng = np.random.default_rng(1)
        delta, temperature = 1.0, 0.5
        expected = math.exp(-delta / temperature)
        accepted = sum(accept_neighbor(delta, temperature, rng) for _ in range(20_000))
        assert accepted / 20_000 == pytest.approx(expected, abs=0.01)

    def test_zero_temperature_never_accepts_worse(self):
        rng = np.random.default_rng(2)
        assert not any(accept_neighbor(0.1, 0.0, rng) for _ in range(100))


class TestLinearTemperatureSchedule:
    def test_eq6_values(self):
        schedule = LinearTemperatureSchedule(30.0)
        assert schedule.temperature(0.0) == 1.0
        assert schedule.temperature(15.0) == pytest.approx(0.5)
        assert schedule.temperature(30.0) == 0.0

    def test_clamped_beyond_budget(self):
        schedule = LinearTemperatureSchedule(10.0)
        assert schedule.temperature(50.0) == 0.0
        assert schedule.temperature(-5.0) == 1.0

    def test_monotone_decreasing(self):
        schedule = LinearTemperatureSchedule(7.0)
        temps = [schedule.temperature(t) for t in np.linspace(0, 7, 20)]
        assert temps == sorted(temps, reverse=True)

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ConfigurationError):
            LinearTemperatureSchedule(0.0)


class TestMoveBudgetTemperatureSchedule:
    def test_linear_in_moves(self):
        schedule = MoveBudgetTemperatureSchedule(5)
        assert schedule.temperature(0.0, 0) == 1.0
        assert schedule.temperature(0.0, 2) == pytest.approx(0.6)
        assert schedule.temperature(0.0, 5) == 0.0

    def test_wall_clock_is_ignored(self):
        schedule = MoveBudgetTemperatureSchedule(8)
        assert schedule.temperature(0.0, 3) == schedule.temperature(1e9, 3)

    def test_clamped_beyond_budget(self):
        schedule = MoveBudgetTemperatureSchedule(4)
        assert schedule.temperature(0.0, 9) == 0.0

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ConfigurationError):
            MoveBudgetTemperatureSchedule(0)
        with pytest.raises(ConfigurationError):
            MoveBudgetTemperatureSchedule(-3)
