"""Unit tests for Monte-Carlo sampling (repro.sampling.montecarlo)."""

import math

import numpy as np
import pytest

from repro.sampling.base import SampleBatch, validate_probabilities
from repro.sampling.montecarlo import MonteCarloSampler
from repro.util.errors import ConfigurationError


class TestMonteCarloSampler:
    def test_marginal_rate(self, rng):
        p, rounds = 0.05, 100_000
        batch = MonteCarloSampler().sample({"c": p}, rounds, rng)
        sigma = math.sqrt(p * (1 - p) / rounds)
        assert abs(batch.failure_fraction("c") - p) < 5 * sigma

    def test_zero_probability_skipped(self, rng):
        batch = MonteCarloSampler().sample({"c": 0.0}, 1_000, rng)
        assert "c" not in batch.failed_rounds

    def test_rejects_invalid_probability(self, rng):
        with pytest.raises(ConfigurationError):
            MonteCarloSampler().sample({"c": 1.0}, 100, rng)

    def test_failed_rounds_sorted(self, rng):
        batch = MonteCarloSampler().sample({"c": 0.3}, 5_000, rng)
        failed = batch.rounds_failed("c")
        assert np.all(np.diff(failed) > 0)

    def test_chunking_handles_many_components(self, rng):
        # More components than one chunk row-budget for this round count.
        probabilities = {f"c{i}": 0.2 for i in range(600)}
        batch = MonteCarloSampler().sample(probabilities, 100, rng)
        rates = [batch.failure_fraction(f"c{i}") for i in range(600)]
        assert np.mean(rates) == pytest.approx(0.2, abs=0.01)

    def test_components_independent(self, rng):
        rounds = 50_000
        batch = MonteCarloSampler().sample({"a": 0.3, "b": 0.3}, rounds, rng)
        a, b = batch.dense("a"), batch.dense("b")
        joint = np.mean(a & b)
        assert joint == pytest.approx(0.09, abs=0.01)

    def test_deterministic_given_seed(self):
        b1 = MonteCarloSampler().sample({"a": 0.1}, 1_000, np.random.default_rng(4))
        b2 = MonteCarloSampler().sample({"a": 0.1}, 1_000, np.random.default_rng(4))
        assert np.array_equal(b1.rounds_failed("a"), b2.rounds_failed("a"))


class TestSampleBatch:
    def test_rejects_non_positive_rounds(self):
        with pytest.raises(ConfigurationError):
            SampleBatch(rounds=0)

    def test_dense_roundtrip(self, rng):
        batch = MonteCarloSampler().sample({"c": 0.4}, 500, rng)
        dense = batch.dense("c")
        assert np.array_equal(np.nonzero(dense)[0], batch.rounds_failed("c"))

    def test_dense_unknown_component_all_alive(self):
        batch = SampleBatch(rounds=10)
        assert not batch.dense("ghost").any()

    def test_failed_components_in_round(self, rng):
        batch = MonteCarloSampler().sample({"a": 0.5, "b": 0.5}, 200, rng)
        for i in (0, 57, 199):
            expected = {
                cid for cid in ("a", "b") if batch.dense(cid)[i]
            }
            assert batch.failed_components_in_round(i) == expected

    def test_failed_components_in_round_range_check(self):
        batch = SampleBatch(rounds=10)
        with pytest.raises(ConfigurationError):
            batch.failed_components_in_round(10)
        with pytest.raises(ConfigurationError):
            batch.failed_components_in_round(-1)

    def test_total_failure_events(self, rng):
        batch = MonteCarloSampler().sample({"a": 0.2, "b": 0.2}, 1_000, rng)
        assert batch.total_failure_events() == (
            batch.rounds_failed("a").size + batch.rounds_failed("b").size
        )

    def test_validate_probabilities(self):
        validate_probabilities({"a": 0.0, "b": 0.999})
        with pytest.raises(ConfigurationError):
            validate_probabilities({"a": -0.01})
