"""Tests for application structures and generators (repro.app)."""

import pytest

from repro.app.generators import microservice_mesh, multilayer, two_tier
from repro.app.structure import (
    EXTERNAL,
    ApplicationStructure,
    ComponentSpec,
    InstanceRef,
    ReachabilityRequirement,
)
from repro.util.errors import ConfigurationError


class TestComponentSpec:
    def test_rejects_external_name(self):
        with pytest.raises(ConfigurationError):
            ComponentSpec(EXTERNAL, 1)

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            ComponentSpec("", 1)

    def test_rejects_zero_instances(self):
        with pytest.raises(ConfigurationError):
            ComponentSpec("app", 0)


class TestReachabilityRequirement:
    def test_rejects_self_requirement(self):
        with pytest.raises(ConfigurationError):
            ReachabilityRequirement("a", "a", 1)

    def test_rejects_zero_min(self):
        with pytest.raises(ConfigurationError):
            ReachabilityRequirement("a", EXTERNAL, 0)


class TestApplicationStructure:
    def test_k_of_n(self):
        s = ApplicationStructure.k_of_n(4, 5)
        assert s.is_simple_k_of_n
        assert s.total_instances == 5
        assert s.requirements[0].min_reachable == 4
        assert s.requirements[0].source == EXTERNAL

    def test_k_of_n_rejects_k_above_n(self):
        with pytest.raises(ConfigurationError):
            ApplicationStructure.k_of_n(6, 5)

    def test_duplicate_component_rejected(self):
        with pytest.raises(ConfigurationError):
            ApplicationStructure(
                [ComponentSpec("a", 1), ComponentSpec("a", 2)], []
            )

    def test_requirement_unknown_target(self):
        with pytest.raises(ConfigurationError):
            ApplicationStructure(
                [ComponentSpec("a", 1)],
                [ReachabilityRequirement("ghost", EXTERNAL, 1)],
            )

    def test_requirement_unknown_source(self):
        with pytest.raises(ConfigurationError):
            ApplicationStructure(
                [ComponentSpec("a", 1)],
                [ReachabilityRequirement("a", "ghost", 1)],
            )

    def test_requirement_k_exceeding_n(self):
        with pytest.raises(ConfigurationError):
            ApplicationStructure(
                [ComponentSpec("a", 2)],
                [ReachabilityRequirement("a", EXTERNAL, 3)],
            )

    def test_duplicate_requirement_rejected(self):
        with pytest.raises(ConfigurationError):
            ApplicationStructure(
                [ComponentSpec("a", 2)],
                [
                    ReachabilityRequirement("a", EXTERNAL, 1),
                    ReachabilityRequirement("a", EXTERNAL, 2),
                ],
            )

    def test_needs_at_least_one_component(self):
        with pytest.raises(ConfigurationError):
            ApplicationStructure([], [])

    def test_instances_enumeration(self):
        s = two_tier(frontends=2, databases=2)
        assert s.instances() == [
            InstanceRef("frontend", 0),
            InstanceRef("frontend", 1),
            InstanceRef("database", 0),
            InstanceRef("database", 1),
        ]

    def test_from_requirement_map(self):
        s = ApplicationStructure.from_requirement_map(
            {"fe": 2, "db": 2},
            {("fe", EXTERNAL): 1, ("db", "fe"): 1},
        )
        assert s.total_instances == 4
        assert len(s.requirements) == 2

    def test_requirements_for(self):
        s = two_tier()
        assert len(s.requirements_for("frontend")) == 1
        assert s.requirements_for("database")[0].source == "frontend"

    def test_communication_edges_exclude_external(self):
        s = two_tier()
        assert s.communication_edges() == [("frontend", "database")]

    def test_component_lookup(self):
        s = two_tier()
        assert s.component("frontend").instances == 2
        with pytest.raises(ConfigurationError):
            s.component("ghost")

    def test_not_simple_when_multi_component(self):
        assert not two_tier().is_simple_k_of_n

    def test_repr(self):
        assert "2 components" in repr(two_tier())


class TestTwoTier:
    def test_fig6_defaults(self):
        s = two_tier()
        assert s.component("frontend").instances == 2
        assert s.component("database").instances == 2
        fe_req = s.requirements_for("frontend")[0]
        db_req = s.requirements_for("database")[0]
        assert fe_req.source == EXTERNAL and fe_req.min_reachable == 1
        assert db_req.source == "frontend" and db_req.min_reachable == 1


class TestMultilayer:
    def test_layer_chain(self):
        s = multilayer(3)
        assert s.total_instances == 15
        assert s.requirements_for("layer0")[0].source == EXTERNAL
        assert s.requirements_for("layer1")[0].source == "layer0"
        assert s.requirements_for("layer2")[0].source == "layer1"

    def test_single_layer(self):
        s = multilayer(1)
        assert s.is_simple_k_of_n

    def test_rejects_zero_layers(self):
        with pytest.raises(ConfigurationError):
            multilayer(0)

    def test_custom_redundancy(self):
        s = multilayer(2, instances_per_layer=3, k_per_layer=2)
        assert s.component("layer0").instances == 3
        assert s.requirements_for("layer1")[0].min_reachable == 2


class TestMicroserviceMesh:
    def test_component_count_formula(self):
        # The paper's "X-Y" structure has X + X*Y components (§4.2.3).
        s = microservice_mesh(3, 5)
        assert len(s.components) == 3 + 3 * 5
        s = microservice_mesh(10, 20, instances_per_component=1, k_per_component=1)
        assert len(s.components) == 210  # the paper's 10-20 example

    def test_cores_fully_meshed(self):
        s = microservice_mesh(3, 0)
        core_reqs = [
            r for r in s.requirements if r.component.startswith("core") and r.source.startswith("core")
        ]
        assert len(core_reqs) == 3 * 2  # ordered pairs

    def test_supports_attached_to_own_core(self):
        s = microservice_mesh(2, 3)
        req = s.requirements_for("support1_2")[0]
        assert req.source == "core1"

    def test_external_anchor(self):
        s = microservice_mesh(3, 1, externally_reachable_cores=2)
        externals = [r for r in s.requirements if r.source == EXTERNAL]
        assert {r.component for r in externals} == {"core0", "core1"}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            microservice_mesh(0, 1)
        with pytest.raises(ConfigurationError):
            microservice_mesh(2, -1)
        with pytest.raises(ConfigurationError):
            microservice_mesh(2, 1, externally_reachable_cores=3)

    def test_total_instances(self):
        s = microservice_mesh(3, 5, instances_per_component=5)
        assert s.total_instances == 5 * (3 + 15)
