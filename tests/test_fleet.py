"""The supervised worker fleet: sharding, failover, chaos replay.

The expensive end of the service tests: real forked worker processes,
real SIGKILL. Rounds are kept small and heartbeats fast so the whole
file still runs in seconds. The crown jewel is
``test_kill9_mid_request_replays_bit_identical`` — the PR 5 durability
guarantee carried across process boundaries.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.sampling import base as sampling_base
from repro.service.fleet import FleetSupervisor, HashRing
from repro.service.journal import RequestJournal
from repro.service.requests import AssessRequest
from repro.service.scheduler import ServiceConfig
from repro.util.errors import AdmissionRejected, ConfigurationError

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the worker fleet requires the fork start method",
)


def _config(journal_dir, **overrides) -> ServiceConfig:
    defaults = dict(
        scale="tiny",
        seed=1,
        rounds=200,
        chunks=4,
        queue_capacity=16,
        fleet_workers=2,
        journal_dir=os.fspath(journal_dir),
        heartbeat_interval_seconds=0.1,
        heartbeat_misses=5,
        respawn_backoff_seconds=0.1,
        respawn_backoff_cap_seconds=0.5,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _hosts(supervisor, count=3):
    return tuple(
        c for c in supervisor.topology.components if c.startswith("host")
    )[:count]


def _wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestHashRing:
    def test_every_shard_owns_part_of_the_space(self):
        ring = HashRing(4)
        owners = {ring.owner(f"key-{i}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_placement_is_deterministic_across_instances(self):
        first = HashRing(8)
        second = HashRing(8)
        keys = [f"key-{i}" for i in range(200)]
        assert [first.owner(k) for k in keys] == [second.owner(k) for k in keys]

    def test_removing_a_shard_only_moves_its_own_keys(self):
        ring = HashRing(4)
        keys = [f"key-{i}" for i in range(500)]
        before = {k: ring.owner(k) for k in keys}
        survivors = [0, 1, 3]  # shard 2 died
        for key, owner in before.items():
            after = ring.owner(key, survivors)
            if owner != 2:
                assert after == owner, "a surviving shard's key moved"
            else:
                assert after in survivors

    def test_eligible_filter_and_empty_set(self):
        ring = HashRing(4)
        assert ring.owner("anything", [2]) == 2
        assert ring.owner("anything", []) is None


class TestFleetBasics:
    def test_requires_fleet_workers(self, tmp_path):
        with pytest.raises(ConfigurationError, match="fleet_workers"):
            FleetSupervisor(_config(tmp_path, fleet_workers=0))

    def test_assess_executes_and_keys_replay(self, tmp_path):
        with FleetSupervisor(_config(tmp_path)) as fleet:
            hosts = _hosts(fleet)
            first = fleet.assess(
                AssessRequest(hosts=hosts, k=2, idempotency_key="alpha"),
                timeout=60,
            )
            assert first.status == "ok"
            assert first.result is not None
            unkeyed = fleet.assess(AssessRequest(hosts=hosts, k=2), timeout=60)
            assert unkeyed.status == "ok"
            replay = fleet.assess(
                AssessRequest(hosts=hosts, k=2, idempotency_key="alpha"),
                timeout=60,
            )
            assert replay.replayed
            assert replay.result == first.result

    def test_keyed_requests_route_by_ring_owner(self, tmp_path):
        with FleetSupervisor(_config(tmp_path)) as fleet:
            hosts = _hosts(fleet)
            key = "routed-key"
            expected = fleet.ring.owner(key, range(fleet.config.fleet_workers))
            ticket = fleet.submit(
                "assess", AssessRequest(hosts=hosts, k=2, idempotency_key=key)
            )
            assert ticket.shard == expected
            ticket.future.result(timeout=60)

    def test_status_exposes_shard_and_heartbeat_views(self, tmp_path):
        with FleetSupervisor(_config(tmp_path)) as fleet:
            assert _wait_until(
                lambda: fleet.status()["fleet"]["alive"] == 2
            ), fleet.status()
            status = fleet.status()
            shards = status["fleet"]["shards"]
            assert [s["shard"] for s in shards] == [0, 1]
            assert all(s["pid"] for s in shards)
            workers = {row["name"]: row for row in status["workers"]}
            assert set(workers) == {"shard-0", "shard-1"}
            for row in workers.values():
                assert row["heartbeat_age_seconds"] is not None
                assert row["status"] == "alive"
            assert status["durability"]["journaling"] is True
            # Lifetime restart/quarantine counters start at zero and no
            # drill verdict exists until a campaign writes one.
            for shard in shards:
                assert shard["window_restarts"] == 0
                assert shard["lifetime_quarantines"] == 0
            assert status["fleet"]["lifetime_restarts"] == 0
            assert status["fleet"]["lifetime_quarantines"] == 0
            assert status["drill"] is None

    def test_status_surfaces_last_drill_verdict(self, tmp_path):
        from repro.drill.engine import CampaignReport, write_verdict

        with FleetSupervisor(_config(tmp_path)) as fleet:
            assert fleet.status()["drill"] is None
            write_verdict(
                fleet.config.journal_dir,
                CampaignReport(rounds=2, rounds_run=2, seed=7, bug=None),
            )
            verdict = fleet.status()["drill"]
            assert verdict["passed"] is True
            assert verdict["rounds_run"] == 2
            assert verdict["seed"] == 7

    def test_submit_sheds_failover_when_no_shard_routable(self, tmp_path):
        fleet = FleetSupervisor(_config(tmp_path))
        try:
            fleet.start()
            hosts = _hosts(fleet)
            with fleet._lock:
                for slot in fleet._slots:
                    slot.state = "quarantined"
            with pytest.raises(AdmissionRejected) as excinfo:
                fleet.submit("assess", AssessRequest(hosts=hosts, k=2))
            assert excinfo.value.reason == "failover"
        finally:
            with fleet._lock:
                for slot in fleet._slots:
                    slot.state = "alive"
            fleet.close()


class TestFleetRecovery:
    def test_full_restart_replays_journaled_pending_requests(self, tmp_path):
        # A previous supervisor accepted work into shard 1's segment
        # family and died before executing it.
        from repro.service.scheduler import AssessmentService
        from repro.topology.presets import paper_topology

        topology = paper_topology("tiny", seed=1)
        hosts = tuple(
            c for c in topology.components if c.startswith("host")
        )[:3]
        request = AssessRequest(hosts=hosts, k=2, idempotency_key="ghost")
        journal = RequestJournal(os.fspath(tmp_path), shard=1)
        journal.accepted(
            "req-77",
            "assess",
            request.to_dict(),
            "ghost",
            AssessmentService._fingerprint(request),
        )
        journal.started("req-77")
        journal.close()
        with FleetSupervisor(_config(tmp_path)) as fleet:
            assert _wait_until(lambda: "req-77" not in fleet._tickets)
            # The replayed execution completed and the key is now bound
            # to a stored response.
            replay = fleet.assess(
                AssessRequest(hosts=hosts, k=2, idempotency_key="ghost"),
                timeout=60,
            )
            assert replay.replayed
            assert replay.request_id == "req-77"
            assert replay.result["runtime"]["recovered"] is True

    def test_dead_worker_respawns_and_serves_again(self, tmp_path):
        with FleetSupervisor(_config(tmp_path)) as fleet:
            assert _wait_until(lambda: fleet.status()["fleet"]["alive"] == 2)
            victim = fleet._slots[0].process.pid
            os.kill(victim, signal.SIGKILL)
            assert _wait_until(
                lambda: fleet._slots[0].generation == 2
                and fleet.status()["fleet"]["alive"] == 2
            ), fleet.status()
            status = fleet.status()
            assert status["fleet"]["shards"][0]["restarts"] == 1
            assert status["fleet"]["shards"][0]["window_restarts"] == 1
            assert status["fleet"]["lifetime_restarts"] == 1
            assert status["fleet"]["lifetime_quarantines"] == 0
            assert fleet._slots[0].process.pid != victim
            hosts = _hosts(fleet)
            response = fleet.assess(AssessRequest(hosts=hosts, k=2), timeout=60)
            assert response.status == "ok"

    def test_flapping_worker_is_quarantined_and_survivors_serve(self, tmp_path):
        config = _config(tmp_path, quarantine_restarts=0)
        with FleetSupervisor(config) as fleet:
            assert _wait_until(lambda: fleet.status()["fleet"]["alive"] == 2)
            os.kill(fleet._slots[0].process.pid, signal.SIGKILL)
            assert _wait_until(
                lambda: fleet._slots[0].state == "quarantined"
            ), fleet.status()
            status = fleet.status()
            assert status["fleet"]["quarantined"] == 1
            assert status["fleet"]["shards"][0]["lifetime_quarantines"] == 1
            assert status["fleet"]["lifetime_quarantines"] == 1
            hosts = _hosts(fleet)
            # Every key now lands on the survivor, including ones the
            # dead shard used to own.
            for index in range(4):
                response = fleet.assess(
                    AssessRequest(
                        hosts=hosts, k=2, idempotency_key=f"q-{index}"
                    ),
                    timeout=60,
                )
                assert response.status == "ok"


class TestFleetChaos:
    def test_kill9_mid_request_replays_bit_identical(self, tmp_path):
        """SIGKILL a worker mid-assessment; the survivor's replay must be
        bit-identical to an uninterrupted run of the same request."""
        request = None
        reference = None
        # Reference: the same keyed request on an undisturbed fleet.
        with FleetSupervisor(_config(tmp_path / "ref", rounds=40_000)) as fleet:
            hosts = _hosts(fleet)
            request = AssessRequest(
                hosts=hosts, k=2, idempotency_key="victim-key"
            )
            reference = fleet.assess(request, timeout=120)
            assert reference.status == "ok"

        ctx = multiprocessing.get_context("fork")
        ready = ctx.Semaphore(0)
        gate = ctx.Semaphore(0)
        calls = ctx.Value("i", 0)

        def hook():
            with calls.get_lock():
                calls.value += 1
                landed = calls.value
            if landed == 3:  # a few chunks in: flag the test, then block
                ready.release()
                gate.acquire()

        sampling_base.set_sampling_started_hook(hook)
        try:
            # Workers fork *after* the hook is set and inherit it.
            with FleetSupervisor(
                _config(tmp_path / "chaos", rounds=40_000)
            ) as fleet:
                ticket = fleet.submit("assess", request)
                assert ready.acquire(timeout=60), "worker never sampled"
                with fleet._lock:
                    busy = [s for s in fleet._slots if s.inflight is not None]
                assert busy, fleet.status()
                os.kill(busy[0].process.pid, signal.SIGKILL)
                for _ in range(500):  # unblock the replay and respawns
                    gate.release()
                response = ticket.future.result(timeout=120)
                assert response.status == "ok"
                assert response.result["runtime"]["recovered"] is True
                assert response.result["estimate"] == reference.result["estimate"]
                # The journal agrees: one lifecycle, completed once.
                state = RequestJournal.scan(tmp_path / "chaos")
                events = [
                    e["event"] for e in state.events[response.request_id]
                ]
                assert events.count("completed") == 1
        finally:
            sampling_base.set_sampling_started_hook(None)

    def test_queued_keyed_requests_survive_worker_death(self, tmp_path):
        """Tickets queued behind a dying shard move to survivors without
        loss or duplication."""
        with FleetSupervisor(
            _config(tmp_path, queue_capacity=32, rounds=100)
        ) as fleet:
            assert _wait_until(lambda: fleet.status()["fleet"]["alive"] == 2)
            hosts = _hosts(fleet)
            tickets = [
                fleet.submit(
                    "assess",
                    AssessRequest(
                        hosts=hosts, k=2, idempotency_key=f"burst-{i}"
                    ),
                )
                for i in range(10)
            ]
            os.kill(fleet._slots[1].process.pid, signal.SIGKILL)
            responses = [t.future.result(timeout=120) for t in tickets]
            by_id = {}
            for response in responses:
                assert response.status == "ok", response
                by_id.setdefault(response.request_id, 0)
                by_id[response.request_id] += 1
            assert len(by_id) == 10  # nothing lost, nothing merged
