"""Tests for deployment plans (repro.core.plan)."""

import numpy as np
import pytest

from repro.app.structure import ApplicationStructure, InstanceRef
from repro.app.generators import two_tier
from repro.core.plan import DeploymentPlan, MoveDescriptor, enumerate_k_of_n_plans
from repro.util.errors import ConfigurationError, UnsatisfiableRequirements


class TestConstruction:
    def test_single_component(self):
        plan = DeploymentPlan.single_component(["h1", "h2"], "app")
        assert plan.hosts() == ["h1", "h2"]
        assert plan.hosts_for("app") == ("h1", "h2")

    def test_from_mapping_multiple_components(self):
        plan = DeploymentPlan.from_mapping({"fe": ["a", "b"], "db": ["c"]})
        assert plan.hosts() == ["a", "b", "c"]
        assert plan.instance_count() == 3

    def test_rejects_duplicate_hosts(self):
        with pytest.raises(ConfigurationError):
            DeploymentPlan.single_component(["h1", "h1"])
        with pytest.raises(ConfigurationError):
            DeploymentPlan.from_mapping({"fe": ["a"], "db": ["a"]})

    def test_host_of_instance(self):
        plan = DeploymentPlan.from_mapping({"fe": ["a", "b"]})
        assert plan.host_of(InstanceRef("fe", 1)) == "b"

    def test_unknown_component(self):
        plan = DeploymentPlan.single_component(["a"])
        with pytest.raises(ConfigurationError):
            plan.hosts_for("ghost")


class TestRandomPlans:
    def test_respects_structure_shape(self, fattree4):
        structure = two_tier(frontends=2, databases=3)
        plan = DeploymentPlan.random(fattree4, structure, rng=1)
        assert len(plan.hosts_for("frontend")) == 2
        assert len(plan.hosts_for("database")) == 3
        assert len(set(plan.hosts())) == 5

    def test_deterministic_with_seed(self, fattree4):
        s = ApplicationStructure.k_of_n(2, 3)
        a = DeploymentPlan.random(fattree4, s, rng=7)
        b = DeploymentPlan.random(fattree4, s, rng=7)
        assert a == b

    def test_forbid_shared_rack(self, fattree4):
        s = ApplicationStructure.k_of_n(3, 4)
        for seed in range(10):
            plan = DeploymentPlan.random(
                fattree4, s, rng=seed, forbid_shared_rack=True
            )
            racks = [fattree4.rack_of(h) for h in plan.hosts()]
            assert len(set(racks)) == len(racks)

    def test_too_many_instances_rejected(self, fattree4):
        s = ApplicationStructure.k_of_n(1, 100)
        with pytest.raises(UnsatisfiableRequirements):
            DeploymentPlan.random(fattree4, s, rng=1)

    def test_too_many_racks_rejected(self, fattree4):
        s = ApplicationStructure.k_of_n(1, 8)  # only 6 racks at k=4
        with pytest.raises(UnsatisfiableRequirements):
            DeploymentPlan.random(fattree4, s, rng=1, forbid_shared_rack=True)


class TestValidation:
    def test_validate_against_happy_path(self, fattree4):
        s = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.random(fattree4, s, rng=1)
        plan.validate_against(fattree4, s)

    def test_component_mismatch(self, fattree4):
        s = two_tier()
        plan = DeploymentPlan.single_component(fattree4.hosts[:2], "app")
        with pytest.raises(ConfigurationError):
            plan.validate_against(fattree4, s)

    def test_instance_count_mismatch(self, fattree4):
        s = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.single_component(fattree4.hosts[:2], "app")
        with pytest.raises(ConfigurationError):
            plan.validate_against(fattree4, s)

    def test_unknown_host(self, fattree4):
        s = ApplicationStructure.k_of_n(1, 2)
        plan = DeploymentPlan.single_component(["host/0/0/0", "ghost"], "app")
        with pytest.raises(Exception):
            plan.validate_against(fattree4, s)

    def test_non_host_component_rejected(self, fattree4):
        s = ApplicationStructure.k_of_n(1, 2)
        plan = DeploymentPlan.single_component(["host/0/0/0", "edge/0/0"], "app")
        with pytest.raises(Exception):
            plan.validate_against(fattree4, s)


class TestNeighborMoves:
    def test_replace_host(self):
        plan = DeploymentPlan.from_mapping({"fe": ["a", "b"], "db": ["c"]})
        moved = plan.replace_host("b", "z")
        assert moved.hosts_for("fe") == ("a", "z")
        assert moved.hosts_for("db") == ("c",)
        assert plan.hosts_for("fe") == ("a", "b")  # original untouched

    def test_replace_unknown_host(self):
        plan = DeploymentPlan.single_component(["a"])
        with pytest.raises(ConfigurationError):
            plan.replace_host("x", "y")

    def test_replace_with_used_host(self):
        plan = DeploymentPlan.single_component(["a", "b"])
        with pytest.raises(ConfigurationError):
            plan.replace_host("a", "b")

    def test_random_neighbor_differs_by_one(self, fattree4):
        s = ApplicationStructure.k_of_n(2, 4)
        plan = DeploymentPlan.random(fattree4, s, rng=3)
        rng = np.random.default_rng(4)
        for _ in range(20):
            neighbor = plan.random_neighbor(fattree4, rng=rng)
            old = set(plan.hosts())
            new = set(neighbor.hosts())
            assert len(old - new) == 1
            assert len(new - old) == 1

    def test_random_neighbor_no_spare_host(self, fattree4):
        s = ApplicationStructure.k_of_n(1, len(fattree4.hosts))
        plan = DeploymentPlan.random(fattree4, s, rng=1)
        with pytest.raises(UnsatisfiableRequirements):
            plan.random_neighbor(fattree4, rng=2)

    def test_move_descriptor_apply(self):
        plan = DeploymentPlan.from_mapping({"fe": ["a", "b"], "db": ["c"]})
        moved = MoveDescriptor("b", "z").apply(plan)
        assert moved.hosts_for("fe") == ("a", "z")
        assert plan.hosts_for("fe") == ("a", "b")  # original untouched

    def test_propose_move_draw_identity(self, fattree4):
        """propose_move consumes the exact RNG stream random_neighbor does,
        so descriptor-based and plan-based proposal walks are identical."""
        s = ApplicationStructure.k_of_n(2, 4)
        plan_a = DeploymentPlan.random(fattree4, s, rng=3)
        plan_b = DeploymentPlan.random(fattree4, s, rng=3)
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        for _ in range(25):
            move = plan_a.propose_move(fattree4, rng=rng_a)
            plan_a = move.apply(plan_a)
            plan_b = plan_b.random_neighbor(fattree4, rng=rng_b)
            assert plan_a == plan_b
            assert rng_a.bit_generator.state == rng_b.bit_generator.state


class TestCanonicalKey:
    def test_instance_order_irrelevant(self):
        a = DeploymentPlan.from_mapping({"app": ["x", "y"]})
        b = DeploymentPlan.from_mapping({"app": ["y", "x"]})
        assert a.canonical_key() == b.canonical_key()

    def test_component_assignment_relevant(self):
        a = DeploymentPlan.from_mapping({"fe": ["x"], "db": ["y"]})
        b = DeploymentPlan.from_mapping({"fe": ["y"], "db": ["x"]})
        assert a.canonical_key() != b.canonical_key()

    def test_str(self):
        plan = DeploymentPlan.from_mapping({"fe": ["a"]})
        assert "fe: [a]" in str(plan)


class TestEnumeration:
    def test_enumerates_all_combinations(self):
        plans = list(enumerate_k_of_n_plans(["a", "b", "c"], 2))
        assert len(plans) == 3
        keys = {p.canonical_key() for p in plans}
        assert len(keys) == 3
