"""Tests for JSON serialization (repro.serialization)."""

import json

import pytest

from repro import serialization
from repro.app.generators import two_tier
from repro.app.structure import ApplicationStructure
from repro.core.plan import DeploymentPlan
from repro.core.risk import RiskAnalyzer
from repro.core.search import DeploymentSearch, SearchSpec
from repro.sampling.statistics import estimate_from_results
from repro.util.errors import ConfigurationError


class TestPlanRoundTrip:
    def test_round_trip(self):
        plan = DeploymentPlan.from_mapping({"fe": ["a", "b"], "db": ["c"]})
        document = serialization.plan_to_dict(plan)
        restored = serialization.plan_from_dict(document)
        assert restored == plan

    def test_document_is_json_safe(self):
        plan = DeploymentPlan.single_component(["x", "y"])
        text = json.dumps(serialization.plan_to_dict(plan))
        assert "x" in text

    def test_rejects_wrong_format(self):
        with pytest.raises(ConfigurationError):
            serialization.plan_from_dict({"format": "banana", "version": 1})

    def test_rejects_wrong_version(self):
        document = serialization.plan_to_dict(
            DeploymentPlan.single_component(["a"])
        )
        document["version"] = 999
        with pytest.raises(ConfigurationError):
            serialization.plan_from_dict(document)

    def test_rejects_malformed_placements(self):
        with pytest.raises(ConfigurationError):
            serialization.plan_from_dict(
                {"format": "deployment-plan", "version": 1, "placements": [{}]}
            )

    def test_duplicate_hosts_still_rejected_on_load(self):
        document = {
            "format": "deployment-plan",
            "version": 1,
            "placements": [{"component": "app", "hosts": ["a", "a"]}],
        }
        with pytest.raises(ConfigurationError):
            serialization.plan_from_dict(document)


class TestStructureRoundTrip:
    def test_round_trip_two_tier(self):
        structure = two_tier()
        document = serialization.structure_to_dict(structure)
        restored = serialization.structure_from_dict(document)
        assert restored.name == structure.name
        assert restored.components == structure.components
        assert restored.requirements == structure.requirements

    def test_round_trip_k_of_n(self):
        structure = ApplicationStructure.k_of_n(4, 5)
        restored = serialization.structure_from_dict(
            serialization.structure_to_dict(structure)
        )
        assert restored.is_simple_k_of_n
        assert restored.total_instances == 5

    def test_invalid_structure_rejected_on_load(self):
        document = serialization.structure_to_dict(two_tier())
        document["requirements"][0]["min_reachable"] = 99
        with pytest.raises(ConfigurationError):
            serialization.structure_from_dict(document)


class TestEstimateRoundTrip:
    def test_round_trip(self):
        estimate = estimate_from_results([1, 0, 1, 1])
        restored = serialization.estimate_from_dict(
            serialization.estimate_to_dict(estimate)
        )
        assert restored == estimate

    def test_rejects_missing_field(self):
        document = serialization.estimate_to_dict(estimate_from_results([1, 0]))
        del document["variance"]
        with pytest.raises(ConfigurationError):
            serialization.estimate_from_dict(document)


class TestCompositeDocuments:
    def test_assessment_document(self, assessor, fattree4):
        result = assessor.assess_k_of_n(fattree4.hosts[:3], 2)
        document = serialization.assessment_to_dict(result)
        assert document["format"] == "assessment-result"
        assert document["estimate"]["score"] == result.score
        # Fully JSON-serialisable.
        json.dumps(document)

    def test_search_result_document(self, assessor):
        search = DeploymentSearch(assessor, rng=5)
        spec = SearchSpec(
            ApplicationStructure.k_of_n(2, 3),
            desired_reliability=0.0,
            max_seconds=10.0,
        )
        result = search.search(spec)
        document = serialization.search_result_to_dict(result)
        assert document["satisfied"] is True
        restored_plan = serialization.plan_from_dict(document["best_plan"])
        assert restored_plan == result.best_plan
        json.dumps(document)

    def test_risk_report_document(self, fattree4, inventory):
        analyzer = RiskAnalyzer(fattree4, inventory)
        structure = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.single_component(
            ["host/0/0/0", "host/1/0/0", "host/2/0/0"], "app"
        )
        entries = analyzer.report(plan, structure)
        document = serialization.risk_report_to_dict(entries)
        assert len(document["entries"]) == len(entries)
        json.dumps(document)


class TestFileHelpers:
    def test_dump_and_load(self, tmp_path):
        plan = DeploymentPlan.single_component(["a", "b"])
        path = tmp_path / "plan.json"
        serialization.dump(serialization.plan_to_dict(plan), path)
        document = serialization.load(path)
        assert serialization.plan_from_dict(document) == plan

    def test_fsync_dir_succeeds_on_a_real_directory(self, tmp_path):
        assert serialization.fsync_dir(tmp_path) is True

    def test_fsync_dir_degrades_quietly_when_unsyncable(self, tmp_path):
        # Platforms (or paths) where a directory cannot be opened for
        # fsync must not break the atomic write — just report False.
        assert serialization.fsync_dir(tmp_path / "missing") is False


class TestRuntimeRecoveredFlag:
    @staticmethod
    def _result_with_runtime(assessor, fattree4, runtime):
        from dataclasses import replace

        result = assessor.assess_k_of_n(fattree4.hosts[:3], 2)
        return replace(result, runtime=runtime)

    def test_recovered_round_trips(self, assessor, fattree4):
        from repro.core.result import RuntimeMetadata

        result = self._result_with_runtime(
            assessor,
            fattree4,
            RuntimeMetadata(
                backend="chunked", workers=1, portion_seeds=(), recovered=True
            ),
        )
        document = serialization.assessment_to_dict(result)
        assert document["runtime"]["recovered"] is True
        decoded = serialization.assessment_from_dict(json.loads(json.dumps(document)))
        assert decoded.runtime.recovered is True

    def test_documents_without_the_flag_decode_as_not_recovered(
        self, assessor, fattree4
    ):
        from repro.core.result import RuntimeMetadata

        result = self._result_with_runtime(
            assessor,
            fattree4,
            RuntimeMetadata(backend="chunked", workers=1, portion_seeds=()),
        )
        document = serialization.assessment_to_dict(result)
        del document["runtime"]["recovered"]  # pre-durability document
        decoded = serialization.assessment_from_dict(document)
        assert decoded.runtime.recovered is False
