"""Compiled-kernel equivalence: packed states, flat forests, bit-identity.

The kernel's contract is that enabling it never changes a single bit of
any per-round result — it only changes how states are stored and
combined. These tests pin that contract at every layer: packbits
round-trips (including round counts not divisible by 8), the component
arena, compiled-forest vs recursive-interpreter equality over random
fault-tree forests, sampler fast-path stream identity, and end-to-end
assessments on the fat-tree and leaf-spine presets, sequentially and
incrementally.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.app.structure import ApplicationStructure
from repro.core.api import AssessmentConfig, build_assessor
from repro.core.plan import DeploymentPlan
from repro.faults.faulttree import (
    FaultTree,
    and_gate,
    basic,
    k_of_n_gate,
    or_gate,
)
from repro.faults.inventory import build_paper_inventory, build_rich_inventory
from repro.kernel import (
    AssessmentKernel,
    ComponentArena,
    CompiledForest,
    kernel_supported,
    pack_indices,
    packed_width,
    unpack_row,
)
from repro.kernel.packed import PackedBatch, pack_bool_matrix, unpack_matrix
from repro.routing.generic import GenericReachabilityEngine
from repro.sampling.dagger import (
    CommonRandomDaggerSampler,
    ExtendedDaggerSampler,
)
from repro.sampling.montecarlo import MonteCarloSampler
from repro.topology.fattree import FatTreeTopology
from repro.topology.leafspine import LeafSpineTopology
from repro.util.errors import ConfigurationError

# ---------------------------------------------------------------------------
# Shared substrates (hypothesis re-runs test bodies; build these once)
# ---------------------------------------------------------------------------

FATTREE = FatTreeTopology(4, seed=1)
FATTREE_INV = build_rich_inventory(FATTREE, seed=4)
LEAFSPINE = LeafSpineTopology(spines=4, leaves=6, hosts_per_leaf=3, seed=2)
LEAFSPINE_INV = build_paper_inventory(LEAFSPINE, seed=3)

EVENT_IDS = tuple(f"c{i}" for i in range(9))


# ---------------------------------------------------------------------------
# Packed representation
# ---------------------------------------------------------------------------


class TestPackedEdgeCases:
    @pytest.mark.parametrize("rounds", [1, 7, 8, 9, 13, 64, 501])
    def test_pack_unpack_roundtrip(self, rounds):
        rng = np.random.default_rng(rounds)
        dense = rng.random((5, rounds)) < 0.3
        packed = pack_bool_matrix(dense)
        assert packed.shape == (5, packed_width(rounds))
        assert np.array_equal(unpack_matrix(packed, rounds), dense)
        for row in range(5):
            assert np.array_equal(unpack_row(packed[row], rounds), dense[row])

    @pytest.mark.parametrize("rounds", [1, 7, 8, 9, 13])
    def test_pack_indices_matches_dense_scatter(self, rounds):
        rng = np.random.default_rng(rounds + 100)
        indices = np.nonzero(rng.random(rounds) < 0.5)[0]
        dense = np.zeros(rounds, dtype=bool)
        dense[indices] = True
        assert np.array_equal(unpack_row(pack_indices(indices, rounds), rounds), dense)

    def test_pad_bits_of_failure_rows_are_zero(self):
        row = pack_indices(np.array([0, 8]), 9)  # 2 bytes, 7 pad bits
        assert row.shape == (2,)
        assert row[1] == 0b1000_0000  # only round 8 set, pads clear

    def test_rejects_nonpositive_rounds(self):
        with pytest.raises(ConfigurationError):
            packed_width(0)
        with pytest.raises(ConfigurationError):
            PackedBatch(rounds=0)

    @pytest.mark.parametrize("rounds", [1, 9, 501])
    def test_sample_batch_roundtrip(self, rounds):
        sampler = ExtendedDaggerSampler()
        probs = {cid: 0.05 for cid in EVENT_IDS}
        legacy = sampler.sample(probs, rounds, np.random.default_rng(5))
        packed = PackedBatch.from_sample_batch(legacy)
        back = packed.to_sample_batch()
        assert set(back.failed_rounds) == set(legacy.failed_rounds)
        for cid, failed in legacy.failed_rounds.items():
            assert np.array_equal(back.failed_rounds[cid], failed)


class TestComponentArena:
    def test_roundtrip_and_order(self):
        model = FATTREE_INV
        arena = ComponentArena.for_model(model)
        probabilities = model.failure_probabilities()
        assert arena.ids == tuple(probabilities)
        for i, cid in enumerate(arena.ids):
            assert arena.index_of(cid) == i
            assert arena.id_of(i) == cid
            assert cid in arena
        assert np.array_equal(
            arena.indices_of(arena.ids[:5]), np.arange(5, dtype=np.int32)
        )
        assert arena.probabilities is not None
        assert arena.probabilities[arena.index_of(arena.ids[3])] == pytest.approx(
            probabilities[arena.ids[3]]
        )

    def test_unknown_component_raises(self):
        arena = ComponentArena(["a", "b"])
        with pytest.raises(ConfigurationError):
            arena.index_of("missing")
        with pytest.raises(ConfigurationError):
            arena.id_of(7)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            ComponentArena(["a", "a"])


# ---------------------------------------------------------------------------
# Compiled forest vs the recursive interpreter (random forests)
# ---------------------------------------------------------------------------


def _gate_nodes(children):
    ors = st.lists(children, min_size=1, max_size=4).map(lambda cs: or_gate(*cs))
    ands = st.lists(children, min_size=1, max_size=4).map(lambda cs: and_gate(*cs))
    kofns = st.lists(children, min_size=2, max_size=5).flatmap(
        lambda cs: st.integers(1, len(cs)).map(lambda k: k_of_n_gate(k, *cs))
    )
    return st.one_of(ors, ands, kofns)


tree_nodes = st.recursive(
    st.sampled_from(EVENT_IDS).map(basic), _gate_nodes, max_leaves=12
)


class TestCompiledForestEquality:
    @given(
        roots=st.lists(tree_nodes, min_size=1, max_size=4),
        seed=st.integers(0, 2**32 - 1),
        rounds=st.sampled_from([1, 7, 8, 9, 40, 501]),
        p=st.floats(0.05, 0.6),
    )
    @settings(max_examples=150, deadline=None)
    def test_forest_matches_interpreter(self, roots, seed, rounds, p):
        """Shared random forests evaluate bit-identically to Gate recursion."""
        arena = ComponentArena(EVENT_IDS)
        forest = CompiledForest(arena)
        subjects = {}
        for i, root in enumerate(roots):
            subject = f"s{i}"
            forest.ensure_subject(subject, root)
            subjects[subject] = FaultTree(subject_id=subject, root=root)

        rng = np.random.default_rng(seed)
        dense = rng.random((len(EVENT_IDS), rounds)) < p
        packed = pack_bool_matrix(dense)
        nonzero = dense.any(axis=1)

        def leaf_row(op):
            return packed[op] if nonzero[op] else None

        compiled = forest.evaluate(subjects, leaf_row)
        states = {cid: dense[i] for i, cid in enumerate(EVENT_IDS)}
        for subject, tree in subjects.items():
            expected = tree.evaluate(states)
            row = compiled[subject]
            got = (
                np.zeros(rounds, dtype=bool)
                if row is None
                else unpack_row(row, rounds)
            )
            assert np.array_equal(got, expected)

    def test_dedup_across_subjects(self):
        shared = and_gate(basic("c0"), basic("c1"))
        forest = CompiledForest(ComponentArena(EVENT_IDS))
        forest.ensure_subject("a", or_gate(basic("c2"), shared))
        forest.ensure_subject("b", or_gate(basic("c3"), shared))
        stats = forest.stats()
        # The shared AND gate and its two leaves are interned once.
        assert stats.dedup_hits >= 3
        assert stats.subjects == 2

    def test_degenerate_kofn_canonicalised(self):
        forest = CompiledForest(ComponentArena(EVENT_IDS))
        as_or = k_of_n_gate(1, basic("c0"), basic("c1"))
        as_and = k_of_n_gate(2, basic("c0"), basic("c1"))
        root_or = forest.ensure_subject("o", as_or)
        root_and = forest.ensure_subject("a", as_and)
        assert forest.ensure_subject("o2", or_gate(basic("c0"), basic("c1"))) == root_or
        assert (
            forest.ensure_subject("a2", and_gate(basic("c0"), basic("c1"))) == root_and
        )

    def test_unknown_subject_raises(self):
        forest = CompiledForest(ComponentArena(EVENT_IDS))
        with pytest.raises(ConfigurationError):
            forest.evaluate(["nope"], lambda op: None)


class TestScalarEvaluateRound:
    @given(
        root=tree_nodes,
        failed=st.sets(st.sampled_from(EVENT_IDS), max_size=len(EVENT_IDS)),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_vectorised_single_round(self, root, failed):
        tree = FaultTree(subject_id="s", root=root)
        states = {cid: np.array([cid in failed]) for cid in EVENT_IDS}
        assert tree.evaluate_round(failed) == bool(tree.evaluate(states)[0])


# ---------------------------------------------------------------------------
# Sampler fast paths (stream identity)
# ---------------------------------------------------------------------------


class TestSamplerFastPaths:
    PROBS = {f"x{i}": p for i, p in enumerate([0.001, 0.01, 0.05, 0.0, 0.02] * 8)}

    @pytest.mark.parametrize("rounds", [1, 7, 9, 501, 4000])
    @pytest.mark.parametrize(
        "sampler", [MonteCarloSampler(), ExtendedDaggerSampler()], ids=lambda s: s.name
    )
    def test_packed_matches_legacy_draws(self, sampler, rounds):
        legacy = sampler.sample(self.PROBS, rounds, np.random.default_rng(42))
        packed = sampler.sample_packed(self.PROBS, rounds, np.random.default_rng(42))
        reference = PackedBatch.from_sample_batch(legacy, packed.component_ids)
        assert np.array_equal(packed.matrix, reference.matrix)

    @pytest.mark.parametrize("rounds", [9, 501])
    def test_crn_packed_matches_legacy(self, rounds):
        sampler = CommonRandomDaggerSampler(master_seed=7)
        legacy = sampler.sample(self.PROBS, rounds, np.random.default_rng(0))
        packed = sampler.sample_packed(self.PROBS, rounds, np.random.default_rng(1))
        reference = PackedBatch.from_sample_batch(legacy, packed.component_ids)
        assert np.array_equal(packed.matrix, reference.matrix)

    def test_rng_stream_position_identical_after_sampling(self):
        """A kernel assessment must leave the shared rng exactly where the
        legacy one would, or subsequent assessments diverge."""
        for sampler in (MonteCarloSampler(), ExtendedDaggerSampler()):
            rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
            sampler.sample(self.PROBS, 501, rng_a)
            sampler.sample_packed(self.PROBS, 501, rng_b)
            assert rng_a.random() == rng_b.random()


# ---------------------------------------------------------------------------
# End-to-end bit-identity
# ---------------------------------------------------------------------------


def _plan_for(topology, structure, offset=0):
    count = structure.total_instances
    hosts = list(topology.hosts)[offset : offset + count]
    return DeploymentPlan.single_component(hosts, structure.components[0].name)


SUBSTRATES = [
    pytest.param(FATTREE, FATTREE_INV, id="fattree"),
    pytest.param(LEAFSPINE, LEAFSPINE_INV, id="leafspine"),
]


class TestAssessmentBitIdentity:
    @pytest.mark.parametrize("topology,inventory", SUBSTRATES)
    @pytest.mark.parametrize("rounds", [501, 3000])
    def test_sequential_assess(self, topology, inventory, rounds):
        structure = ApplicationStructure.k_of_n(3, 5)
        plan = _plan_for(topology, structure)
        base = AssessmentConfig(rounds=rounds, rng=7)
        legacy = build_assessor(topology, inventory, base)
        kernel = build_assessor(topology, inventory, base.with_updates(kernel=True))
        assert kernel.kernel is not None
        a = legacy.assess(plan, structure)
        b = kernel.assess(plan, structure)
        assert np.array_equal(a.per_round, b.per_round)
        assert a.estimate == b.estimate

    @pytest.mark.parametrize("topology,inventory", SUBSTRATES)
    def test_sequential_assess_stays_identical_across_calls(
        self, topology, inventory
    ):
        """Back-to-back assessments share one rng; streams must not drift."""
        structure = ApplicationStructure.k_of_n(2, 4)
        base = AssessmentConfig(rounds=501, rng=13)
        legacy = build_assessor(topology, inventory, base)
        kernel = build_assessor(topology, inventory, base.with_updates(kernel=True))
        hosts = list(topology.hosts)
        for offset in (0, 2, 4):
            plan = DeploymentPlan.single_component(
                hosts[offset : offset + 4], structure.components[0].name
            )
            a = legacy.assess(plan, structure)
            b = kernel.assess(plan, structure)
            assert np.array_equal(a.per_round, b.per_round)

    def test_full_infrastructure_mode(self):
        structure = ApplicationStructure.k_of_n(3, 5)
        plan = _plan_for(FATTREE, structure)
        base = AssessmentConfig(rounds=800, rng=3, sample_full_infrastructure=True)
        a = build_assessor(FATTREE, FATTREE_INV, base).assess(plan, structure)
        b = build_assessor(
            FATTREE, FATTREE_INV, base.with_updates(kernel=True)
        ).assess(plan, structure)
        assert np.array_equal(a.per_round, b.per_round)

    def test_structured_application(self):
        """Pairwise reachability (packed fixed point) agrees too."""
        structure = ApplicationStructure.from_requirement_map(
            {"web": 2, "app": 3, "db": 2},
            {("app", "web"): 1, ("db", "app"): 2},
        )
        hosts = list(FATTREE.hosts)[:7]
        plan = DeploymentPlan.from_mapping(
            {"web": hosts[:2], "app": hosts[2:5], "db": hosts[5:7]}
        )
        base = AssessmentConfig(rounds=1001, rng=21)
        a = build_assessor(FATTREE, FATTREE_INV, base).assess(plan, structure)
        b = build_assessor(
            FATTREE, FATTREE_INV, base.with_updates(kernel=True)
        ).assess(plan, structure)
        assert np.array_equal(a.per_round, b.per_round)

    def test_generic_engine_falls_back_to_interpreter(self):
        config = AssessmentConfig(
            rounds=501, rng=7, engine=GenericReachabilityEngine(FATTREE), kernel=True
        )
        assessor = build_assessor(FATTREE, FATTREE_INV, config)
        assert assessor.kernel is None  # fallback, not an error
        assert not kernel_supported(assessor.engine)
        structure = ApplicationStructure.k_of_n(3, 5)
        result = assessor.assess(_plan_for(FATTREE, structure), structure)
        reference = build_assessor(
            FATTREE,
            FATTREE_INV,
            AssessmentConfig(
                rounds=501, rng=7, engine=GenericReachabilityEngine(FATTREE)
            ),
        ).assess(_plan_for(FATTREE, structure), structure)
        assert np.array_equal(result.per_round, reference.per_round)


class TestIncrementalKernel:
    def test_move_walk_bit_identity(self):
        structure = ApplicationStructure.k_of_n(3, 5)
        config = AssessmentConfig(rounds=1001, mode="incremental", master_seed=123)
        dense = build_assessor(FATTREE, FATTREE_INV, config)
        packed = build_assessor(
            FATTREE, FATTREE_INV, config.with_updates(kernel=True)
        )
        assert packed.kernel is not None
        hosts = list(FATTREE.hosts)
        rng = np.random.default_rng(11)
        current = hosts[:5]
        for _ in range(12):
            plan = DeploymentPlan.single_component(
                current, structure.components[0].name
            )
            a = dense.assess(plan, structure)
            b = packed.assess(plan, structure)
            assert np.array_equal(a.per_round, b.per_round)
            slot = int(rng.integers(0, 5))
            candidates = [h for h in hosts if h not in current]
            current = list(current)
            current[slot] = candidates[int(rng.integers(0, len(candidates)))]

    def test_walk_across_pods_tracks_growing_closure(self):
        # Regression: the packed fat-tree engine caches the whole-fabric
        # edge-external matrix per states object. The incremental
        # assessor reuses ONE states object whose failed dict only grows,
        # so a matrix built while another pod's elements were unsampled
        # must be rebuilt once they register — otherwise later plans in
        # that pod read stale all-alive rows. Needs enough rounds that
        # newly registered scaffold elements actually fail somewhere.
        structure = ApplicationStructure.k_of_n(2, 3)
        config = AssessmentConfig(
            rounds=2000, mode="incremental", master_seed=20170412
        )
        dense = build_assessor(FATTREE, FATTREE_INV, config)
        packed = build_assessor(
            FATTREE, FATTREE_INV, config.with_updates(kernel=True)
        )
        rng = np.random.default_rng(11)
        plan = DeploymentPlan.random(FATTREE, structure, rng=rng)
        for _ in range(11):
            a = dense.assess(plan, structure)
            b = packed.assess(plan, structure)
            assert np.array_equal(a.per_round, b.per_round)
            plan = plan.random_neighbor(FATTREE, rng=rng)

    def test_clear_caches_resets_kernel_universe(self):
        structure = ApplicationStructure.k_of_n(2, 4)
        config = AssessmentConfig(
            rounds=501, mode="incremental", master_seed=9, kernel=True
        )
        assessor = build_assessor(FATTREE, FATTREE_INV, config)
        plan = _plan_for(FATTREE, structure)
        first = assessor.assess(plan, structure)
        assessor.clear_caches()
        assert not assessor._packed_rows and not assessor._forest_values
        again = assessor.assess(plan, structure)
        assert np.array_equal(first.per_round, again.per_round)


class TestScorePlans:
    def test_crn_shared_batch_equals_individual_assessments(self):
        structure = ApplicationStructure.k_of_n(3, 5)
        hosts = list(FATTREE.hosts)
        plans = [
            DeploymentPlan.single_component(
                hosts[i : i + 5], structure.components[0].name
            )
            for i in (0, 3, 7)
        ]
        config = AssessmentConfig(
            rounds=1001, rng=3, sampler=CommonRandomDaggerSampler(99), kernel=True
        )
        shared = build_assessor(FATTREE, FATTREE_INV, config)
        results = shared.score_plans(plans, structure)
        assert [r.plan for r in results] == plans
        for plan, result in zip(plans, results):
            solo = build_assessor(FATTREE, FATTREE_INV, config).assess(
                plan, structure
            )
            assert np.array_equal(solo.per_round, result.per_round)

    def test_without_kernel_falls_back_to_independent_assess(self):
        structure = ApplicationStructure.k_of_n(2, 4)
        plans = [_plan_for(FATTREE, structure)]
        config = AssessmentConfig(rounds=501, rng=5)
        assessor = build_assessor(FATTREE, FATTREE_INV, config)
        results = assessor.score_plans(plans, structure)
        reference = build_assessor(FATTREE, FATTREE_INV, config).assess(
            plans[0], structure
        )
        assert np.array_equal(results[0].per_round, reference.per_round)


class TestKernelObject:
    def test_effective_states_match_legacy_faulttree_stage(self):
        kernel = AssessmentKernel(FATTREE, FATTREE_INV)
        sampler = ExtendedDaggerSampler()
        probabilities = FATTREE_INV.failure_probabilities()
        rounds = 501
        batch = kernel.sample_packed(
            sampler, probabilities, rounds, np.random.default_rng(2)
        )
        subjects = {
            cid for cid in FATTREE.graph if cid in FATTREE_INV.trees
        } or set(list(FATTREE.graph)[:8])
        failed = kernel.effective_states(subjects, set(probabilities), batch)
        legacy = sampler.sample(probabilities, rounds, np.random.default_rng(2))
        dense = {}
        for cid, failed_rounds in legacy.failed_rounds.items():
            vec = np.zeros(rounds, dtype=bool)
            vec[failed_rounds] = True
            dense[cid] = vec
        for subject in subjects:
            tree = FATTREE_INV.tree_for(subject)
            states = {e: dense.get(e, np.zeros(rounds, dtype=bool)) for e in tree.basic_events()}
            expected = tree.evaluate(states)
            row = failed.get(subject)
            got = (
                np.zeros(rounds, dtype=bool)
                if row is None
                else unpack_row(row, rounds)
            )
            assert np.array_equal(got, expected)

    def test_repr_mentions_arena_size(self):
        kernel = AssessmentKernel(FATTREE, FATTREE_INV)
        assert "components" in repr(kernel)
