"""Unit + property tests for reliability statistics (Eqs. 1-3)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.statistics import (
    ReliabilityEstimate,
    estimate_from_results,
    merge_estimates,
    rounds_for_target_ci,
)
from repro.util.errors import ConfigurationError


class TestEstimateFromResults:
    def test_score_is_mean(self):
        estimate = estimate_from_results([1, 1, 0, 1])
        assert estimate.score == pytest.approx(0.75)
        assert estimate.reliable_rounds == 3
        assert estimate.rounds == 4

    def test_all_reliable(self):
        estimate = estimate_from_results(np.ones(100))
        assert estimate.score == 1.0
        assert estimate.variance == 0.0
        assert estimate.confidence_interval_width == 0.0

    def test_all_unreliable(self):
        estimate = estimate_from_results(np.zeros(100))
        assert estimate.score == 0.0
        assert estimate.failure_odds == 1.0

    def test_eq2_variance(self):
        results = np.array([1, 0, 1, 1, 0, 1, 1, 1], dtype=float)
        estimate = estimate_from_results(results)
        assert estimate.variance == pytest.approx(results.var() / len(results))

    def test_eq3_ci_width(self):
        results = np.array([1, 0] * 50, dtype=float)
        estimate = estimate_from_results(results)
        assert estimate.confidence_interval_width == pytest.approx(
            4 * math.sqrt(estimate.variance)
        )

    def test_ci_bounds_clamped(self):
        estimate = estimate_from_results([1] * 9 + [0])
        assert 0.0 <= estimate.ci_lower <= estimate.ci_upper <= 1.0

    def test_contains(self):
        estimate = estimate_from_results([1, 0] * 500)
        assert estimate.contains(0.5)
        assert not estimate.contains(0.9)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            estimate_from_results([])

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            estimate_from_results(np.ones((3, 3)))

    def test_boolean_input_accepted(self):
        estimate = estimate_from_results(np.array([True, False, True]))
        assert estimate.score == pytest.approx(2 / 3)

    def test_str_is_informative(self):
        text = str(estimate_from_results([1, 1, 0, 1]))
        assert "R=0.75" in text
        assert "3/4" in text

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_property_score_bounds_and_eq_consistency(self, results):
        estimate = estimate_from_results(results)
        assert 0.0 <= estimate.score <= 1.0
        assert estimate.reliable_rounds == sum(results)
        # Eq. 2/3 consistency.
        assert estimate.confidence_interval_width == pytest.approx(
            4 * math.sqrt(estimate.variance)
        )
        # Variance shrinks as 1/n for fixed composition.
        doubled = estimate_from_results(list(results) * 2)
        assert doubled.variance == pytest.approx(estimate.variance / 2)


class TestCoverage:
    def test_ci_covers_truth_approximately_95_percent(self):
        """Empirical check of Eq. 3 on Bernoulli data."""
        truth = 0.97
        covered = 0
        trials = 400
        rng = np.random.default_rng(31)
        for _ in range(trials):
            results = rng.random(2_000) < truth
            if estimate_from_results(results).contains(truth):
                covered += 1
        # Binomial(400, 0.95) -> stddev ~ 4.3; accept a generous band.
        assert covered / trials > 0.88


class TestMergeEstimates:
    def test_merge_equals_pooled(self):
        rng = np.random.default_rng(7)
        chunks = [rng.random(500) < 0.9 for _ in range(4)]
        merged = merge_estimates([estimate_from_results(c) for c in chunks])
        pooled = estimate_from_results(np.concatenate(chunks))
        assert merged.score == pytest.approx(pooled.score)
        assert merged.rounds == pooled.rounds
        assert merged.variance == pytest.approx(pooled.variance)

    def test_merge_single(self):
        estimate = estimate_from_results([1, 0, 1, 1])
        merged = merge_estimates([estimate])
        assert merged.score == estimate.score

    def test_merge_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            merge_estimates([])


class TestRoundsForTargetCi:
    def test_inverts_eq3(self):
        variance_per_round = 0.25  # worst case Bernoulli
        n = rounds_for_target_ci(0.01, variance_per_round)
        # CI width at n rounds should be at most the target.
        assert 4 * math.sqrt(variance_per_round / n) <= 0.01 + 1e-12

    def test_tighter_target_needs_more_rounds(self):
        assert rounds_for_target_ci(0.001, 0.1) > rounds_for_target_ci(0.01, 0.1)

    def test_zero_variance(self):
        assert rounds_for_target_ci(0.01, 0.0) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            rounds_for_target_ci(0.0, 0.1)
        with pytest.raises(ConfigurationError):
            rounds_for_target_ci(0.01, -1.0)


class TestReliabilityEstimateProperties:
    def test_failure_odds(self):
        estimate = ReliabilityEstimate(
            score=0.99, variance=0.0, confidence_interval_width=0.0,
            rounds=10, reliable_rounds=9,
        )
        assert estimate.failure_odds == pytest.approx(0.01)
