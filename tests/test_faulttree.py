"""Unit + property tests for fault trees (repro.faults.faulttree)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.faulttree import (
    BasicEvent,
    FaultTree,
    Gate,
    GateKind,
    and_gate,
    basic,
    exact_failure_probability,
    iter_basic_events,
    k_of_n_gate,
    merge_shared_events,
    or_gate,
    trivial_tree,
)
from repro.util.errors import ConfigurationError


def _fig5_tree() -> FaultTree:
    """The example host fault tree of the paper's Fig. 5."""
    software = or_gate(basic("os"), basic("lib"), label="software fails")
    power = and_gate(basic("psu-a"), basic("psu-b"), label="power fails")
    cooling = and_gate(basic("cool-a"), basic("cool-b"), label="cooling fails")
    return FaultTree("host", or_gate(basic("host"), software, power, cooling))


class TestConstruction:
    def test_gate_requires_children(self):
        with pytest.raises(ConfigurationError):
            Gate(GateKind.OR, ())

    def test_k_of_n_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            k_of_n_gate(0, basic("a"), basic("b"))
        with pytest.raises(ConfigurationError):
            k_of_n_gate(3, basic("a"), basic("b"))

    def test_basic_events_collected(self):
        tree = _fig5_tree()
        assert tree.basic_events() == {
            "host", "os", "lib", "psu-a", "psu-b", "cool-a", "cool-b",
        }

    def test_depth(self):
        assert trivial_tree("x").depth() == 1
        assert _fig5_tree().depth() == 3

    def test_iter_basic_events_yields_duplicates(self):
        tree = or_gate(basic("a"), and_gate(basic("a"), basic("b")))
        events = [e.component_id for e in iter_basic_events(tree)]
        assert sorted(events) == ["a", "a", "b"]

    def test_str_representations(self):
        assert str(basic("a")) == "a"
        assert "or(" in str(or_gate(basic("a"), basic("b")))
        assert "k_of_n(2;" in str(k_of_n_gate(2, basic("a"), basic("b"), basic("c")))


class TestFig5Semantics:
    """The four behaviours the paper spells out for Fig. 5."""

    def test_fails_if_own_hardware_fails(self):
        assert _fig5_tree().evaluate_round({"host"})

    def test_fails_if_any_software_fails(self):
        assert _fig5_tree().evaluate_round({"os"})
        assert _fig5_tree().evaluate_round({"lib"})

    def test_power_needs_both_supplies(self):
        tree = _fig5_tree()
        assert not tree.evaluate_round({"psu-a"})
        assert not tree.evaluate_round({"psu-b"})
        assert tree.evaluate_round({"psu-a", "psu-b"})

    def test_cooling_needs_both_units(self):
        tree = _fig5_tree()
        assert not tree.evaluate_round({"cool-a"})
        assert tree.evaluate_round({"cool-a", "cool-b"})

    def test_alive_with_no_failures(self):
        assert not _fig5_tree().evaluate_round(set())


class TestVectorisedEvaluation:
    def test_matches_scalar_on_fig5(self, rng):
        tree = _fig5_tree()
        events = sorted(tree.basic_events())
        rounds = 300
        states = {e: rng.random(rounds) < 0.3 for e in events}
        vector = tree.evaluate(states)
        for i in range(rounds):
            failed = {e for e in events if states[e][i]}
            assert vector[i] == tree.evaluate_round(failed)

    def test_k_of_n_vectorised(self, rng):
        tree = FaultTree("x", k_of_n_gate(2, basic("a"), basic("b"), basic("c")))
        rounds = 200
        states = {e: rng.random(rounds) < 0.5 for e in "abc"}
        vector = tree.evaluate(states)
        counts = states["a"].astype(int) + states["b"] + states["c"]
        assert np.array_equal(vector, counts >= 2)

    def test_does_not_mutate_inputs(self, rng):
        tree = _fig5_tree()
        states = {e: rng.random(50) < 0.3 for e in tree.basic_events()}
        copies = {e: s.copy() for e, s in states.items()}
        tree.evaluate(states)
        for e in states:
            assert np.array_equal(states[e], copies[e])


# ----------------------------------------------------------------------
# Property-based testing: random trees, vectorised == brute force.
# ----------------------------------------------------------------------

_EVENT_NAMES = [f"c{i}" for i in range(6)]


def _tree_nodes(depth: int):
    leaf = st.sampled_from(_EVENT_NAMES).map(basic)
    if depth == 0:
        return leaf

    def make_gate(children_and_kind):
        children, kind, k = children_and_kind
        if kind == GateKind.K_OF_N:
            return Gate(kind, tuple(children), threshold=min(k, len(children)))
        return Gate(kind, tuple(children))

    subtree = _tree_nodes(depth - 1)
    gate = st.tuples(
        st.lists(subtree, min_size=1, max_size=3),
        st.sampled_from(list(GateKind)),
        st.integers(min_value=1, max_value=3),
    ).map(make_gate)
    return st.one_of(leaf, gate)


class TestRandomTreeProperties:
    @given(root=_tree_nodes(3), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_vectorised_equals_per_round(self, root, data):
        tree = FaultTree("subject", root)
        events = sorted(tree.basic_events())
        rounds = 40
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        states = {e: rng.random(rounds) < 0.4 for e in events}
        vector = tree.evaluate(states)
        for i in range(rounds):
            failed = {e for e in events if states[e][i]}
            assert vector[i] == tree.evaluate_round(failed)

    @given(root=_tree_nodes(2))
    @settings(max_examples=40, deadline=None)
    def test_monotonicity(self, root):
        """Failing MORE components can never un-fail the subject."""
        tree = FaultTree("subject", root)
        events = sorted(tree.basic_events())
        assert not tree.evaluate_round(set()) or tree.evaluate_round(set(events))
        # Adding failures preserves a firing top event.
        for i in range(len(events)):
            partial = set(events[: i + 1])
            if tree.evaluate_round(partial):
                assert tree.evaluate_round(set(events))


class TestExactProbability:
    def test_single_event(self):
        tree = trivial_tree("x")
        assert exact_failure_probability(tree, {"x": 0.3}) == pytest.approx(0.3)

    def test_or_of_two(self):
        tree = FaultTree("s", or_gate(basic("a"), basic("b")))
        p = exact_failure_probability(tree, {"a": 0.1, "b": 0.2})
        assert p == pytest.approx(1 - 0.9 * 0.8)

    def test_and_of_two(self):
        tree = FaultTree("s", and_gate(basic("a"), basic("b")))
        p = exact_failure_probability(tree, {"a": 0.1, "b": 0.2})
        assert p == pytest.approx(0.02)

    def test_fig5_probability(self):
        tree = _fig5_tree()
        probs = {
            "host": 0.01, "os": 0.02, "lib": 0.03,
            "psu-a": 0.1, "psu-b": 0.1, "cool-a": 0.2, "cool-b": 0.2,
        }
        expected_survive = (
            (1 - 0.01) * (1 - 0.02) * (1 - 0.03) * (1 - 0.1 * 0.1) * (1 - 0.2 * 0.2)
        )
        p = exact_failure_probability(tree, probs)
        assert p == pytest.approx(1 - expected_survive)

    def test_shared_event_is_not_double_counted(self):
        # a OR (a AND b) == a.
        tree = FaultTree("s", or_gate(basic("a"), and_gate(basic("a"), basic("b"))))
        p = exact_failure_probability(tree, {"a": 0.25, "b": 0.5})
        assert p == pytest.approx(0.25)

    def test_refuses_intractable_trees(self):
        big = or_gate(*[basic(f"e{i}") for i in range(25)])
        with pytest.raises(ConfigurationError):
            exact_failure_probability(FaultTree("s", big), {f"e{i}": 0.1 for i in range(25)})

    def test_sampling_agrees_with_exact(self, rng):
        """Monte-Carlo estimate of the top event converges to the exact value."""
        tree = _fig5_tree()
        probs = {
            "host": 0.05, "os": 0.1, "lib": 0.1,
            "psu-a": 0.3, "psu-b": 0.3, "cool-a": 0.4, "cool-b": 0.4,
        }
        exact = exact_failure_probability(tree, probs)
        rounds = 40_000
        states = {e: rng.random(rounds) < p for e, p in probs.items()}
        estimate = tree.evaluate(states).mean()
        assert estimate == pytest.approx(exact, abs=0.01)


class TestMergeSharedEvents:
    def test_disjoint_trees_share_nothing(self):
        trees = [trivial_tree("a"), trivial_tree("b")]
        assert merge_shared_events(trees) == frozenset()

    def test_shared_dependency_detected(self):
        t1 = FaultTree("h1", or_gate(basic("h1"), basic("power")))
        t2 = FaultTree("h2", or_gate(basic("h2"), basic("power")))
        assert merge_shared_events([t1, t2]) == {"power"}

    def test_duplicates_within_one_tree_do_not_count(self):
        t1 = FaultTree("h1", or_gate(basic("x"), and_gate(basic("x"), basic("h1"))))
        assert merge_shared_events([t1]) == frozenset()
