"""Tests for structure evaluation (repro.core.evaluation).

The evaluator is checked against hand-computed semantics on controlled
failure patterns: K-of-N counting, the Fig. 6 two-tier walk-through, chain
propagation, and the greatest-fixed-point behaviour on meshed cores.
"""

import numpy as np
import pytest

from repro.app.generators import microservice_mesh, multilayer, two_tier
from repro.app.structure import ApplicationStructure
from repro.core.evaluation import StructureEvaluator
from repro.core.plan import DeploymentPlan
from repro.routing.base import RoundStates
from repro.routing.fattree_fast import FatTreeReachabilityEngine


@pytest.fixture
def engine(fattree4):
    return FatTreeReachabilityEngine(fattree4)


def _states(rounds=1, **failed_components):
    failed = {}
    for cid, rounds_failed in failed_components.items():
        cid = cid.replace("__", "/")
        vector = np.zeros(rounds, dtype=bool)
        vector[list(rounds_failed)] = True
        failed[cid] = vector
    return RoundStates(rounds, failed)


class TestKofN:
    def test_all_alive_reliable(self, fattree4, engine):
        s = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.single_component(fattree4.hosts[:3], "app")
        reliable = StructureEvaluator(engine).evaluate(RoundStates(4, {}), plan, s)
        assert reliable.all()

    def test_counts_against_k(self, fattree4, engine):
        s = ApplicationStructure.k_of_n(2, 3)
        hosts = ["host/0/0/0", "host/1/0/0", "host/2/0/0"]
        plan = DeploymentPlan.single_component(hosts, "app")
        # Round 0: one host down (2 alive -> reliable).
        # Round 1: two hosts down (1 alive -> unreliable).
        states = _states(2, host__0__0__0={0, 1}, host__1__0__0={1})
        reliable = StructureEvaluator(engine).evaluate(states, plan, s)
        assert list(reliable) == [True, False]

    def test_edge_switch_failure_kills_rack(self, fattree4, engine):
        s = ApplicationStructure.k_of_n(2, 2)
        plan = DeploymentPlan.single_component(["host/0/0/0", "host/0/0/1"], "app")
        states = _states(1, edge__0__0={0})
        reliable = StructureEvaluator(engine).evaluate(states, plan, s)
        assert not reliable[0]

    def test_k_equals_n_needs_everyone(self, fattree4, engine):
        s = ApplicationStructure.k_of_n(3, 3)
        hosts = ["host/0/0/0", "host/1/0/0", "host/2/0/0"]
        plan = DeploymentPlan.single_component(hosts, "app")
        states = _states(1, host__2__0__0={0})
        assert not StructureEvaluator(engine).evaluate(states, plan, s)[0]

    def test_one_of_n_is_resilient(self, fattree4, engine):
        s = ApplicationStructure.k_of_n(1, 3)
        hosts = ["host/0/0/0", "host/1/0/0", "host/2/0/0"]
        plan = DeploymentPlan.single_component(hosts, "app")
        states = _states(1, host__0__0__0={0}, host__1__0__0={0})
        assert StructureEvaluator(engine).evaluate(states, plan, s)[0]


class TestTwoTierFig6:
    """The Fig. 6 walk-through: FE externally reachable, DB from alive FE."""

    @pytest.fixture
    def setup(self, fattree4, engine):
        structure = two_tier()  # 2 FE, 2 DB, K=1 each
        plan = DeploymentPlan.from_mapping(
            {
                "frontend": ["host/0/0/0", "host/1/0/0"],
                "database": ["host/0/1/0", "host/2/0/0"],
            }
        )
        return structure, plan, StructureEvaluator(engine)

    def test_healthy_round_reliable(self, setup):
        structure, plan, evaluator = setup
        assert evaluator.evaluate(RoundStates(1, {}), plan, structure)[0]

    def test_one_fe_one_db_suffices(self, setup):
        structure, plan, evaluator = setup
        states = _states(1, host__1__0__0={0}, host__2__0__0={0})
        assert evaluator.evaluate(states, plan, structure)[0]

    def test_all_fes_down_unreliable(self, setup):
        structure, plan, evaluator = setup
        states = _states(1, host__0__0__0={0}, host__1__0__0={0})
        assert not evaluator.evaluate(states, plan, structure)[0]

    def test_all_dbs_down_unreliable(self, setup):
        structure, plan, evaluator = setup
        states = _states(1, host__0__1__0={0}, host__2__0__0={0})
        assert not evaluator.evaluate(states, plan, structure)[0]

    def test_db_must_be_reachable_from_alive_fe(self, fattree4, engine):
        """A DB reachable only via a *dead* FE's position does not count.

        Kill FE2 and isolate pod 0 from the core (so FE1 in pod 0 is not
        externally reachable). DB in pod 0 can still physically reach FE1,
        but FE1 is not an *active* frontend, so the app is down.
        """
        structure = two_tier()
        plan = DeploymentPlan.from_mapping(
            {
                "frontend": ["host/0/0/0", "host/1/0/0"],
                "database": ["host/0/1/0", "host/0/1/1"],
            }
        )
        # FE2 dead; pod 0 cut from core by failing both its agg switches.
        states = _states(1, host__1__0__0={0}, agg__0__0={0}, agg__0__1={0})
        assert not StructureEvaluator(engine).evaluate(states, plan, structure)[0]
        # Same infra failures but FE2 alive: FE2 serves, but DBs (pod 0)
        # cannot be reached from FE2 (pod 0 is cut) -> still down.
        states = _states(1, agg__0__0={0}, agg__0__1={0})
        assert not StructureEvaluator(engine).evaluate(states, plan, structure)[0]


class TestMultilayerChains:
    def test_failure_propagates_down_chain(self, fattree4, engine):
        structure = multilayer(3, instances_per_layer=1, k_per_layer=1)
        plan = DeploymentPlan.from_mapping(
            {
                "layer0": ["host/0/0/0"],
                "layer1": ["host/1/0/0"],
                "layer2": ["host/2/0/0"],
            }
        )
        evaluator = StructureEvaluator(engine)
        # Top-layer host dead: every layer is effectively down.
        states = _states(1, host__0__0__0={0})
        assert not evaluator.evaluate(states, plan, structure)[0]
        # Middle-layer host dead: chain broken.
        states = _states(1, host__1__0__0={0})
        assert not evaluator.evaluate(states, plan, structure)[0]
        # Bottom-layer host dead: chain broken at the end.
        states = _states(1, host__2__0__0={0})
        assert not evaluator.evaluate(states, plan, structure)[0]
        # Nothing dead: fine.
        assert evaluator.evaluate(RoundStates(1, {}), plan, structure)[0]


class TestMeshFixedPoint:
    def test_mutual_requirements_converge(self, fattree4, engine):
        structure = microservice_mesh(
            2, 0, instances_per_component=2, k_per_component=1
        )
        plan = DeploymentPlan.from_mapping(
            {
                "core0": ["host/0/0/0", "host/1/0/0"],
                "core1": ["host/0/1/0", "host/2/0/0"],
            }
        )
        evaluator = StructureEvaluator(engine)
        assert evaluator.evaluate(RoundStates(1, {}), plan, structure)[0]
        # Kill one instance of each core: still 1-of-2 everywhere.
        states = _states(1, host__1__0__0={0}, host__2__0__0={0})
        assert evaluator.evaluate(states, plan, structure)[0]
        # Kill both instances of core1: core0 loses its partner too.
        states = _states(1, host__0__1__0={0}, host__2__0__0={0})
        assert not evaluator.evaluate(states, plan, structure)[0]

    def test_cascade_through_mesh(self, fattree4, engine):
        """Greatest fixed point: mutually-dependent cores die together.

        Both cores' instances are alive, but core0's requirement on core1
        fails because core1 is externally unreachable... external anchors
        only apply to core0 here, so cut core1's hosts from everything.
        """
        structure = microservice_mesh(
            2, 0, instances_per_component=1, k_per_component=1
        )
        plan = DeploymentPlan.from_mapping(
            {"core0": ["host/0/0/0"], "core1": ["host/1/0/0"]}
        )
        # Cut pod 1 (core1's pod) entirely from the fabric.
        states = _states(1, agg__1__0={0}, agg__1__1={0})
        assert not StructureEvaluator(engine).evaluate(states, plan, structure)[0]


class TestVectorisation:
    def test_multi_round_mixed_outcomes(self, fattree4, engine):
        structure = two_tier()
        plan = DeploymentPlan.from_mapping(
            {
                "frontend": ["host/0/0/0", "host/1/0/0"],
                "database": ["host/0/1/0", "host/2/0/0"],
            }
        )
        states = _states(
            4,
            host__0__0__0={1, 2},
            host__1__0__0={2},
            host__2__0__0={3},
        )
        reliable = StructureEvaluator(engine).evaluate(states, plan, structure)
        # r0 healthy; r1 one FE down; r2 both FEs down; r3 one DB down.
        assert list(reliable) == [True, True, False, True]

    def test_agrees_with_per_round_scalar(self, lossy_fattree4, rng):
        """Vectorised evaluation equals evaluating each round separately."""
        from repro.sampling.montecarlo import MonteCarloSampler

        engine = FatTreeReachabilityEngine(lossy_fattree4)
        structure = two_tier()
        plan = DeploymentPlan.from_mapping(
            {
                "frontend": ["host/0/0/0", "host/1/0/0"],
                "database": ["host/0/1/0", "host/2/1/1"],
            }
        )
        batch = MonteCarloSampler().sample(
            lossy_fattree4.failure_probabilities(), 200, rng
        )
        failed = {cid: batch.dense(cid) for cid in batch.failed_rounds}
        states = RoundStates(200, failed)
        evaluator = StructureEvaluator(engine)
        vector = evaluator.evaluate(states, plan, structure)
        for i in range(200):
            single_failed = {
                cid: np.array([v[i]]) for cid, v in failed.items() if v[i]
            }
            single = evaluator.evaluate(RoundStates(1, single_failed), plan, structure)
            assert vector[i] == single[0], i
