"""Edge-case assessments: link failures, custom topologies, degenerate K-of-N."""

import pytest

from repro.app.structure import ApplicationStructure
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.faults.component import ComponentType
from repro.faults.dependencies import DependencyModel
from repro.faults.probability import DefaultProbabilityPolicy, PaperProbabilityPolicy
from repro.routing.generic import GenericReachabilityEngine
from repro.topology.base import Topology
from repro.topology.fattree import FatTreeTopology
from repro.core.api import AssessmentConfig


class TestLinkFailures:
    def test_link_failures_lower_reliability(self):
        reliable_links = FatTreeTopology(
            4,
            probability_policy=PaperProbabilityPolicy(link_probability=0.0),
            seed=5,
        )
        lossy_links = FatTreeTopology(
            4,
            probability_policy=PaperProbabilityPolicy(link_probability=0.05),
            seed=5,
        )
        hosts = reliable_links.hosts[:3]
        score_reliable = ReliabilityAssessor(reliable_links, config=AssessmentConfig(rounds=20_000, rng=7)).assess_k_of_n(hosts, 3).score
        score_lossy = ReliabilityAssessor(lossy_links, config=AssessmentConfig(rounds=20_000, rng=7)).assess_k_of_n(hosts, 3).score
        assert score_lossy < score_reliable

    def test_host_uplink_failure_isolates_instance(self):
        topo = FatTreeTopology(
            4, probability_policy=DefaultProbabilityPolicy(0.01), seed=5
        )
        host = topo.hosts[0]
        # Make everything perfectly reliable except the host's uplink.
        overrides = {
            cid: 0.0
            for cid, component in topo.components.items()
            if component.failure_probability > 0
        }
        uplink = topo.link_between(host, topo.edge_switch_of(host))
        overrides[uplink.component_id] = 0.3
        topo.override_probabilities(overrides)
        score = ReliabilityAssessor(topo, config=AssessmentConfig(rounds=30_000, rng=8)).assess_k_of_n(
            [host], 1
        ).score
        assert score == pytest.approx(0.7, abs=0.02)


class _StarTopology(Topology):
    """A toy star: hosts -> one switch -> one border. Generic engine only."""

    def __init__(self, hosts=4, probability=0.1):
        super().__init__(
            "star", probability_policy=DefaultProbabilityPolicy(probability)
        )
        self._add_switch("hub", ComponentType.EDGE_SWITCH)
        self._add_switch("gw", ComponentType.BORDER_SWITCH)
        self._add_link("hub", "gw")
        for i in range(hosts):
            hid = f"h{i}"
            self._add_host(hid)
            self._add_link(hid, "hub")
        self._freeze()


class TestCustomTopologyThroughAssessor:
    def test_generic_engine_selected(self):
        topo = _StarTopology()
        assessor = ReliabilityAssessor(topo, config=AssessmentConfig(rounds=500, rng=1))
        assert isinstance(assessor.engine, GenericReachabilityEngine)

    def test_hub_is_the_dominant_failure(self):
        """1-of-4 on a star: the app dies only when hub/gw (or their link
        path) fails or all hosts fail; p(all 4 hosts) is negligible."""
        topo = _StarTopology(hosts=4, probability=0.1)
        assessor = ReliabilityAssessor(topo, config=AssessmentConfig(rounds=40_000, rng=2))
        score = assessor.assess_k_of_n(topo.hosts, 1).score
        # Survival ~ (1-p)^2 (hub and gw) * (1 - p^4) ~ 0.81.
        assert score == pytest.approx(0.81, abs=0.02)

    def test_k_of_n_on_star(self):
        topo = _StarTopology(hosts=4, probability=0.1)
        assessor = ReliabilityAssessor(topo, config=AssessmentConfig(rounds=40_000, rng=3))
        # 4-of-4 survival ~ (1-p)^2 * (1-p)^4 = 0.9^6 ~ 0.531.
        score = assessor.assess_k_of_n(topo.hosts, 4).score
        assert score == pytest.approx(0.9**6, abs=0.02)


class TestDegenerateSettings:
    def test_one_of_one(self, fattree4, inventory):
        assessor = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=5_000, rng=4))
        result = assessor.assess_k_of_n([fattree4.hosts[0]], 1)
        assert 0.8 < result.score < 1.0

    def test_single_round_assessment(self, fattree4, inventory):
        assessor = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=1, rng=4))
        result = assessor.assess_k_of_n(fattree4.hosts[:2], 1)
        assert result.score in (0.0, 1.0)
        assert result.estimate.rounds == 1

    def test_all_hosts_deployed(self):
        topo = FatTreeTopology(4, seed=6)
        model = DependencyModel.empty(topo)
        assessor = ReliabilityAssessor(topo, model, config=AssessmentConfig(rounds=2_000, rng=5))
        result = assessor.assess_k_of_n(topo.hosts, 1)
        assert result.score > 0.99

    def test_perfectly_reliable_everything(self):
        topo = FatTreeTopology(
            4, probability_policy=DefaultProbabilityPolicy(0.0001), seed=7
        )
        overrides = {cid: 0.0 for cid in topo.components}
        topo.override_probabilities(overrides)
        assessor = ReliabilityAssessor(topo, config=AssessmentConfig(rounds=1_000, rng=6))
        result = assessor.assess_k_of_n(topo.hosts[:3], 3)
        assert result.score == 1.0
        assert result.estimate.confidence_interval_width == 0.0
