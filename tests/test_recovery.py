"""Crash recovery and idempotent retries on the durable service.

The durability contract under test: a journaled-but-unfinished request
survives a process death and re-executes with the same ids and the same
random stream (bit-identical estimate), re-executions are disclosed via
``runtime.recovered``, and a completed idempotency key is never executed
twice — it replays the stored response, flagged ``replayed``.
"""

from __future__ import annotations

import pytest

from repro.service.journal import RequestJournal
from repro.service.requests import AssessRequest
from repro.service.scheduler import AssessmentService, ServiceConfig
from repro.util.errors import AdmissionRejected, ValidationError


def _service(fattree4, inventory, **overrides) -> AssessmentService:
    defaults = dict(
        scale="tiny", rounds=1_000, queue_capacity=8, scheduler_workers=1
    )
    defaults.update(overrides)
    return AssessmentService(
        ServiceConfig(**defaults), topology=fattree4, dependency_model=inventory
    )


def _request(fattree4, key=None, k=2, rounds=None):
    return AssessRequest(
        hosts=tuple(fattree4.hosts[:3]), k=k, rounds=rounds, idempotency_key=key
    )


class TestIdempotentRetries:
    def test_resubmit_completed_key_replays_without_reexecution(
        self, fattree4, inventory, tmp_path
    ):
        with _service(
            fattree4, inventory, journal_dir=str(tmp_path)
        ).start() as service:
            first = service.assess(_request(fattree4, key="job-1"), timeout=60.0)
            assert first.status == "ok"
            assert not first.replayed
            again = service.assess(_request(fattree4, key="job-1"), timeout=60.0)
            assert again.replayed
            assert again.request_id == first.request_id
            assert again.status == first.status
            assert again.result["estimate"] == first.result["estimate"]
            assert service.metrics.counter("service/idempotent_replays") == 1
            # The replay cost zero assessment work: only one request ran.
            assert service.metrics.counter("service/status/ok") == 1

    def test_key_reuse_with_different_payload_is_rejected(
        self, fattree4, inventory, tmp_path
    ):
        with _service(
            fattree4, inventory, journal_dir=str(tmp_path)
        ).start() as service:
            service.assess(_request(fattree4, key="job-1", k=2), timeout=60.0)
            with pytest.raises(ValidationError, match="different request payload"):
                service.submit("assess", _request(fattree4, key="job-1", k=1))

    def test_queued_resubmission_joins_the_inflight_ticket(
        self, fattree4, inventory, tmp_path
    ):
        # Not started: submissions sit in the queue, so the second submit
        # deterministically finds the first one inflight.
        service = _service(fattree4, inventory, journal_dir=str(tmp_path))
        try:
            first = service.submit("assess", _request(fattree4, key="job-1"))
            second = service.submit("assess", _request(fattree4, key="job-1"))
            assert second is first
            assert service.metrics.counter("service/idempotent_joins") == 1
            service.start()
            response = first.future.result(timeout=60.0)
            assert response.status == "ok"
        finally:
            service.close()

    def test_cancelled_key_reexecutes_on_resubmission(
        self, fattree4, inventory, tmp_path
    ):
        service = _service(fattree4, inventory, journal_dir=str(tmp_path))
        try:
            ticket = service.submit("assess", _request(fattree4, key="job-1"))
            # Cancel while still queued (workers have not started), so the
            # terminal state is deterministically "cancelled".
            assert service.cancel(ticket.id, "changed my mind")
            service.start()
            cancelled = ticket.future.result(timeout=60.0)
            assert cancelled.status == "cancelled"
            # A cancelled key stores no result: retrying means re-running.
            fresh = service.assess(_request(fattree4, key="job-1"), timeout=60.0)
            assert fresh.status == "ok"
            assert not fresh.replayed
        finally:
            service.close()

    def test_same_key_is_deterministic_even_without_a_journal(
        self, fattree4, inventory
    ):
        # The per-request seed derives from the key whether or not
        # durability is on — two honest executions agree bit-for-bit.
        with _service(fattree4, inventory).start() as service:
            a = service.assess(_request(fattree4, key="job-1"), timeout=60.0)
            b = service.assess(_request(fattree4, key="job-1"), timeout=60.0)
            assert not a.replayed and not b.replayed
            assert a.result["estimate"] == b.result["estimate"]
            assert a.request_id != b.request_id  # two real executions


class TestCrashRecovery:
    def test_crash_replay_is_flagged_and_bit_identical(
        self, fattree4, inventory, tmp_path
    ):
        # Reference: a journal-free service answers the same keyed request.
        with _service(fattree4, inventory).start() as reference_service:
            reference = reference_service.assess(
                _request(fattree4, key="job-1"), timeout=60.0
            )
        journal_dir = tmp_path / "journal"

        # Crash: the request is journaled and queued, but the process dies
        # (simulated by never starting workers) before it executes.
        crashed = _service(fattree4, inventory, journal_dir=str(journal_dir))
        victim = crashed.submit("assess", _request(fattree4, key="job-1"))
        crashed.close()
        state = RequestJournal.scan(journal_dir)
        assert [p.request_id for p in state.pending] == [victim.id]

        # Restart on the same journal: the request replays to completion.
        with _service(
            fattree4, inventory, journal_dir=str(journal_dir)
        ).start() as revived:
            response = revived.assess(
                _request(fattree4, key="job-1"), timeout=60.0
            )
            assert response.request_id == victim.id  # original id kept
            assert response.result["runtime"]["recovered"] is True
            assert response.result["estimate"] == reference.result["estimate"]
            assert revived.metrics.counter("service/recovered") == 1
        # After completion the journal holds no pending work.
        assert RequestJournal.scan(journal_dir).pending == []

    def test_recovered_keyless_request_keeps_its_id_and_new_ids_advance(
        self, fattree4, inventory, tmp_path
    ):
        crashed = _service(fattree4, inventory, journal_dir=str(tmp_path))
        victim = crashed.submit("assess", _request(fattree4))
        crashed.close()
        with _service(
            fattree4, inventory, journal_dir=str(tmp_path)
        ).start() as revived:
            fresh = revived.submit("assess", _request(fattree4))
            assert fresh.id != victim.id
            assert int(fresh.id.split("-")[1]) > int(victim.id.split("-")[1])
            fresh_response = fresh.future.result(timeout=60.0)
            assert fresh_response.status == "ok"
            assert not fresh_response.result["runtime"]["recovered"]

    def test_shed_after_journaling_leaves_nothing_to_replay(
        self, fattree4, inventory, tmp_path
    ):
        service = _service(
            fattree4, inventory, journal_dir=str(tmp_path), queue_capacity=1
        )
        try:
            service.submit("assess", _request(fattree4, key="kept"))
            with pytest.raises(AdmissionRejected):
                service.submit("assess", _request(fattree4, key="shed"))
        finally:
            service.close()
        state = RequestJournal.scan(tmp_path)
        # Only the admitted request is pending; the shed one is terminal.
        assert [p.idempotency_key for p in state.pending] == ["kept"]

    def test_journaled_request_for_vanished_hosts_is_dropped_loudly(
        self, fattree4, inventory, tmp_path
    ):
        with RequestJournal(tmp_path) as journal:
            journal.accepted(
                "req-7", "assess", {"hosts": ["no-such-host"], "k": 1}
            )
        with _service(
            fattree4, inventory, journal_dir=str(tmp_path)
        ).start() as revived:
            assert revived.metrics.counter("service/recovered") == 0
        assert "req-7" in RequestJournal.scan(tmp_path).terminal_ids
