"""Unit tests for CVSS-based software failure estimation (repro.faults.cvss)."""

import pytest

from repro.faults.cvss import (
    SyntheticVulnerabilityDatabase,
    Vulnerability,
    rank_packages_by_risk,
    software_failure_probability,
    vulnerability_trigger_probability,
)
from repro.util.errors import ConfigurationError


class TestVulnerability:
    def test_severity_bands(self):
        assert Vulnerability("x", 0.0).severity == "none"
        assert Vulnerability("x", 2.0).severity == "low"
        assert Vulnerability("x", 5.0).severity == "medium"
        assert Vulnerability("x", 8.0).severity == "high"
        assert Vulnerability("x", 9.8).severity == "critical"

    def test_rejects_out_of_range_scores(self):
        with pytest.raises(ConfigurationError):
            Vulnerability("x", -1.0)
        with pytest.raises(ConfigurationError):
            Vulnerability("x", 10.5)


class TestTriggerProbability:
    def test_grows_with_score(self):
        low = vulnerability_trigger_probability(Vulnerability("a", 2.0))
        high = vulnerability_trigger_probability(Vulnerability("b", 9.0))
        assert high > low

    def test_superlinear(self):
        p5 = vulnerability_trigger_probability(Vulnerability("a", 5.0))
        p10 = vulnerability_trigger_probability(Vulnerability("b", 10.0))
        assert p10 == pytest.approx(4 * p5)

    def test_critical_equals_scale(self):
        assert vulnerability_trigger_probability(
            Vulnerability("a", 10.0), scale=0.01
        ) == pytest.approx(0.01)

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            vulnerability_trigger_probability(Vulnerability("a", 5.0), scale=0.0)


class TestSoftwareFailureProbability:
    def test_no_vulnerabilities_never_fails(self):
        assert software_failure_probability([]) == 0.0

    def test_single_vulnerability(self):
        v = Vulnerability("a", 10.0)
        assert software_failure_probability([v], scale=0.01) == pytest.approx(0.01)

    def test_independence_composition(self):
        vulns = [Vulnerability("a", 10.0), Vulnerability("b", 10.0)]
        p = software_failure_probability(vulns, scale=0.1)
        assert p == pytest.approx(1 - 0.9 * 0.9)

    def test_monotone_in_vulnerability_count(self):
        vulns = [Vulnerability(f"v{i}", 7.0) for i in range(5)]
        probs = [software_failure_probability(vulns[:n]) for n in range(6)]
        assert probs == sorted(probs)


class TestSyntheticDatabase:
    def test_deterministic_given_seed(self, rng):
        import numpy as np

        db = SyntheticVulnerabilityDatabase()
        a = db.vulnerabilities_for("pkg", np.random.default_rng(1))
        b = db.vulnerabilities_for("pkg", np.random.default_rng(1))
        assert [(v.identifier, v.base_score) for v in a] == [
            (v.identifier, v.base_score) for v in b
        ]

    def test_scores_in_range(self, rng):
        db = SyntheticVulnerabilityDatabase(mean_vulnerabilities=10)
        for v in db.vulnerabilities_for("pkg", rng):
            assert 0.0 <= v.base_score <= 10.0

    def test_failure_probability_in_range(self, rng):
        db = SyntheticVulnerabilityDatabase()
        for i in range(20):
            p = db.failure_probability_for(f"pkg{i}", rng)
            assert 0.0 <= p < 1.0


class TestRanking:
    def test_ranks_worst_first(self):
        packages = [
            ("safe", [Vulnerability("a", 1.0)]),
            ("risky", [Vulnerability("b", 9.9), Vulnerability("c", 9.9)]),
            ("mid", [Vulnerability("d", 6.0)]),
        ]
        ranked = rank_packages_by_risk(packages)
        assert [name for name, _ in ranked] == ["risky", "mid", "safe"]

    def test_scores_attached(self):
        ranked = rank_packages_by_risk([("only", [Vulnerability("a", 10.0)])], scale=0.5)
        assert ranked[0][1] == pytest.approx(0.5)
