"""Tests for CI-targeted adaptive assessment (ReliabilityAssessor.assess_to_ci)."""

import pytest

from repro.app.structure import ApplicationStructure
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.util.errors import ConfigurationError
from repro.core.api import AssessmentConfig


@pytest.fixture
def plan(fattree4):
    return DeploymentPlan.random(fattree4, ApplicationStructure.k_of_n(2, 3), rng=4)


@pytest.fixture
def structure():
    return ApplicationStructure.k_of_n(2, 3)


class TestAssessToCi:
    def test_reaches_target(self, fattree4, inventory, plan, structure):
        assessor = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rng=5))
        result = assessor.assess_to_ci(
            plan, structure, target_ci_width=5e-3, pilot_rounds=1_000
        )
        assert result.estimate.confidence_interval_width <= 5e-3
        assert result.estimate.rounds >= 1_000
        assert result.per_round.shape[0] == result.estimate.rounds

    def test_loose_target_stops_at_pilot(self, fattree4, inventory, plan, structure):
        assessor = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rng=5))
        result = assessor.assess_to_ci(
            plan, structure, target_ci_width=0.5, pilot_rounds=1_000
        )
        assert result.estimate.rounds == 1_000

    def test_tighter_target_needs_more_rounds(
        self, fattree4, inventory, plan, structure
    ):
        assessor = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rng=5))
        loose = assessor.assess_to_ci(
            plan, structure, target_ci_width=2e-2, pilot_rounds=1_000
        )
        tight = assessor.assess_to_ci(
            plan, structure, target_ci_width=4e-3, pilot_rounds=1_000
        )
        assert tight.estimate.rounds > loose.estimate.rounds

    def test_max_rounds_cap_respected(self, fattree4, inventory, plan, structure):
        assessor = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rng=5))
        result = assessor.assess_to_ci(
            plan,
            structure,
            target_ci_width=1e-6,  # unreachable
            pilot_rounds=1_000,
            max_rounds=5_000,
        )
        assert result.estimate.rounds <= 5_000

    def test_score_consistent_with_plain_assessment(
        self, fattree4, inventory, plan, structure
    ):
        adaptive = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rng=5)).assess_to_ci(
            plan, structure, target_ci_width=4e-3
        )
        plain = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=40_000, rng=6)).assess(
            plan, structure
        )
        assert adaptive.score == pytest.approx(plain.score, abs=0.01)

    def test_rejects_bad_target(self, fattree4, inventory, plan, structure):
        assessor = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rng=5))
        with pytest.raises(ConfigurationError):
            assessor.assess_to_ci(plan, structure, target_ci_width=0.0)
