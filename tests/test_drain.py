"""SIGTERM graceful drain on a real ``repro serve`` subprocess.

The shutdown contract: SIGTERM stops admission, lets the in-flight
request finish (or cancels it into an anytime result at its deadline),
answers queued requests with a typed drain rejection, journals every
outcome so a restart replays nothing the clients already saw, and
exits 0.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

from repro.service.client import HttpServiceClient
from repro.service.journal import RequestJournal

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
HOSTS = ["host/0/0/0", "host/1/0/0", "host/2/0/0"]


def _start_server(journal_dir: str) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--scale", "tiny",
            "--port", "0",
            "--queue-capacity", "4",
            "--scheduler-workers", "1",
            "--drain-timeout", "120",
            "--journal-dir", journal_dir,
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = process.stdout.readline().strip()
    assert "listening on http://" in line, f"no address announced: {line!r}"
    return process, line.split("listening on ", 1)[1]


def _wait_ready(client: HttpServiceClient) -> None:
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            if client.readyz().get("ready"):
                return
        except Exception:
            pass
        time.sleep(0.1)
    raise AssertionError("server never became ready")


def test_sigterm_finishes_inflight_rejects_queued_and_exits_clean(tmp_path):
    journal_dir = str(tmp_path / "journal")
    process, base_url = _start_server(journal_dir)
    replies: dict[str, dict] = {}
    try:
        client = HttpServiceClient(base_url, timeout=120.0, max_attempts=1)
        _wait_ready(client)

        # One slow in-flight request (rounds sized to run for seconds on
        # the vectorised sampler) and one queued behind it.
        def run(name: str, **request) -> threading.Thread:
            thread = threading.Thread(
                target=lambda: replies.__setitem__(
                    name, client.assess(HOSTS, k=2, **request)
                ),
                daemon=True,
            )
            thread.start()
            return thread

        inflight = run(
            "inflight", rounds=40_000_000, idempotency_key="drain-inflight"
        )
        # Gate on the journal, not on sleeps: SIGTERM goes out only once
        # the slow request has durably *started* and the queued one is
        # durably *accepted* — so their fates are not racy.
        queued = None
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            state = RequestJournal.scan(journal_dir)
            started = {p.idempotency_key for p in state.pending if p.started}
            accepted = {p.idempotency_key for p in state.pending}
            if queued is None and "drain-inflight" in started:
                queued = run(
                    "queued", rounds=2_000, idempotency_key="drain-queued"
                )
            if "drain-inflight" in started and "drain-queued" in accepted:
                break
            time.sleep(0.05)
        else:
            raise AssertionError(f"journal never showed both requests: {state}")

        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=150.0) == 0  # clean drain exit
        inflight.join(timeout=30.0)
        queued.join(timeout=30.0)

        # In-flight finished honestly: complete, or anytime-degraded at
        # its deadline — never dropped.
        assert replies["inflight"]["status"] in ("ok", "degraded")
        # Queued was answered with the typed drain rejection, unstarted.
        assert replies["queued"]["status"] == "rejected"
        assert replies["queued"]["error"]["reason"] == "draining"

        # The journal agrees with what the clients saw: nothing pending,
        # so a restart on this directory re-executes nothing.
        state = RequestJournal.scan(journal_dir)
        assert state.pending == []
        # The finished request is replayable; the rejected one is not.
        assert "drain-inflight" in state.keys
        assert "drain-queued" not in state.keys
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)
        if process.stdout is not None:
            process.stdout.close()
