"""Tests for the batch-first annealing loop (repro.core.search, batch_size).

The acceptance bar of the redesign: with ``batch_size=1`` the batched
loop must retrace the pre-batch implementation *bit-for-bit* (verified
against a draw-for-draw reference reconstruction of the old loop), B>1
runs must be deterministic for a fixed seed, and the new
``SearchState`` fields must survive checkpoint/resume — including
checkpoints written before the fields existed.
"""

import pytest

from repro import serialization
from repro.app.structure import ApplicationStructure
from repro.core.anneal import (
    LinearTemperatureSchedule,
    MoveBudgetTemperatureSchedule,
    accept_neighbor,
)
from repro.core.api import AssessmentConfig
from repro.core.assessment import ReliabilityAssessor
from repro.core.incremental import IncrementalAssessor
from repro.core.objectives import ReliabilityObjective
from repro.core.plan import DeploymentPlan
from repro.core.search import DeploymentSearch, SearchSpec, SearchState
from repro.core.transforms import SymmetryChecker
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng
from repro.util.timing import Deadline

STRUCTURE = ApplicationStructure.k_of_n(2, 3)


class FakeClock:
    """Monotonic clock advancing ``step`` seconds per reading."""

    def __init__(self, step=0.01):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def _config(rounds=800):
    return AssessmentConfig(rounds=rounds, rng=5)


def _search(fattree4, inventory, **kwargs):
    kwargs.setdefault("rng", 42)
    kwargs.setdefault("clock", FakeClock())
    kwargs.setdefault("keep_trace", True)
    assessor = ReliabilityAssessor(fattree4, inventory, config=_config())
    return DeploymentSearch(assessor, **kwargs)


def _trace_key(records):
    return [
        (
            r.iteration, r.elapsed_seconds, r.temperature, r.candidate_score,
            r.current_score, r.best_score, r.accepted, r.skipped_symmetric,
        )
        for r in records
    ]


def _reference_search(fattree4, inventory, spec):
    """The pre-batch loop, reconstructed draw-for-draw.

    One ``random_neighbor`` per iteration, the uncached symmetry screen,
    one assessment per survivor, independent best confirmations — the
    exact RNG and clock discipline ``DeploymentSearch._run`` had before
    the batch-first rewrite. Seeds and clock match ``_search``'s
    defaults, so its trajectory is what ``batch_size=1`` must reproduce.
    """
    outer = ReliabilityAssessor(fattree4, inventory, config=_config())
    objective = ReliabilityObjective()
    symmetry = SymmetryChecker(fattree4, outer.dependency_model)
    rng = make_rng(42)
    clock = FakeClock()
    deadline = Deadline(spec.max_seconds, clock=clock)
    schedule = LinearTemperatureSchedule(spec.max_seconds)
    crn_master_seed = int(rng.integers(0, 2**63))
    inner = IncrementalAssessor.from_config(
        fattree4,
        outer.dependency_model,
        AssessmentConfig(
            rounds=outer.rounds, master_seed=crn_master_seed, mode="incremental"
        ),
    )

    current_plan = DeploymentPlan.random(fattree4, spec.structure, rng=rng)
    current = inner.assess(current_plan, spec.structure)
    best_plan, best = current_plan, outer.assess(current_plan, spec.structure)
    iterations = 0
    trace = []

    def satisfied(assessment):
        return assessment.score >= spec.desired_reliability

    while True:
        elapsed = deadline.elapsed()
        if elapsed >= deadline.budget_seconds:
            break
        if spec.max_iterations is not None and iterations >= spec.max_iterations:
            break
        iterations += 1
        temperature = schedule.temperature(elapsed, iterations - 1)
        neighbor_plan = current_plan.random_neighbor(fattree4, rng=rng)
        if symmetry.equivalent(current_plan, neighbor_plan):
            trace.append((
                iterations, elapsed, temperature,
                current.score, current.score, best.score, False, True,
            ))
            continue
        neighbor = inner.assess(neighbor_plan, spec.structure)
        if objective.prefers(neighbor_plan, neighbor, best_plan, best):
            confirmation = outer.assess(neighbor_plan, spec.structure)
            if objective.prefers(neighbor_plan, confirmation, best_plan, best):
                best_plan, best = neighbor_plan, confirmation
        delta = objective.delta(current_plan, current, neighbor_plan, neighbor)
        accepted = accept_neighbor(delta, temperature, rng)
        trace.append((
            iterations, elapsed, temperature,
            neighbor.score, current.score, best.score, accepted, False,
        ))
        satisfied_candidate = satisfied(neighbor)
        if accepted:
            current_plan, current = neighbor_plan, neighbor
        if satisfied_candidate:
            verified = outer.assess(neighbor_plan, spec.structure)
            if satisfied(verified):
                best_plan, best = neighbor_plan, verified
                break
    return {"trace": trace, "best_plan": best_plan, "best_score": best.score}


class TestBatchSizeOneBitIdentity:
    def test_matches_pre_batch_reference_loop(self, fattree4, inventory):
        """batch_size=1 retraces the pre-batch loop record-for-record:
        same temperatures, candidate scores, acceptance draws and best
        plan (the spec keeps scores away from R_desired so the
        satisfaction path cannot short-circuit either loop)."""
        spec = SearchSpec(STRUCTURE, max_seconds=50.0, max_iterations=25)
        reference = _reference_search(fattree4, inventory, spec)
        result = _search(fattree4, inventory, batch_size=1).search(spec)
        assert _trace_key(result.trace) == reference["trace"]
        assert result.best_plan == reference["best_plan"]
        assert result.best_assessment.score == reference["best_score"]

    def test_batch_counters_degenerate_at_one(self, fattree4, inventory):
        spec = SearchSpec(STRUCTURE, max_seconds=50.0, max_iterations=15)
        result = _search(fattree4, inventory, batch_size=1).search(spec)
        assert result.candidates_proposed == result.iterations == 15
        assert result.batches_scored <= result.iterations


class TestBatchedDeterminism:
    def test_fixed_seed_reproduces_trajectory(self, fattree4, inventory):
        spec = SearchSpec(STRUCTURE, max_seconds=50.0, max_iterations=15)
        a = _search(fattree4, inventory, batch_size=3).search(spec)
        b = _search(fattree4, inventory, batch_size=3).search(spec)
        assert _trace_key(a.trace) == _trace_key(b.trace)
        assert a.best_plan == b.best_plan
        assert a.best_assessment.score == b.best_assessment.score
        assert a.candidates_proposed == b.candidates_proposed
        assert a.batches_scored == b.batches_scored

    def test_exactly_b_proposals_per_step(self, fattree4, inventory):
        spec = SearchSpec(STRUCTURE, max_seconds=50.0, max_iterations=12)
        result = _search(fattree4, inventory, batch_size=4).search(spec)
        assert result.candidates_proposed == 4 * result.iterations
        assert result.batches_scored <= result.iterations
        # processed in proposal order, first accepted wins: at most one
        # accepted record per iteration, and nothing after it.
        by_iteration = {}
        for record in result.trace:
            by_iteration.setdefault(record.iteration, []).append(record)
        for records in by_iteration.values():
            accepted = [i for i, r in enumerate(records) if r.accepted]
            assert len(accepted) <= 1
            if accepted:
                assert accepted[0] == len(records) - 1

    def test_rejects_nonpositive_batch_size(self, fattree4, inventory):
        with pytest.raises(ConfigurationError):
            _search(fattree4, inventory, batch_size=0)


class TestBatchedCheckpointResume:
    def test_resume_follows_checkpointed_batch_size(
        self, fattree4, inventory, tmp_path
    ):
        """A B=3 search interrupted mid-anneal resumes bit-identically —
        even though the resuming DeploymentSearch was built with the
        default batch_size, the checkpoint's recorded batch size drives
        the resumed loop."""
        spec_full = SearchSpec(STRUCTURE, max_seconds=50.0, max_iterations=18)
        full = _search(
            fattree4, inventory, batch_size=3,
            checkpoint_path=str(tmp_path / "full.json"), checkpoint_every=4,
        ).search(spec_full)

        ckpt = str(tmp_path / "part.json")
        _search(
            fattree4, inventory, batch_size=3,
            checkpoint_path=ckpt, checkpoint_every=4,
        ).search(SearchSpec(STRUCTURE, max_seconds=50.0, max_iterations=8))
        resumed = _search(
            fattree4, inventory, checkpoint_path=ckpt, checkpoint_every=4
        ).resume(ckpt, max_iterations=18)

        # Resume replays the checkpointed elapsed offset, so elapsed (and
        # temperatures derived from it) can differ in the last float bit;
        # everything randomness-driven must match exactly.
        resume_key = lambda records: [
            (
                r.iteration, round(r.temperature, 9), r.candidate_score,
                r.current_score, r.best_score, r.accepted, r.skipped_symmetric,
            )
            for r in records
        ]
        assert resume_key(resumed.trace) == resume_key(full.trace)
        assert resumed.best_plan == full.best_plan
        assert resumed.candidates_proposed == full.candidates_proposed
        assert resumed.batches_scored == full.batches_scored

    def test_checkpoint_round_trips_batch_fields(
        self, fattree4, inventory, tmp_path
    ):
        ckpt = str(tmp_path / "state.json")
        _search(
            fattree4, inventory, batch_size=3,
            checkpoint_path=ckpt, checkpoint_every=2,
        ).search(SearchSpec(STRUCTURE, max_seconds=50.0, max_iterations=6))
        document = serialization.load(ckpt)
        assert document["batch_size"] == 3
        assert document["candidates_proposed"] == 18
        state = SearchState.from_dict(document)
        assert state.batch_size == 3
        assert state.candidates_proposed == 18
        assert state.batches_scored == document["batches_scored"]
        assert state.to_dict() == document

    def test_pre_batch_checkpoint_defaults(self, fattree4, inventory, tmp_path):
        """Checkpoints written before the batch fields existed load with
        the classic one-neighbour semantics."""
        ckpt = str(tmp_path / "state.json")
        _search(
            fattree4, inventory, checkpoint_path=ckpt, checkpoint_every=2
        ).search(SearchSpec(STRUCTURE, max_seconds=50.0, max_iterations=4))
        document = serialization.load(ckpt)
        for legacy_missing in ("batch_size", "candidates_proposed", "batches_scored"):
            document.pop(legacy_missing)
        state = SearchState.from_dict(document)
        assert state.batch_size == 1
        assert state.candidates_proposed == 0
        assert state.batches_scored == 0


class TestMoveBudgetScheduleInSearch:
    def test_trajectory_is_clock_speed_independent(self, fattree4, inventory):
        """Under the move-budget schedule the acceptance rule never sees
        the wall clock, so fast and slow hosts trace the same walk."""
        spec = SearchSpec(STRUCTURE, max_seconds=10_000.0, max_iterations=15)

        def run(step):
            return _search(
                fattree4, inventory,
                clock=FakeClock(step),
                temperature_schedule=MoveBudgetTemperatureSchedule(15),
            ).search(spec)

        fast, slow = run(0.001), run(7.0)
        key = lambda result: [
            (r.iteration, r.temperature, r.candidate_score, r.accepted)
            for r in result.trace
        ]
        assert key(fast) == key(slow)
        assert fast.best_plan == slow.best_plan
        assert fast.best_assessment.score == slow.best_assessment.score

    def test_temperature_follows_move_budget(self, fattree4, inventory):
        result = _search(
            fattree4, inventory,
            temperature_schedule=MoveBudgetTemperatureSchedule(5),
        ).search(SearchSpec(STRUCTURE, max_seconds=10_000.0, max_iterations=5))
        by_iteration = {r.iteration: r.temperature for r in result.trace}
        for iteration, temperature in by_iteration.items():
            assert temperature == pytest.approx(1.0 - (iteration - 1) / 5)
