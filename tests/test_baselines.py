"""Tests for baseline planners (repro.baselines)."""

import pytest

from repro.app.structure import ApplicationStructure
from repro.baselines.common_practice import (
    common_practice_plan,
    enhanced_common_practice_plan,
    power_diversity,
    spread_plan_across_pods,
    top_plans,
)
from repro.baselines.indaas import IndaasComparator
from repro.baselines.random_placement import best_of_random, random_plan
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.util.errors import ConfigurationError, UnsatisfiableRequirements
from repro.workload.model import HostWorkloadModel
from repro.core.api import AssessmentConfig


@pytest.fixture
def workload(fattree4):
    return HostWorkloadModel.paper_default(fattree4, seed=9)


class TestCommonPractice:
    def test_hosts_in_distinct_racks(self, fattree4, workload):
        plan = common_practice_plan(fattree4, workload, 4)
        racks = [fattree4.rack_of(h) for h in plan.hosts()]
        assert len(set(racks)) == 4

    def test_selects_least_loaded(self, fattree4, workload):
        plan = common_practice_plan(fattree4, workload, 3)
        chosen = plan.hosts()
        # Every chosen host is the least-loaded of its rack (among
        # lighter-ranked hosts, the rack constraint is the only filter).
        for host in chosen:
            rack_hosts = fattree4.hosts_in_rack(fattree4.rack_of(host))
            lighter = [
                h
                for h in rack_hosts
                if workload.workload_of(h) < workload.workload_of(host)
            ]
            assert not lighter

    def test_too_many_instances(self, fattree4, workload):
        with pytest.raises(UnsatisfiableRequirements):
            common_practice_plan(fattree4, workload, 7)  # only 6 racks

    def test_exclusion_for_top_plans(self, fattree4, workload):
        plans = top_plans(fattree4, workload, instances=2, count=3)
        assert len(plans) == 3
        used = [h for p in plans for h in p.hosts()]
        assert len(set(used)) == len(used)  # non-repeating hosts

    def test_spread_across_pods(self, fattree4, workload):
        plan = spread_plan_across_pods(fattree4, workload, 3)
        pods = [fattree4.pod_of(h) for h in plan.hosts()]
        assert len(set(pods)) == 3


class TestEnhancedCommonPractice:
    def test_maximises_power_diversity(self, fattree4, workload, inventory):
        enhanced = enhanced_common_practice_plan(
            fattree4, workload, inventory, instances=3, candidate_plans=4
        )
        candidates = top_plans(fattree4, workload, instances=3, count=4)
        best_diversity = max(power_diversity(inventory, p) for p in candidates)
        assert power_diversity(inventory, enhanced) == best_diversity

    def test_power_diversity_counts_distinct_supplies(self, fattree4, inventory):
        # Two hosts in the same rack share one supply.
        same_rack = DeploymentPlan.single_component(
            fattree4.hosts_in_rack("edge/0/0")[:2], "app"
        )
        assert power_diversity(inventory, same_rack) == 1


class TestRandomBaselines:
    def test_random_plan_valid(self, fattree4):
        structure = ApplicationStructure.k_of_n(2, 4)
        plan = random_plan(fattree4, structure, rng=1)
        plan.validate_against(fattree4, structure)

    def test_best_of_random_not_worse_than_single(self, fattree4, inventory):
        structure = ApplicationStructure.k_of_n(3, 4)
        assessor = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=2_000, rng=3))
        _plan1, single = best_of_random(assessor, structure, candidates=1, rng=7)
        assessor2 = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=2_000, rng=3))
        _plan5, best5 = best_of_random(assessor2, structure, candidates=5, rng=7)
        assert best5 >= single - 1e-9

    def test_best_of_random_rejects_zero(self, assessor):
        with pytest.raises(ConfigurationError):
            best_of_random(assessor, ApplicationStructure.k_of_n(1, 2), candidates=0)


class TestIndaas:
    def test_ranking_orders_by_score(self, fattree4, inventory):
        comparator = IndaasComparator(fattree4, inventory, rounds=2_000, rng=5)
        plans = [
            DeploymentPlan.single_component(fattree4.hosts[i : i + 3], "app")
            for i in (0, 3, 6)
        ]
        ranked = comparator.rank_plans(plans, k=2)
        assert [r.rank for r in ranked] == [1, 2, 3]
        scores = [r.relative_score for r in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_select_most_independent(self, fattree4, inventory):
        comparator = IndaasComparator(fattree4, inventory, rounds=20_000, rng=5)
        # Same rack (correlated: one edge-switch failure kills both) vs
        # spread across pods. With 1-of-2 redundancy the spread plan
        # survives any single rack-level failure and must rank first.
        correlated = DeploymentPlan.single_component(
            ["host/0/0/0", "host/0/0/1"], "app"
        )
        spread = DeploymentPlan.single_component(
            ["host/0/0/0", "host/1/0/0"], "app"
        )
        chosen = comparator.select_most_independent([correlated, spread], k=1)
        assert chosen == spread

    def test_rejects_empty_candidates(self, fattree4, inventory):
        comparator = IndaasComparator(fattree4, inventory, rounds=100, rng=1)
        with pytest.raises(ConfigurationError):
            comparator.rank_plans([], k=1)

    def test_rejects_mixed_sizes(self, fattree4, inventory):
        comparator = IndaasComparator(fattree4, inventory, rounds=100, rng=1)
        plans = [
            DeploymentPlan.single_component(fattree4.hosts[:2], "app"),
            DeploymentPlan.single_component(fattree4.hosts[:3], "app"),
        ]
        with pytest.raises(ConfigurationError):
            comparator.rank_plans(plans, k=1)
