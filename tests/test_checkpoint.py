"""Checkpoint/resume tests for the search (repro.core.search + serialization).

The acceptance bar: a search interrupted mid-anneal and resumed from its
checkpoint must reach the same best plan and score as an equivalent
uninterrupted run with the same seed — not merely a good plan, the same
trajectory.
"""

import json
import os

import pytest

from repro import serialization
from repro.app.structure import ApplicationStructure
from repro.core.assessment import ReliabilityAssessor
from repro.core.search import DeploymentSearch, SearchSpec, SearchState
from repro.util.errors import ConfigurationError
from repro.core.api import AssessmentConfig


class FakeClock:
    """Monotonic clock advancing ``step`` seconds per reading."""

    def __init__(self, step=0.01):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


STRUCTURE = ApplicationStructure.k_of_n(2, 3)


def _make_search(fattree4, inventory, ckpt=None, **kwargs):
    assessor = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=800, rng=5))
    kwargs.setdefault("rng", 42)
    kwargs.setdefault("clock", FakeClock())
    kwargs.setdefault("keep_trace", True)
    kwargs.setdefault("checkpoint_every", 4)
    return DeploymentSearch(assessor, checkpoint_path=ckpt, **kwargs)


def _trace_key(records):
    return [
        (r.iteration, r.candidate_score, r.accepted, round(r.temperature, 9))
        for r in records
    ]


class TestResumeEquivalence:
    def test_resume_matches_uninterrupted_run(self, fattree4, inventory, tmp_path):
        """Interrupt at 12 of 30 iterations, resume, and compare against
        the same search run straight through: identical best plan, score,
        and full acceptance trace (temperatures included)."""
        spec_full = SearchSpec(STRUCTURE, max_seconds=50.0, max_iterations=30)
        full = _make_search(
            fattree4, inventory, str(tmp_path / "full.json")
        ).search(spec_full)

        ckpt = str(tmp_path / "part.json")
        _make_search(fattree4, inventory, ckpt).search(
            SearchSpec(STRUCTURE, max_seconds=50.0, max_iterations=12)
        )
        resumed = _make_search(fattree4, inventory, ckpt).resume(
            ckpt, max_iterations=30
        )

        assert resumed.best_plan == full.best_plan
        assert resumed.best_score == full.best_score
        assert resumed.iterations == full.iterations == 30
        assert resumed.plans_assessed == full.plans_assessed
        assert _trace_key(resumed.trace) == _trace_key(full.trace)

    def test_checkpointing_does_not_perturb_search(
        self, fattree4, inventory, tmp_path
    ):
        """Checkpoint writes read no clock and draw no randomness: a
        checkpointing run is bit-identical to a plain one."""
        spec = SearchSpec(STRUCTURE, max_seconds=50.0, max_iterations=20)
        plain = _make_search(fattree4, inventory).search(spec)
        checkpointed = _make_search(
            fattree4, inventory, str(tmp_path / "ck.json")
        ).search(spec)
        assert plain.best_plan == checkpointed.best_plan
        assert plain.best_score == checkpointed.best_score
        assert _trace_key(plain.trace) == _trace_key(checkpointed.trace)

    def test_budget_expiry_then_extended_resume(
        self, fattree4, inventory, tmp_path
    ):
        """A search that ran out of budget resumes with an extended one
        and keeps annealing — elapsed time carries over."""
        ckpt = str(tmp_path / "ck.json")
        first = _make_search(fattree4, inventory, ckpt).search(
            SearchSpec(STRUCTURE, max_seconds=1.0)
        )
        assert first.elapsed_seconds >= 1.0
        resumed = _make_search(fattree4, inventory, ckpt).resume(
            ckpt, max_seconds=2.0
        )
        assert resumed.iterations > first.iterations
        assert resumed.elapsed_seconds >= 2.0
        assert resumed.best_score >= first.best_score - 1e-12

    def test_should_stop_preempts_and_checkpoints(
        self, fattree4, inventory, tmp_path
    ):
        """should_stop (the SIGTERM hook) halts the loop and forces a
        final checkpoint even off the periodic cadence."""
        ckpt = str(tmp_path / "ck.json")
        calls = {"n": 0}

        def stop_after_eight():
            calls["n"] += 1
            return calls["n"] > 8

        result = _make_search(
            fattree4, inventory, ckpt, should_stop=stop_after_eight
        ).search(SearchSpec(STRUCTURE, max_seconds=50.0, max_iterations=100))
        assert result.iterations == 8
        assert os.path.exists(ckpt)
        state = serialization.search_state_from_dict(serialization.load(ckpt))
        assert state.iterations == 8

        resumed = _make_search(fattree4, inventory, ckpt).resume(
            ckpt, max_iterations=20
        )
        assert resumed.iterations == 20


class TestCheckpointSerialization:
    def _checkpoint(self, fattree4, inventory, tmp_path):
        ckpt = str(tmp_path / "ck.json")
        _make_search(fattree4, inventory, ckpt).search(
            SearchSpec(STRUCTURE, max_seconds=50.0, max_iterations=10)
        )
        return ckpt

    def test_round_trip(self, fattree4, inventory, tmp_path):
        ckpt = self._checkpoint(fattree4, inventory, tmp_path)
        document = serialization.load(ckpt)
        assert document["format"] == "search-checkpoint"
        state = serialization.search_state_from_dict(document)
        assert isinstance(state, SearchState)
        assert state.iterations == 10
        assert state.search_rng_state is not None
        assert state.assessor_rng_state is not None
        again = serialization.search_state_to_dict(state)
        assert again["iterations"] == document["iterations"]
        assert again["search_rng_state"] == document["search_rng_state"]

    def test_checkpoint_is_plain_json(self, fattree4, inventory, tmp_path):
        ckpt = self._checkpoint(fattree4, inventory, tmp_path)
        with open(ckpt) as handle:
            document = json.load(handle)  # no custom decoder needed
        assert document["spec"]["structure"]["components"]
        assert document["best_assessment"]["estimate"]["rounds"] > 0

    def test_rejects_wrong_format(self, tmp_path):
        with pytest.raises(ConfigurationError):
            serialization.search_state_from_dict({"format": "nonsense"})

    def test_resume_rejects_checkpoint_without_rng(
        self, fattree4, inventory, tmp_path
    ):
        ckpt = self._checkpoint(fattree4, inventory, tmp_path)
        document = serialization.load(ckpt)
        document["search_rng_state"] = None
        with pytest.raises(ConfigurationError):
            _make_search(fattree4, inventory).resume(document)

    def test_resume_accepts_path_dict_and_state(
        self, fattree4, inventory, tmp_path
    ):
        ckpt = self._checkpoint(fattree4, inventory, tmp_path)
        document = serialization.load(ckpt)
        state = serialization.search_state_from_dict(document)
        results = [
            _make_search(fattree4, inventory).resume(source, max_iterations=12)
            for source in (ckpt, document, state)
        ]
        assert len({r.best_score for r in results}) == 1
        assert len({str(r.best_plan) for r in results}) == 1

    def test_checkpoint_every_validated(self, fattree4, inventory):
        with pytest.raises(ConfigurationError):
            _make_search(fattree4, inventory, "x.json", checkpoint_every=0)
