"""Fleet capacity planner: the service assessed with its own machinery."""

from __future__ import annotations

import math

import pytest

from repro.service.capacity import (
    assess_fleet,
    fleet_fault_tree,
    plan_capacity,
    worker_unavailability,
)
from repro.util.errors import ConfigurationError


def binomial_availability(n: int, k: int, p: float) -> float:
    """Closed form: P(at least k of n independent workers alive)."""
    return sum(
        math.comb(n, alive) * (1 - p) ** alive * p ** (n - alive)
        for alive in range(k, n + 1)
    )


class TestWorkerUnavailability:
    def test_rate_times_window(self):
        # 6 crashes/hour x 10s failover = 60s downtime per hour.
        assert worker_unavailability(6.0, 10.0) == pytest.approx(60 / 3600)

    def test_clamped_to_one(self):
        assert worker_unavailability(3600.0, 36_000.0) == 1.0

    def test_zero_crash_rate_is_always_up(self):
        assert worker_unavailability(0.0, 30.0) == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            worker_unavailability(-1.0, 5.0)
        with pytest.raises(ConfigurationError):
            worker_unavailability(1.0, -5.0)


class TestFleetFaultTree:
    def test_tree_fails_when_too_few_survive(self):
        tree = fleet_fault_tree(workers=3, k_required=2)
        assert not tree.evaluate_round(set())
        assert not tree.evaluate_round({"worker-0"})
        assert tree.evaluate_round({"worker-0", "worker-1"})

    def test_bounds_are_validated(self):
        with pytest.raises(ConfigurationError):
            fleet_fault_tree(0, 1)
        with pytest.raises(ConfigurationError):
            fleet_fault_tree(3, 4)
        with pytest.raises(ConfigurationError):
            fleet_fault_tree(3, 0)


class TestAssessFleet:
    def test_analytic_matches_the_binomial_closed_form(self):
        p = 0.05
        candidate = assess_fleet(6, 4, p)
        assert candidate.method == "analytic"
        assert candidate.availability == pytest.approx(
            binomial_availability(6, 4, p), abs=1e-12
        )
        assert candidate.availability_lower == candidate.availability

    def test_large_fleets_stay_analytic(self):
        # 25 workers used to exceed the 2**n enumeration limit and fall
        # back to Monte Carlo; the Poisson-binomial propagation is exact
        # at any size.
        p = 0.05
        candidate = assess_fleet(25, 20, p)
        assert candidate.method == "analytic"
        truth = binomial_availability(25, 20, p)
        assert candidate.availability == pytest.approx(truth, abs=1e-12)
        assert candidate.availability_lower == candidate.availability

    def test_very_large_fleets_match_the_closed_form(self):
        p = 0.02
        candidate = assess_fleet(120, 100, p)
        assert candidate.method == "analytic"
        truth = binomial_availability(120, 100, p)
        assert candidate.availability == pytest.approx(truth, abs=1e-10)

    def test_results_are_deterministic(self):
        first = assess_fleet(25, 20, 0.05, rounds=50_000, seed=9)
        second = assess_fleet(25, 20, 0.05, rounds=50_000, seed=9)
        assert first.availability == second.availability


class TestPlanCapacity:
    def test_zero_crash_rate_needs_no_spares(self):
        plan = plan_capacity(
            target_rps=40,
            per_worker_rps=10,
            slo=0.99999,
            crash_rate_per_hour=0.0,
            failover_seconds=10.0,
        )
        assert plan.k_required == 4
        assert plan.recommended_workers == 4

    def test_spares_are_added_until_the_slo_holds(self):
        plan = plan_capacity(
            target_rps=40,
            per_worker_rps=12,
            slo=0.9999,
            crash_rate_per_hour=6.0,
            failover_seconds=10.0,
            max_workers=16,
        )
        assert plan.k_required == 4
        assert plan.recommended_workers is not None
        assert plan.recommended_workers > plan.k_required
        # The recommendation is the *first* size meeting the SLO, and
        # every smaller candidate missed it.
        for candidate in plan.candidates[:-1]:
            assert not candidate.meets_slo
        assert plan.candidates[-1].meets_slo

    def test_unsatisfiable_within_max_workers(self):
        plan = plan_capacity(
            target_rps=10,
            per_worker_rps=10,
            slo=0.999999,
            crash_rate_per_hour=360.0,  # a crash every 10s of uptime
            failover_seconds=30.0,
            max_workers=3,
        )
        assert plan.recommended_workers is None
        assert not plan.satisfiable
        assert all(not c.meets_slo for c in plan.candidates)

    def test_to_dict_round_trips_the_decision(self):
        plan = plan_capacity(
            target_rps=20,
            per_worker_rps=10,
            slo=0.999,
            crash_rate_per_hour=2.0,
            failover_seconds=5.0,
        )
        document = plan.to_dict()
        assert document["k_required"] == 2
        assert document["recommended_workers"] == plan.recommended_workers
        assert document["candidates"][-1]["meets_slo"] is True

    def test_inputs_are_validated(self):
        with pytest.raises(ConfigurationError):
            plan_capacity(0, 10, 0.99, 1.0, 5.0)
        with pytest.raises(ConfigurationError):
            plan_capacity(10, 0, 0.99, 1.0, 5.0)
        with pytest.raises(ConfigurationError):
            plan_capacity(10, 10, 1.5, 1.0, 5.0)
