"""Tests for search objectives (repro.core.objectives): Eq. 7."""

import numpy as np
import pytest

from repro.app.generators import two_tier
from repro.app.structure import ApplicationStructure
from repro.core.anneal import paper_delta
from repro.core.objectives import (
    BandwidthUtilityObjective,
    ClassicReliabilityObjective,
    CompositeObjective,
    ReliabilityObjective,
    WeightedObjective,
    WorkloadUtilityObjective,
)
from repro.core.plan import DeploymentPlan
from repro.core.result import AssessmentResult
from repro.sampling.statistics import estimate_from_results
from repro.util.errors import ConfigurationError
from repro.workload.model import HostWorkloadModel


def _assessment(plan, score):
    n = 1_000
    reliable = int(round(score * n))
    results = np.array([1] * reliable + [0] * (n - reliable))
    return AssessmentResult(
        plan=plan,
        estimate=estimate_from_results(results),
        per_round=results.astype(bool),
        sampled_components=10,
        elapsed_seconds=0.001,
    )


@pytest.fixture
def plans(fattree4):
    a = DeploymentPlan.single_component(fattree4.hosts[:3], "app")
    b = DeploymentPlan.single_component(fattree4.hosts[3:6], "app")
    return a, b


class TestReliabilityObjective:
    def test_measure_is_score(self, plans):
        a, _ = plans
        objective = ReliabilityObjective()
        assert objective.measure(a, _assessment(a, 0.99)) == pytest.approx(0.99)

    def test_delta_is_log_odds(self, plans):
        a, b = plans
        objective = ReliabilityObjective()
        delta = objective.delta(a, _assessment(a, 0.999), b, _assessment(b, 0.99))
        assert delta == pytest.approx(paper_delta(0.999, 0.99))


class TestClassicReliabilityObjective:
    def test_delta_is_absolute_difference(self, plans):
        a, b = plans
        objective = ClassicReliabilityObjective()
        delta = objective.delta(a, _assessment(a, 0.999), b, _assessment(b, 0.99))
        assert delta == pytest.approx(0.009)


class TestWorkloadUtility:
    def test_prefers_idle_hosts(self, fattree4, plans):
        a, b = plans
        loads = {h: 0.9 for h in fattree4.hosts}
        for h in a.hosts():
            loads[h] = 0.1
        model = HostWorkloadModel(loads)
        objective = WorkloadUtilityObjective(model)
        assert objective.measure(a, None) > objective.measure(b, None)

    def test_measure_value(self, fattree4, plans):
        a, _ = plans
        model = HostWorkloadModel.uniform(fattree4, 0.25)
        assert WorkloadUtilityObjective(model).measure(a, None) == pytest.approx(0.75)

    def test_delta_sign(self, fattree4, plans):
        a, b = plans
        loads = {h: 0.5 for h in fattree4.hosts}
        for h in a.hosts():
            loads[h] = 0.0
        objective = WorkloadUtilityObjective(HostWorkloadModel(loads))
        # b (worse utility) as neighbour of a -> positive delta.
        assert objective.delta(a, None, b, None) > 0


class TestBandwidthUtility:
    def test_colocated_tiers_score_higher(self, fattree4):
        structure = two_tier(frontends=1, databases=1)
        same_rack = DeploymentPlan.from_mapping(
            {"frontend": ["host/0/0/0"], "database": ["host/0/0/1"]}
        )
        cross_pod = DeploymentPlan.from_mapping(
            {"frontend": ["host/0/0/0"], "database": ["host/2/1/1"]}
        )
        objective = BandwidthUtilityObjective(fattree4, structure)
        assert objective.measure(same_rack, None) > objective.measure(cross_pod, None)

    def test_same_pod_between_rack_and_core(self, fattree4):
        structure = two_tier(frontends=1, databases=1)
        objective = BandwidthUtilityObjective(fattree4, structure)
        same_pod = DeploymentPlan.from_mapping(
            {"frontend": ["host/0/0/0"], "database": ["host/0/1/0"]}
        )
        same_rack = DeploymentPlan.from_mapping(
            {"frontend": ["host/0/0/0"], "database": ["host/0/0/1"]}
        )
        cross_pod = DeploymentPlan.from_mapping(
            {"frontend": ["host/0/0/0"], "database": ["host/1/0/0"]}
        )
        m_rack = objective.measure(same_rack, None)
        m_pod = objective.measure(same_pod, None)
        m_cross = objective.measure(cross_pod, None)
        assert m_rack > m_pod > m_cross

    def test_app_without_communication_is_neutral(self, fattree4):
        structure = ApplicationStructure.k_of_n(2, 3)
        objective = BandwidthUtilityObjective(fattree4, structure)
        plan = DeploymentPlan.single_component(fattree4.hosts[:3], "app")
        assert objective.measure(plan, None) == 1.0


class TestCompositeObjective:
    def test_eq7_weighted_sum(self, fattree4, plans):
        a, _ = plans
        workload = HostWorkloadModel.uniform(fattree4, 0.2)
        composite = CompositeObjective.reliability_and_utility(
            WorkloadUtilityObjective(workload)
        )
        measure = composite.measure(a, _assessment(a, 0.99))
        assert measure == pytest.approx(0.5 * 0.99 + 0.5 * 0.8)

    def test_custom_weights(self, fattree4, plans):
        a, _ = plans
        workload = HostWorkloadModel.uniform(fattree4, 0.0)
        composite = CompositeObjective(
            [
                WeightedObjective(ReliabilityObjective(), 0.9),
                WeightedObjective(WorkloadUtilityObjective(workload), 0.1),
            ]
        )
        measure = composite.measure(a, _assessment(a, 1.0))
        assert measure == pytest.approx(0.9 + 0.1)

    def test_delta_combines_members(self, fattree4, plans):
        a, b = plans
        loads = {h: 0.5 for h in fattree4.hosts}
        for h in a.hosts():
            loads[h] = 0.1
        utility = WorkloadUtilityObjective(HostWorkloadModel(loads))
        composite = CompositeObjective.reliability_and_utility(utility)
        delta = composite.delta(a, _assessment(a, 0.999), b, _assessment(b, 0.99))
        expected = 0.5 * paper_delta(0.999, 0.99) + 0.5 * (0.9 - 0.5)
        assert delta == pytest.approx(expected)

    def test_rejects_empty_members(self):
        with pytest.raises(ConfigurationError):
            CompositeObjective([])

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ConfigurationError):
            WeightedObjective(ReliabilityObjective(), 0.0)
