"""Unit tests for the component model (repro.faults.component)."""

import pytest

from repro.faults.component import Component, ComponentType, link_id


class TestComponentType:
    def test_switch_types_are_switches(self):
        for ctype in (
            ComponentType.EDGE_SWITCH,
            ComponentType.AGGREGATION_SWITCH,
            ComponentType.CORE_SWITCH,
            ComponentType.BORDER_SWITCH,
        ):
            assert ctype.is_switch

    def test_non_switch_types(self):
        for ctype in (
            ComponentType.HOST,
            ComponentType.LINK,
            ComponentType.POWER_SUPPLY,
            ComponentType.COOLING,
            ComponentType.OPERATING_SYSTEM,
            ComponentType.LIBRARY,
            ComponentType.FIRMWARE,
        ):
            assert not ctype.is_switch

    def test_network_elements(self):
        assert ComponentType.HOST.is_network_element
        assert ComponentType.LINK.is_network_element
        assert ComponentType.CORE_SWITCH.is_network_element
        assert not ComponentType.POWER_SUPPLY.is_network_element

    def test_dependency_types(self):
        assert ComponentType.POWER_SUPPLY.is_dependency
        assert ComponentType.OPERATING_SYSTEM.is_dependency
        assert not ComponentType.HOST.is_dependency
        assert not ComponentType.BORDER_SWITCH.is_dependency

    def test_every_type_is_network_element_xor_dependency(self):
        for ctype in ComponentType:
            assert ctype.is_network_element != ctype.is_dependency


class TestComponent:
    def test_basic_construction(self):
        c = Component("host/0", ComponentType.HOST, 0.01)
        assert c.component_id == "host/0"
        assert c.failure_probability == 0.01
        assert not c.is_perfectly_reliable

    def test_zero_probability_is_perfectly_reliable(self):
        c = Component("link/x", ComponentType.LINK, 0.0)
        assert c.is_perfectly_reliable

    def test_rejects_probability_one(self):
        with pytest.raises(ValueError):
            Component("x", ComponentType.HOST, 1.0)

    def test_rejects_negative_probability(self):
        with pytest.raises(ValueError):
            Component("x", ComponentType.HOST, -0.1)

    def test_rejects_probability_above_one(self):
        with pytest.raises(ValueError):
            Component("x", ComponentType.HOST, 1.5)

    def test_with_probability_returns_new_component(self):
        c = Component("host/0", ComponentType.HOST, 0.01, {"pod": 3})
        c2 = c.with_probability(0.05)
        assert c2.failure_probability == 0.05
        assert c.failure_probability == 0.01
        assert c2.component_id == c.component_id
        assert c2.attributes == {"pod": 3}

    def test_with_probability_copies_attributes(self):
        c = Component("host/0", ComponentType.HOST, 0.01, {"pod": 3})
        c2 = c.with_probability(0.05)
        c2.attributes["pod"] = 9
        assert c.attributes["pod"] == 3

    def test_equality_ignores_attributes(self):
        a = Component("x", ComponentType.HOST, 0.01, {"pod": 1})
        b = Component("x", ComponentType.HOST, 0.01, {"pod": 2})
        assert a == b

    def test_frozen(self):
        c = Component("x", ComponentType.HOST, 0.01)
        with pytest.raises(AttributeError):
            c.failure_probability = 0.5


class TestLinkId:
    def test_order_independent(self):
        assert link_id("a", "b") == link_id("b", "a")

    def test_contains_both_endpoints(self):
        lid = link_id("host/1", "edge/2")
        assert "host/1" in lid
        assert "edge/2" in lid

    def test_distinct_links_distinct_ids(self):
        assert link_id("a", "b") != link_id("a", "c")
