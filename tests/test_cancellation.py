"""Chaos-style cancellation tests: tokens, anytime results, no orphans.

The contract under test: a fired token stops work at the next natural
boundary (sampler chunk, dispatched portion, annealing move), layers that
hold partial data return a well-formed *anytime* result with honestly
widened bounds, and no worker process keeps computing rounds nobody will
collect.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.app.structure import ApplicationStructure
from repro.core.api import AssessmentConfig
from repro.core.assessment import ReliabilityAssessor
from repro.core.incremental import IncrementalAssessor
from repro.core.plan import DeploymentPlan
from repro.core.search import DeploymentSearch, SearchSpec
from repro.runtime.mapreduce import ParallelAssessor
from repro.sampling.montecarlo import MonteCarloSampler
from repro.util.cancel import NEVER, CancellationToken
from repro.util.errors import OperationCancelled

STRUCTURE = ApplicationStructure.k_of_n(2, 3)


def _plan(topology):
    return DeploymentPlan.single_component(
        topology.hosts[:3], STRUCTURE.components[0].name
    )


class TestCancellationToken:
    def test_fresh_token_is_live(self):
        token = CancellationToken()
        assert not token.cancelled
        assert token.reason is None
        token.check()  # must not raise

    def test_explicit_cancel_is_sticky_and_first_reason_wins(self):
        token = CancellationToken()
        token.cancel("first")
        token.cancel("second")
        assert token.cancelled
        assert token.reason == "first"
        with pytest.raises(OperationCancelled) as excinfo:
            token.check()
        assert excinfo.value.reason == "first"

    def test_deadline_fires_with_fake_clock(self):
        now = {"t": 0.0}
        token = CancellationToken(deadline_seconds=5.0, clock=lambda: now["t"])
        assert not token.cancelled
        assert token.remaining() == pytest.approx(5.0)
        now["t"] = 5.1
        assert token.cancelled
        assert token.reason == "deadline exceeded"
        assert token.remaining() == 0.0

    def test_non_positive_deadline_fires_immediately(self):
        assert CancellationToken(deadline_seconds=0.0).cancelled
        assert CancellationToken(deadline_seconds=-1.0).cancelled

    def test_child_fires_with_parent(self):
        parent = CancellationToken()
        child = parent.child()
        assert not child.cancelled
        parent.cancel("shutdown")
        assert child.cancelled
        assert "shutdown" in child.reason

    def test_child_own_deadline_independent_of_parent(self):
        now = {"t": 0.0}
        parent = CancellationToken(clock=lambda: now["t"])
        child = parent.child(deadline_seconds=1.0)
        now["t"] = 2.0
        assert child.cancelled
        assert not parent.cancelled

    def test_never_token(self):
        assert not NEVER.cancelled


class TestSamplerCancellation:
    def test_montecarlo_checks_between_chunks(self, rng):
        token = CancellationToken()
        token.cancel("stop")
        sampler = MonteCarloSampler()
        with pytest.raises(OperationCancelled):
            sampler.sample({"a": 0.5}, 100, rng, cancel=token)

    def test_uncancelled_sampling_is_unchanged(self, rng):
        sampler = MonteCarloSampler()
        batch = sampler.sample({"a": 0.5}, 100, rng, cancel=CancellationToken())
        assert batch.rounds == 100


class TestSequentialCancellation:
    def test_fired_token_raises_before_work(self, fattree4, inventory):
        assessor = ReliabilityAssessor.from_config(
            fattree4, inventory, AssessmentConfig(rounds=500, rng=1)
        )
        token = CancellationToken()
        token.cancel("client gone")
        with pytest.raises(OperationCancelled):
            assessor.assess(_plan(fattree4), STRUCTURE, cancel=token)

    def test_live_token_changes_nothing(self, fattree4, inventory):
        config = AssessmentConfig(rounds=500, rng=1)
        plain = ReliabilityAssessor.from_config(fattree4, inventory, config)
        tokened = ReliabilityAssessor.from_config(fattree4, inventory, config)
        a = plain.assess(_plan(fattree4), STRUCTURE)
        b = tokened.assess(_plan(fattree4), STRUCTURE, cancel=CancellationToken())
        assert a.estimate == b.estimate

    def test_incremental_assessor_cancels(self, fattree4, inventory):
        assessor = IncrementalAssessor.from_config(
            fattree4, inventory, AssessmentConfig(rounds=500, master_seed=7)
        )
        token = CancellationToken()
        token.cancel("stop")
        with pytest.raises(OperationCancelled):
            assessor.assess(_plan(fattree4), STRUCTURE, cancel=token)

    def test_incremental_survives_mid_extension_cancel(self, fattree4, inventory):
        """An aborted cache extension must leave the caches consistent."""
        assessor = IncrementalAssessor.from_config(
            fattree4, inventory, AssessmentConfig(rounds=500, master_seed=7)
        )
        token = CancellationToken()
        token.cancel("stop")
        with pytest.raises(OperationCancelled):
            assessor.assess(_plan(fattree4), STRUCTURE, cancel=token)
        # Same plan afterwards with no token: must produce a clean result.
        result = assessor.assess(_plan(fattree4), STRUCTURE)
        assert result.estimate.rounds == 500


def _cancel_after_first_portion(monkeypatch, token):
    """Fire ``token`` deterministically once the first portion completes."""
    real = ParallelAssessor._inline_portion

    def wrapper(self, portion, plan, structure, cancel=None):
        out = real(self, portion, plan, structure, cancel)
        token.cancel("test: first portion done")
        return out

    monkeypatch.setattr(ParallelAssessor, "_inline_portion", wrapper)


class TestParallelCancellation:
    def test_inline_backend_returns_anytime_partial(
        self, fattree4, inventory, monkeypatch
    ):
        """Cancel between portions: completed portions become the estimate."""
        assessor = ParallelAssessor.from_config(
            fattree4,
            inventory,
            AssessmentConfig(mode="parallel", backend="inline", workers=4,
                             rounds=400, rng=3),
        )
        token = CancellationToken()
        _cancel_after_first_portion(monkeypatch, token)
        result = assessor.assess(_plan(fattree4), STRUCTURE, cancel=token)
        runtime = result.runtime
        assert runtime.cancelled
        assert result.degraded
        assert result.estimate.rounds == 100  # portion 0 of 4
        assert runtime.dropped_portions == 3
        assert runtime.dropped_rounds == 300
        assert sum(1 for f in runtime.failures if f.kind == "cancelled") == 3

    def test_anytime_bounds_are_widened(self, fattree4, inventory, monkeypatch):
        assessor = ParallelAssessor.from_config(
            fattree4,
            inventory,
            AssessmentConfig(mode="parallel", backend="inline", workers=4,
                             rounds=400, rng=3),
        )
        token = CancellationToken()
        _cancel_after_first_portion(monkeypatch, token)
        result = assessor.assess(_plan(fattree4), STRUCTURE, cancel=token)
        coverage = 400 / result.estimate.rounds
        raw = np.asarray(result.per_round)
        from repro.sampling.statistics import estimate_from_results

        unwidened = estimate_from_results(raw)
        assert result.estimate.variance == pytest.approx(
            unwidened.variance * coverage
        )
        assert result.estimate.confidence_interval_width == pytest.approx(
            unwidened.confidence_interval_width * math.sqrt(coverage)
        )

    def test_pre_fired_token_raises_not_returns(self, fattree4, inventory):
        assessor = ParallelAssessor.from_config(
            fattree4,
            inventory,
            AssessmentConfig(mode="parallel", backend="inline", workers=2,
                             rounds=200, rng=3),
        )
        token = CancellationToken()
        token.cancel("gone")
        with pytest.raises(OperationCancelled):
            assessor.assess(_plan(fattree4), STRUCTURE, cancel=token)

    def test_process_backend_cancel_leaves_no_orphan_pool(
        self, fattree4, inventory
    ):
        """Mid-sampling cancel: the suspect pool is restarted, workers live.

        Deterministically gated: the sampling-started hook (inherited by
        the forked workers, installed before the pool forks) signals the
        moment a worker is inside a sampling pass and then blocks until
        released — so the cancel always lands mid-portion, with no
        timing-sensitive round counts or wall-clock deadlines.

        The gates are raw semaphores, not ``multiprocessing.Event``:
        the pool restart SIGTERMs workers while they are blocked on the
        gate, and an Event's condition-variable ``set()`` deadlocks
        waiting for dead sleepers to acknowledge. A POSIX semaphore has
        no acknowledge protocol, so killing a blocked waiter is safe.
        """
        import multiprocessing
        import threading

        from repro.sampling import base as sampling_base

        started = multiprocessing.Semaphore(0)
        release = multiprocessing.Semaphore(0)

        def hook():
            started.release()
            if release.acquire(timeout=60.0):
                release.release()  # pass the baton: later entrants fly through

        sampling_base.set_sampling_started_hook(hook)
        try:
            with ParallelAssessor.from_config(
                fattree4,
                inventory,
                AssessmentConfig(mode="parallel", workers=2, rounds=10_000, rng=3),
            ) as assessor:
                if assessor.backend != "process":
                    pytest.skip("fork unavailable on this platform")
                before_pids = assessor._live_worker_pids()
                token = CancellationToken()
                saw_sampling = threading.Event()

                def fire():
                    if started.acquire(timeout=30.0):
                        saw_sampling.set()
                    token.cancel("test: worker is mid-sampling")

                watcher = threading.Thread(target=fire, daemon=True)
                watcher.start()
                try:
                    result = assessor.assess(
                        _plan(fattree4), STRUCTURE, cancel=token
                    )
                    assert result.runtime.cancelled
                except OperationCancelled:
                    pass  # nothing completed before the cancel: also valid
                watcher.join(timeout=30.0)
                assert saw_sampling.is_set(), "no worker ever entered sampling"
                # Open the gate for everyone — including freshly forked
                # workers that inherited the hook — before using the pool.
                release.release()
                # The old in-flight workers were torn down with the pool
                # restart; the fresh pool must be fully alive and usable.
                after_pids = assessor._live_worker_pids()
                assert len(after_pids) == 2
                assert not (before_pids & after_pids)
                follow_up = assessor.assess(_plan(fattree4), STRUCTURE, rounds=200)
                assert follow_up.estimate.rounds == 200
        finally:
            release.release()
            sampling_base.set_sampling_started_hook(None)


class TestSearchCancellation:
    def test_mid_anneal_cancel_returns_best_so_far(self, fattree4, inventory):
        token = CancellationToken()
        iterations = {"n": 0}

        def clock():
            # Cancel after a few loop iterations via the clock the search
            # reads once per iteration — deterministic, no sleeping.
            iterations["n"] += 1
            if iterations["n"] > 12:
                token.cancel("deadline")
            return iterations["n"] * 0.01

        search = DeploymentSearch.from_config(
            fattree4,
            inventory,
            AssessmentConfig(rounds=200, rng=5),
            rng=42,
            clock=clock,
            cancel=token,
        )
        result = search.search(
            SearchSpec(STRUCTURE, max_seconds=1_000.0, max_iterations=10_000)
        )
        assert result.iterations < 10_000
        assert result.best_plan is not None
        assert result.best_assessment.estimate.rounds == 200
        assert not result.satisfied

    def test_cancel_writes_final_checkpoint(self, fattree4, inventory, tmp_path):
        ckpt = str(tmp_path / "cancelled.json")
        token = CancellationToken()
        iterations = {"n": 0}

        def clock():
            iterations["n"] += 1
            if iterations["n"] > 12:
                token.cancel("deadline")
            return iterations["n"] * 0.01

        search = DeploymentSearch.from_config(
            fattree4,
            inventory,
            AssessmentConfig(rounds=200, rng=5),
            rng=42,
            clock=clock,
            cancel=token,
            checkpoint_path=ckpt,
            checkpoint_every=1_000_000,  # only the final write fires
        )
        search.search(
            SearchSpec(STRUCTURE, max_seconds=1_000.0, max_iterations=10_000)
        )
        from repro import serialization
        from repro.core.search import SearchState

        state = SearchState.from_dict(serialization.load(ckpt))
        assert state.iterations > 0
