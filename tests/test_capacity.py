"""Tests for host capacity constraints (repro.workload.capacity)."""

import pytest

from repro.app.structure import ApplicationStructure
from repro.core.plan import DeploymentPlan
from repro.workload.capacity import CapacityModel
from repro.util.errors import ConfigurationError
from repro.core.api import AssessmentConfig


class TestConstruction:
    def test_uniform(self, fattree4):
        model = CapacityModel.uniform(fattree4, 2)
        assert model.free_slots(fattree4.hosts[0]) == 2

    def test_rejects_negative_slots(self, fattree4):
        with pytest.raises(ConfigurationError):
            CapacityModel({"h": -1})
        with pytest.raises(ConfigurationError):
            CapacityModel.uniform(fattree4, -1)

    def test_unknown_host(self):
        model = CapacityModel({"h": 1})
        with pytest.raises(ConfigurationError):
            model.free_slots("ghost")


class TestFitsAndOccupy:
    def test_fits_with_free_slots(self, fattree4):
        model = CapacityModel.uniform(fattree4, 1)
        plan = DeploymentPlan.single_component(fattree4.hosts[:3], "app")
        assert model.fits(plan)

    def test_full_host_rejects(self, fattree4):
        model = CapacityModel.uniform(fattree4, 1)
        plan = DeploymentPlan.single_component(fattree4.hosts[:3], "app")
        model.occupy(plan)
        assert not model.fits(plan)
        overlapping = DeploymentPlan.single_component(fattree4.hosts[2:5], "app")
        assert not model.fits(overlapping)
        disjoint = DeploymentPlan.single_component(fattree4.hosts[3:6], "app")
        assert model.fits(disjoint)

    def test_occupy_all_or_nothing(self, fattree4):
        model = CapacityModel.uniform(fattree4, 1)
        first = DeploymentPlan.single_component(fattree4.hosts[:2], "app")
        model.occupy(first)
        overlapping = DeploymentPlan.single_component(fattree4.hosts[1:4], "app")
        with pytest.raises(ConfigurationError):
            model.occupy(overlapping)
        # The failed occupy must not have consumed anything.
        assert model.free_slots(fattree4.hosts[2]) == 1
        assert model.free_slots(fattree4.hosts[3]) == 1

    def test_release_restores(self, fattree4):
        model = CapacityModel.uniform(fattree4, 1)
        plan = DeploymentPlan.single_component(fattree4.hosts[:2], "app")
        model.occupy(plan)
        model.release(plan)
        assert model.fits(plan)

    def test_occupy_hosts_external_load(self, fattree4):
        model = CapacityModel.uniform(fattree4, 2)
        model.occupy_hosts(fattree4.hosts[:1], slots=2)
        assert model.free_slots(fattree4.hosts[0]) == 0
        with pytest.raises(ConfigurationError):
            model.occupy_hosts(fattree4.hosts[:1], slots=1)

    def test_feasible_host_count(self, fattree4):
        model = CapacityModel.uniform(fattree4, 1)
        assert model.feasible_host_count() == len(fattree4.hosts)
        model.occupy(DeploymentPlan.single_component(fattree4.hosts[:3], "app"))
        assert model.feasible_host_count() == len(fattree4.hosts) - 3


class TestSearchIntegration:
    def test_resource_filter_keeps_plans_within_capacity(self, fattree4, inventory):
        from repro.core.assessment import ReliabilityAssessor
        from repro.core.search import DeploymentSearch, SearchSpec

        model = CapacityModel.uniform(fattree4, 1)
        # Pre-occupy half of the fleet with foreign load.
        occupied = fattree4.hosts[::2]
        model.occupy_hosts(occupied)

        assessor = ReliabilityAssessor(fattree4, inventory, config=AssessmentConfig(rounds=1_000, rng=5))
        search = DeploymentSearch(
            assessor, resource_filter=model.as_resource_filter(), rng=6
        )
        free_hosts = [h for h in fattree4.hosts if h not in set(occupied)]
        initial = DeploymentPlan.single_component(free_hosts[:3], "app")
        result = search.search(
            SearchSpec(
                ApplicationStructure.k_of_n(2, 3),
                max_seconds=20.0,
                max_iterations=60,
            ),
            initial_plan=initial,
        )
        assert model.fits(result.best_plan)
        assert not (set(result.best_plan.hosts()) & set(occupied))
