"""The write-ahead request journal and the durable result store.

Covers the on-disk contract the durability layer stands on: checksummed
record framing, torn-tail truncation (crash mid-append), loud corruption
detection in sealed segments, segment rotation + TTL garbage collection,
replay folding, and the result store's atomic write / corrupt-read /
compaction behaviour.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.service.journal import (
    JournalState,
    PendingRequest,
    RequestJournal,
    encode_record,
    scan_segment,
)
from repro.service.store import ResultStore
from repro.util.errors import ConfigurationError


class TestRecordFraming:
    def test_round_trip_one_record(self, tmp_path):
        path = tmp_path / "seg.waj"
        path.write_bytes(encode_record({"event": "started", "id": "req-1"}))
        records, good, defect = scan_segment(str(path))
        assert defect is None
        assert good == path.stat().st_size
        assert records == [{"event": "started", "id": "req-1"}]

    def test_torn_header_reported(self, tmp_path):
        path = tmp_path / "seg.waj"
        whole = encode_record({"event": "started", "id": "req-1"})
        path.write_bytes(whole + b"\x00\x00")  # 2 stray bytes: torn header
        records, good, defect = scan_segment(str(path))
        assert len(records) == 1
        assert good == len(whole)
        assert defect == "torn header"

    def test_torn_payload_reported(self, tmp_path):
        path = tmp_path / "seg.waj"
        whole = encode_record({"event": "started", "id": "req-1"})
        second = encode_record({"event": "completed", "id": "req-1"})
        path.write_bytes(whole + second[:-3])  # payload cut short
        records, good, defect = scan_segment(str(path))
        assert len(records) == 1
        assert good == len(whole)
        assert defect == "torn payload"

    def test_bit_flip_caught_by_checksum(self, tmp_path):
        path = tmp_path / "seg.waj"
        data = bytearray(encode_record({"event": "started", "id": "req-1"}))
        data[-1] ^= 0x40  # flip a payload bit; the crc32 must notice
        path.write_bytes(bytes(data))
        records, good, defect = scan_segment(str(path))
        assert records == []
        assert good == 0
        assert defect == "checksum mismatch"


class TestJournalLifecycle:
    def test_accept_start_complete_replays_to_nothing_pending(self, tmp_path):
        with RequestJournal(tmp_path) as journal:
            journal.accepted("req-1", "assess", {"hosts": ["h0"], "k": 1})
            journal.started("req-1")
            journal.completed("req-1", "ok")
        state = RequestJournal(tmp_path).replay()
        assert state.pending == []
        assert state.terminal_ids == {"req-1"}
        assert state.records == 3
        assert state.max_request_number == 1

    def test_unfinished_request_is_pending_with_started_flag(self, tmp_path):
        with RequestJournal(tmp_path) as journal:
            journal.accepted(
                "req-2",
                "assess",
                {"hosts": ["h0"], "k": 1},
                idempotency_key="kk",
                fingerprint="ff",
            )
            journal.started("req-2")
        state = RequestJournal(tmp_path).replay()
        assert len(state.pending) == 1
        entry = state.pending[0]
        assert entry.request_id == "req-2"
        assert entry.started
        assert entry.idempotency_key == "kk"
        assert entry.fingerprint == "ff"
        # Not terminal, so the key must NOT be in the completed map.
        assert "kk" not in state.keys

    def test_completed_key_lands_in_keys_map(self, tmp_path):
        with RequestJournal(tmp_path) as journal:
            journal.accepted(
                "req-3", "search", {"k": 1, "n": 2},
                idempotency_key="kk", fingerprint="ff",
            )
            journal.completed("req-3", "degraded")
        state = RequestJournal(tmp_path).replay()
        assert state.keys == {"kk": ("ff", "degraded")}

    def test_cancelled_key_is_forgotten(self, tmp_path):
        with RequestJournal(tmp_path) as journal:
            journal.accepted(
                "req-4", "assess", {"hosts": ["h0"], "k": 1},
                idempotency_key="kk", fingerprint="ff",
            )
            journal.cancelled("req-4", reason="client")
        state = RequestJournal(tmp_path).replay()
        assert state.pending == []
        assert state.keys == {}  # cancelled => resubmission re-executes
        assert "req-4" in state.terminal_ids

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        with RequestJournal(tmp_path) as journal:
            journal.accepted("req-1", "assess", {"hosts": ["h0"], "k": 1})
            segment = journal._current_path
        with open(segment, "ab") as handle:
            handle.write(b"\x00\x00\x00\x99partial")  # crash mid-append
        journal = RequestJournal(tmp_path)
        state = journal.replay()
        assert len(state.pending) == 1
        # The torn bytes are gone: appending works and rescans cleanly.
        journal.completed("req-1", "ok")
        journal.close()
        assert RequestJournal.scan(tmp_path).terminal_ids == {"req-1"}

    def test_torn_tail_truncated_at_every_byte_offset(self, tmp_path):
        """Property: a crash may tear the live segment's final record at
        *any* byte. Every cut must behave identically — the complete
        prefix records survive, the partial record is silently dropped,
        and the journal reopens appendable. (The cut at the record
        boundary itself is the clean-shutdown case and rides along.)"""
        seed_root = tmp_path / "seed"
        with RequestJournal(seed_root) as journal:
            journal.accepted("req-1", "assess", {"hosts": ["h0"], "k": 1})
            prefix_len = os.path.getsize(journal._current_path)
            journal.completed("req-1", "ok")
            segment_name = os.path.basename(journal._current_path)
            whole = open(journal._current_path, "rb").read()
        assert len(whole) > prefix_len + 2  # the final record spans many cuts
        for cut in range(prefix_len, len(whole)):
            root = tmp_path / f"cut-{cut}"
            root.mkdir()
            (root / segment_name).write_bytes(whole[:cut])
            journal = RequestJournal(root)
            state = journal.replay()
            # The completed record is gone at every cut: req-1 pends again.
            assert [p.request_id for p in state.pending] == ["req-1"]
            journal.completed("req-1", "ok")
            journal.close()
            assert RequestJournal.scan(root).terminal_ids == {"req-1"}

    def test_sealed_segment_torn_at_every_byte_offset_is_loud(self, tmp_path):
        """Property: the same cuts inside a *sealed* segment are not a
        torn tail — sealed segments were fsync'd, so a short read there
        is real corruption and every offset must refuse loudly."""
        seed_root = tmp_path / "seed"
        with RequestJournal(seed_root, segment_bytes=1) as journal:
            journal.accepted("req-1", "assess", {"hosts": ["h0"], "k": 1})
            journal.completed("req-1", "ok")
        segments = sorted(
            p for p in os.listdir(seed_root) if p.endswith(".waj")
        )
        assert len(segments) >= 2
        sealed = segments[0]
        whole = (seed_root / sealed).read_bytes()
        for cut in range(1, len(whole)):
            root = tmp_path / f"cut-{cut}"
            root.mkdir()
            for name in segments:
                data = (seed_root / name).read_bytes()
                (root / name).write_bytes(data[:cut] if name == sealed else data)
            with pytest.raises(ConfigurationError, match="corrupt mid-stream"):
                RequestJournal(root)

    def test_corrupt_sealed_segment_is_loud(self, tmp_path):
        with RequestJournal(tmp_path, segment_bytes=1) as journal:
            # segment_bytes=1 seals a segment after every record.
            journal.accepted("req-1", "assess", {"hosts": ["h0"], "k": 1})
            journal.completed("req-1", "ok")
        segments = sorted(
            p for p in os.listdir(tmp_path) if p.endswith(".waj")
        )
        assert len(segments) >= 2
        first = tmp_path / segments[0]
        data = bytearray(first.read_bytes())
        data[-1] ^= 0x01
        first.write_bytes(bytes(data))
        with pytest.raises(ConfigurationError, match="corrupt mid-stream"):
            RequestJournal(tmp_path)

    def test_rotation_and_gc_drop_only_fully_terminal_old_segments(
        self, tmp_path
    ):
        journal = RequestJournal(tmp_path, segment_bytes=1)
        journal.accepted("req-1", "assess", {"hosts": ["h0"], "k": 1})
        journal.completed("req-1", "ok")
        journal.accepted("req-2", "assess", {"hosts": ["h0"], "k": 1})
        # req-2 never finishes; its segment must survive any gc.
        state = RequestJournal.scan(tmp_path)
        removed = journal.gc(ttl_seconds=0.0, terminal_ids=state.terminal_ids)
        assert removed  # req-1's sealed segment went
        survivors = RequestJournal.scan(tmp_path)
        assert [p.request_id for p in survivors.pending] == ["req-2"]
        # Young segments survive a long TTL even when fully terminal.
        journal.completed("req-2", "ok")
        state = RequestJournal.scan(tmp_path)
        assert journal.gc(ttl_seconds=3600.0, terminal_ids=state.terminal_ids) == []
        journal.close()

    def test_scan_is_read_only_and_torn_tolerant(self, tmp_path):
        journal = RequestJournal(tmp_path)
        journal.accepted("req-1", "assess", {"hosts": ["h0"], "k": 1})
        segment = journal._current_path
        with open(segment, "ab") as handle:
            handle.write(b"\xff\xff")  # writer mid-append
        size_before = os.path.getsize(segment)
        state = RequestJournal.scan(tmp_path)
        assert [p.request_id for p in state.pending] == ["req-1"]
        assert os.path.getsize(segment) == size_before  # nothing truncated
        journal.close()

    def test_malformed_record_event_is_rejected(self, tmp_path):
        (tmp_path / "journal-00000001.waj").write_bytes(
            encode_record({"event": "exploded", "id": "req-1"})
        )
        with pytest.raises(ConfigurationError, match="malformed"):
            RequestJournal(tmp_path)

    def test_ids_unique_after_restart(self, tmp_path):
        with RequestJournal(tmp_path) as journal:
            journal.accepted("req-41", "assess", {"hosts": ["h0"], "k": 1})
        state = RequestJournal(tmp_path).replay()
        assert state.max_request_number == 41


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("kk", {"request_id": "req-1", "status": "ok"})
        assert store.get("kk") == {"request_id": "req-1", "status": "ok"}
        assert "kk" in store
        assert store.get("other") is None

    def test_corrupt_entry_reads_as_absent(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("kk", {"status": "ok"})
        (only,) = [p for p in os.listdir(tmp_path) if p.endswith(".json")]
        with open(tmp_path / only, "r+b") as handle:
            handle.seek(5)
            handle.write(b"GARBAGE")
        assert store.get("kk") is None  # degrade to re-execution, never crash

    def test_compact_removes_expired_and_unreadable(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("old", {"status": "ok"})
        store.put("new", {"status": "ok"})
        # Backdate "old" by rewriting its stored_at a week into the past.
        from repro import serialization

        old_path = store._path("old")
        document = serialization.load(old_path)
        document["stored_at"] = time.time() - 10_000.0
        serialization.dump(document, old_path, checksum=True)
        removed = store.compact(ttl_seconds=5_000.0)
        assert removed == [old_path]
        assert store.get("old") is None
        assert store.get("new") is not None


class TestJournalStateFolding:
    def test_started_before_accepted_does_not_crash(self, tmp_path):
        # A record order the writer never produces, but replay must not
        # corrupt state if it ever appears (e.g. partial gc).
        with RequestJournal(tmp_path) as journal:
            journal.started("req-9")
            journal.accepted("req-9", "assess", {"hosts": ["h0"], "k": 1})
        state = RequestJournal(tmp_path).replay()
        assert len(state.pending) == 1
        assert not state.pending[0].started

    def test_pending_request_dataclass_defaults(self):
        entry = PendingRequest(
            request_id="req-1",
            kind="assess",
            request={},
            idempotency_key=None,
            fingerprint=None,
        )
        assert not entry.started
        state = JournalState()
        assert state.pending == [] and state.records == 0
