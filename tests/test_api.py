"""Tests for the unified assessment API (repro.core.api) and the stable
serialization of results and search state.

Covers: AssessmentConfig validation, build_assessor dispatch, the legacy
keyword deprecation shim, the Assessor protocol, to_dict/from_dict
round-trips (including runtime profiles), and the byte-budgeted Monte
Carlo chunking.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import serialization
from repro.app.structure import ApplicationStructure
from repro.core.api import (
    AssessmentConfig,
    Assessor,
    build_assessor,
    score_plans_sequentially,
)
from repro.core.assessment import ReliabilityAssessor
from repro.core.incremental import IncrementalAssessor
from repro.core.plan import DeploymentPlan
from repro.core.search import DeploymentSearch, SearchSpec, SearchState
from repro.runtime.mapreduce import ParallelAssessor
from repro.sampling import montecarlo
from repro.sampling.montecarlo import MonteCarloSampler
from repro.util.errors import ConfigurationError
from repro.util.metrics import MetricsRegistry

STRUCTURE = ApplicationStructure.k_of_n(2, 3)


class TestAssessmentConfig:
    def test_rejects_nonpositive_rounds(self):
        with pytest.raises(ConfigurationError):
            AssessmentConfig(rounds=0)
        with pytest.raises(ConfigurationError):
            AssessmentConfig(rounds=-100)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            AssessmentConfig(mode="quantum")

    def test_registry_precedence(self):
        supplied = MetricsRegistry()
        assert AssessmentConfig(metrics=supplied).registry() is supplied
        assert (
            AssessmentConfig(profile=True, metrics=supplied).registry()
            is supplied
        )
        assert isinstance(
            AssessmentConfig(profile=True).registry(), MetricsRegistry
        )
        assert AssessmentConfig().registry() is None

    def test_with_updates_returns_new_config(self):
        base = AssessmentConfig(rounds=500)
        updated = base.with_updates(rounds=900, mode="incremental")
        assert base.rounds == 500
        assert updated.rounds == 900
        assert updated.mode == "incremental"


class TestBuildAssessorDispatch:
    CONFIG = AssessmentConfig(rounds=500, rng=1)

    def test_sequential(self, fattree4, inventory):
        assessor = build_assessor(fattree4, inventory, self.CONFIG)
        assert isinstance(assessor, ReliabilityAssessor)
        assert isinstance(assessor, Assessor)

    def test_parallel(self, fattree4, inventory):
        config = self.CONFIG.with_updates(mode="parallel", backend="inline")
        with build_assessor(fattree4, inventory, config) as assessor:
            assert isinstance(assessor, ParallelAssessor)
            assert isinstance(assessor, Assessor)

    def test_incremental(self, fattree4, inventory):
        config = self.CONFIG.with_updates(mode="incremental")
        assessor = build_assessor(fattree4, inventory, config)
        assert isinstance(assessor, IncrementalAssessor)
        assert isinstance(assessor, Assessor)

    def test_default_config_is_sequential(self, fattree4, inventory):
        assessor = build_assessor(fattree4, inventory)
        assert isinstance(assessor, ReliabilityAssessor)


class TestLegacyKwargsRejected:
    """The DeprecationWarning shim served its release cycle; the keyword
    forms are now a hard TypeError carrying a migration hint."""

    def test_reliability_assessor_legacy_kwargs_raise(self, fattree4, inventory):
        with pytest.raises(TypeError, match="AssessmentConfig"):
            ReliabilityAssessor(fattree4, inventory, rounds=500, rng=1)

    def test_parallel_assessor_legacy_kwargs_raise(self, fattree4, inventory):
        with pytest.raises(TypeError, match="AssessmentConfig"):
            ParallelAssessor(fattree4, inventory, workers=2, backend="inline")

    def test_build_assessor_legacy_kwargs_raise(self, fattree4, inventory):
        with pytest.raises(TypeError, match="AssessmentConfig"):
            build_assessor(fattree4, inventory, rounds=700)

    def test_hint_names_the_offending_fields(self, fattree4, inventory):
        with pytest.raises(TypeError, match=r"rng=.*rounds=|rounds=.*rng="):
            ReliabilityAssessor(fattree4, inventory, rounds=500, rng=1)

    def test_unknown_keyword_reported_as_unknown(self, fattree4, inventory):
        with pytest.raises(TypeError, match="hyperdrive"):
            build_assessor(fattree4, inventory, hyperdrive=True)

    def test_config_form_does_not_warn(self, fattree4, inventory):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ReliabilityAssessor.from_config(
                fattree4, inventory, AssessmentConfig(rounds=500)
            )
            build_assessor(fattree4, inventory, AssessmentConfig(rounds=500))


class TestScorePlansProtocol:
    """score_plans is part of the Assessor protocol: every backend returns
    exactly what per-plan assess calls would."""

    CONFIG = AssessmentConfig(rounds=400, rng=3)

    def _plans(self, fattree4, count=3):
        rng = np.random.default_rng(11)
        plans = [DeploymentPlan.random(fattree4, STRUCTURE, rng=rng)]
        while len(plans) < count:
            plans.append(plans[-1].random_neighbor(fattree4, rng=rng))
        return plans

    def test_sequential_backend_matches_assess(self, fattree4, inventory):
        plans = self._plans(fattree4)
        batch = ReliabilityAssessor.from_config(
            fattree4, inventory, self.CONFIG.with_updates(master_seed=9)
        )
        results = batch.score_plans(plans, STRUCTURE)
        assert len(results) == len(plans)
        for plan, result in zip(plans, results):
            assert result.plan == plan

    def test_incremental_backend_bit_identical(self, fattree4, inventory):
        plans = self._plans(fattree4, count=4)
        config = AssessmentConfig(mode="incremental", rounds=400, master_seed=7)
        batched = IncrementalAssessor.from_config(fattree4, inventory, config)
        sequential = IncrementalAssessor.from_config(fattree4, inventory, config)
        batch_results = batched.score_plans(plans, STRUCTURE)
        for plan, batch_result in zip(plans, batch_results):
            lone = sequential.assess(plan, STRUCTURE)
            assert np.array_equal(batch_result.per_round, lone.per_round)
            assert batch_result.estimate == lone.estimate

    def test_parallel_backend_uses_fallback(self, fattree4, inventory):
        plans = self._plans(fattree4, count=2)
        config = AssessmentConfig(
            mode="parallel", rounds=400, rng=3, workers=2, backend="inline"
        )
        with ParallelAssessor.from_config(fattree4, inventory, config) as pa:
            results = pa.score_plans(plans, STRUCTURE)
        assert [r.plan for r in results] == plans

    def test_sequential_helper_orders_results(self, fattree4, inventory):
        plans = self._plans(fattree4, count=2)
        assessor = ReliabilityAssessor.from_config(fattree4, inventory, self.CONFIG)
        results = score_plans_sequentially(assessor, plans, STRUCTURE)
        assert [r.plan for r in results] == plans

    def test_empty_batch(self, fattree4, inventory):
        assessor = ReliabilityAssessor.from_config(fattree4, inventory, self.CONFIG)
        assert assessor.score_plans([], STRUCTURE) == []


class TestAssessmentResultRoundTrip:
    def _result(self, fattree4, inventory, profile=False):
        config = AssessmentConfig(
            mode="incremental", rounds=500, master_seed=7, profile=profile
        )
        assessor = IncrementalAssessor.from_config(fattree4, inventory, config)
        plan = DeploymentPlan.random(fattree4, STRUCTURE, rng=2)
        return assessor.assess(plan, STRUCTURE)

    def test_round_trip_without_runtime(self, fattree4, inventory):
        result = self._result(fattree4, inventory, profile=False)
        assert result.runtime is None
        restored = serialization.assessment_from_dict(
            serialization.assessment_to_dict(result)
        )
        assert restored.runtime is None
        assert restored.estimate == result.estimate
        assert restored.plan == result.plan
        assert restored.sampled_components == result.sampled_components
        # per_round is deliberately not serialized (reproducible from the
        # recorded seeds); the decoded result carries an empty vector.
        assert restored.per_round.size == 0

    def test_round_trip_with_runtime_profile(self, fattree4, inventory):
        result = self._result(fattree4, inventory, profile=True)
        assert result.runtime is not None
        assert result.runtime.profile
        document = serialization.assessment_to_dict(result)
        restored = serialization.assessment_from_dict(document)
        assert restored.runtime.backend == "incremental"
        assert restored.runtime.profile == result.runtime.profile

    def test_methods_delegate_to_serialization(self, fattree4, inventory):
        result = self._result(fattree4, inventory)
        document = result.to_dict()
        assert document == serialization.assessment_to_dict(result)
        restored = type(result).from_dict(document)
        assert restored.estimate == result.estimate
        assert restored.plan == result.plan


class TestSearchStateRoundTrip:
    def test_checkpoint_round_trips_bit_exactly(
        self, fattree4, inventory, tmp_path
    ):
        ckpt = str(tmp_path / "state.json")
        search = DeploymentSearch.from_config(
            fattree4,
            inventory,
            AssessmentConfig(rounds=500, rng=5),
            rng=42,
            checkpoint_path=ckpt,
            checkpoint_every=2,
        )
        search.search(SearchSpec(STRUCTURE, max_seconds=30.0, max_iterations=6))
        document = serialization.load(ckpt)
        state = SearchState.from_dict(document)
        assert state.to_dict() == document

    def test_version_mismatch_rejected(self, fattree4, inventory, tmp_path):
        ckpt = str(tmp_path / "state.json")
        search = DeploymentSearch.from_config(
            fattree4,
            inventory,
            AssessmentConfig(rounds=500, rng=5),
            rng=42,
            checkpoint_path=ckpt,
            checkpoint_every=2,
        )
        search.search(SearchSpec(STRUCTURE, max_seconds=30.0, max_iterations=4))
        document = serialization.load(ckpt)
        document["version"] = 999
        with pytest.raises(ConfigurationError):
            SearchState.from_dict(document)


class TestMonteCarloChunking:
    def test_budget_is_bytes_not_rows(self):
        rounds = 10_000
        expected = max(
            1,
            montecarlo._CHUNK_BUDGET_BYTES
            // (rounds * montecarlo._BYTES_PER_DRAW),
        )
        assert expected * rounds * montecarlo._BYTES_PER_DRAW <= (
            montecarlo._CHUNK_BUDGET_BYTES
        )

    def test_chunk_size_does_not_change_samples(self, monkeypatch):
        """The RNG stream is consumed identically whatever the chunk size,
        so shrinking the budget must not change a single sampled state."""
        probabilities = {f"c{i}": 0.05 + 0.001 * i for i in range(50)}
        baseline = MonteCarloSampler().sample(
            probabilities, rounds=200, rng=np.random.default_rng(3)
        )
        monkeypatch.setattr(montecarlo, "_CHUNK_BUDGET_BYTES", 4096)
        chunked = MonteCarloSampler().sample(
            probabilities, rounds=200, rng=np.random.default_rng(3)
        )
        assert set(baseline.failed_rounds) == set(chunked.failed_rounds)
        for cid, rounds_failed in baseline.failed_rounds.items():
            assert np.array_equal(rounds_failed, chunked.failed_rounds[cid])
