"""Tests for the incremental assessment engine (repro.core.incremental).

The load-bearing property: under a shared master seed, incremental
assessment must be *bit-identical* to the from-scratch CRN path — not
statistically close, byte-for-byte equal — across arbitrary move
sequences. Everything else (caching, invalidation) is an optimisation
that must never be observable in the results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.app.generators import two_tier
from repro.app.structure import ApplicationStructure
from repro.core.api import AssessmentConfig
from repro.core.assessment import ReliabilityAssessor
from repro.core.incremental import IncrementalAssessor
from repro.core.plan import DeploymentPlan
from repro.faults.inventory import build_paper_inventory
from repro.sampling.dagger import CommonRandomDaggerSampler
from repro.sampling.montecarlo import MonteCarloSampler
from repro.util.errors import ConfigurationError

MASTER_SEED = 424242
ROUNDS = 2_000


def _pair(topology, model, rounds=ROUNDS, master_seed=MASTER_SEED):
    """A from-scratch CRN assessor and an incremental one, same seed."""
    scratch = ReliabilityAssessor.from_config(
        topology,
        model,
        AssessmentConfig(
            rounds=rounds, sampler=CommonRandomDaggerSampler(master_seed)
        ),
    )
    incremental = IncrementalAssessor.from_config(
        topology,
        model,
        AssessmentConfig(
            mode="incremental", rounds=rounds, master_seed=master_seed
        ),
    )
    return scratch, incremental


def _walk(topology, structure, moves, seed):
    rng = np.random.default_rng(seed)
    plan = DeploymentPlan.random(topology, structure, rng=rng)
    plans = [plan]
    for _ in range(moves):
        plan = plan.random_neighbor(topology, rng=rng)
        plans.append(plan)
    return plans


def _assert_identical(a, b):
    assert np.array_equal(a.per_round, b.per_round)
    assert a.estimate.score == b.estimate.score
    assert a.sampled_components == b.sampled_components


class TestBitEquality:
    @pytest.mark.parametrize("walk_seed", [0, 1, 2])
    def test_fattree_random_walk(self, fattree4, inventory, walk_seed):
        scratch, incremental = _pair(fattree4, inventory)
        structure = ApplicationStructure.k_of_n(2, 3)
        for plan in _walk(fattree4, structure, moves=10, seed=walk_seed):
            _assert_identical(
                scratch.assess(plan, structure),
                incremental.assess(plan, structure),
            )

    def test_leafspine_random_walk(self, leafspine):
        model = build_paper_inventory(leafspine, seed=3)
        scratch, incremental = _pair(leafspine, model)
        structure = ApplicationStructure.k_of_n(2, 3)
        for plan in _walk(leafspine, structure, moves=10, seed=5):
            _assert_identical(
                scratch.assess(plan, structure),
                incremental.assess(plan, structure),
            )

    def test_structure_with_pairwise_requirements(self, fattree4, inventory):
        """two_tier adds FE->DB reachability, exercising the pair cache."""
        scratch, incremental = _pair(fattree4, inventory)
        structure = two_tier(frontends=2, databases=2)
        for plan in _walk(fattree4, structure, moves=8, seed=9):
            _assert_identical(
                scratch.assess(plan, structure),
                incremental.assess(plan, structure),
            )
        assert incremental.metrics.counter("route/pair/hit") > 0

    def test_k_of_n_convenience(self, fattree4, inventory):
        scratch, incremental = _pair(fattree4, inventory)
        hosts = sorted(fattree4.hosts)[:3]
        _assert_identical(
            scratch.assess_k_of_n(hosts, k=2),
            incremental.assess_k_of_n(hosts, k=2),
        )


class TestCacheBehaviour:
    def test_closure_changing_move_misses_then_matches(
        self, fattree4, inventory
    ):
        """Moving a VM into a previously untouched pod must sample the new
        closure delta (cache misses for the new components) while staying
        bit-identical to from-scratch."""
        scratch, incremental = _pair(fattree4, inventory)
        structure = ApplicationStructure.k_of_n(2, 3)
        pods = sorted({h.split("/")[1] for h in fattree4.hosts})
        assert len(pods) >= 2
        in_pod = lambda pod: sorted(
            h for h in fattree4.hosts if h.split("/")[1] == pod
        )
        component = structure.components[0].name
        plan_a = DeploymentPlan.single_component(in_pod(pods[0])[:3], component)
        _assert_identical(
            scratch.assess(plan_a, structure),
            incremental.assess(plan_a, structure),
        )
        misses_before = incremental.metrics.counter("sample/component/miss")
        # Replace one placement with a host in another pod: new rack/edge
        # and aggregation gear enters the closure.
        hosts_b = in_pod(pods[0])[:2] + [in_pod(pods[1])[0]]
        plan_b = DeploymentPlan.single_component(sorted(hosts_b), component)
        _assert_identical(
            scratch.assess(plan_b, structure),
            incremental.assess(plan_b, structure),
        )
        assert (
            incremental.metrics.counter("sample/component/miss")
            > misses_before
        )

    def test_plan_cache_exact_hit(self, fattree4, inventory):
        _, incremental = _pair(fattree4, inventory)
        structure = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.random(fattree4, structure, rng=6)
        first = incremental.assess(plan, structure)
        hits_before = incremental.metrics.counter("plan_cache/hit")
        second = incremental.assess(plan, structure)
        assert incremental.metrics.counter("plan_cache/hit") == hits_before + 1
        _assert_identical(first, second)

    def test_clear_caches_preserves_results(self, fattree4, inventory):
        _, incremental = _pair(fattree4, inventory)
        structure = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.random(fattree4, structure, rng=6)
        before = incremental.assess(plan, structure)
        incremental.clear_caches()
        after = incremental.assess(plan, structure)
        _assert_identical(before, after)

    def test_reseed_changes_then_restores_stream(self, fattree4, inventory):
        _, incremental = _pair(fattree4, inventory)
        structure = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.random(fattree4, structure, rng=6)
        original = incremental.assess(plan, structure)
        incremental.reseed(MASTER_SEED + 1)
        assert incremental.master_seed == MASTER_SEED + 1
        other = incremental.assess(plan, structure)
        assert not np.array_equal(original.per_round, other.per_round)
        incremental.reseed(MASTER_SEED)
        restored = incremental.assess(plan, structure)
        _assert_identical(original, restored)


class TestConfiguration:
    def test_rounds_override_rejected(self, fattree4, inventory):
        _, incremental = _pair(fattree4, inventory)
        structure = ApplicationStructure.k_of_n(2, 3)
        plan = DeploymentPlan.random(fattree4, structure, rng=6)
        assert (
            incremental.assess(plan, structure, rounds=ROUNDS) is not None
        )  # matching override is fine
        with pytest.raises(ConfigurationError):
            incremental.assess(plan, structure, rounds=ROUNDS + 1)

    def test_non_crn_sampler_rejected(self, fattree4, inventory):
        with pytest.raises(ConfigurationError):
            IncrementalAssessor.from_config(
                fattree4,
                inventory,
                AssessmentConfig(
                    mode="incremental", sampler=MonteCarloSampler()
                ),
            )

    def test_crn_sampler_accepted_and_seed_exposed(self, fattree4, inventory):
        incremental = IncrementalAssessor.from_config(
            fattree4,
            inventory,
            AssessmentConfig(
                mode="incremental",
                sampler=CommonRandomDaggerSampler(99),
                rounds=ROUNDS,
            ),
        )
        assert incremental.master_seed == 99

    def test_foreign_dependency_model_rejected(self, fattree4, leafspine):
        foreign = build_paper_inventory(leafspine, seed=3)
        with pytest.raises(ConfigurationError):
            IncrementalAssessor(fattree4, foreign)
