"""Tests for shared utilities (repro.util)."""

import numpy as np
import pytest

from repro.util.errors import (
    DegradedResult,
    PortionTimeout,
    ReproError,
    SearchBudgetExceeded,
    WorkerFailure,
)
from repro.util.rng import (
    choice_without_replacement,
    derive_rng,
    make_rng,
    shuffled,
    spawn_rngs,
)
from repro.util.timing import Deadline, Stopwatch


class TestRng:
    def test_make_rng_from_int(self):
        a, b = make_rng(5), make_rng(5)
        assert a.random() == b.random()

    def test_make_rng_passthrough(self):
        rng = np.random.default_rng(1)
        assert make_rng(rng) is rng

    def test_make_rng_none(self):
        assert make_rng(None) is not None

    def test_derive_rng_same_key_same_stream(self):
        a = derive_rng(make_rng(1), "sampler", 3)
        b = derive_rng(make_rng(1), "sampler", 3)
        assert a.random() == b.random()

    def test_derive_rng_different_keys_differ(self):
        parent = make_rng(1)
        a = derive_rng(parent, "x")
        b = derive_rng(parent, "y")
        assert a.random() != b.random()

    def test_spawn_rngs_count(self):
        children = spawn_rngs(make_rng(2), 5)
        assert len(children) == 5
        values = {c.random() for c in children}
        assert len(values) == 5

    def test_spawn_rngs_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(make_rng(1), -1)

    def test_choice_without_replacement(self):
        chosen = choice_without_replacement(make_rng(3), list(range(10)), 4)
        assert len(chosen) == 4
        assert len(set(chosen)) == 4

    def test_choice_too_many(self):
        with pytest.raises(ValueError):
            choice_without_replacement(make_rng(3), [1, 2], 3)

    def test_shuffled_is_permutation(self):
        items = list(range(20))
        result = shuffled(make_rng(4), items)
        assert sorted(result) == items
        assert items == list(range(20))  # original untouched


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestStopwatch:
    def test_elapsed(self):
        clock = FakeClock()
        watch = Stopwatch(clock)
        clock.now += 2.5
        assert watch.elapsed() == pytest.approx(2.5)

    def test_reset(self):
        clock = FakeClock()
        watch = Stopwatch(clock)
        clock.now += 5
        watch.reset()
        clock.now += 1
        assert watch.elapsed() == pytest.approx(1.0)


class TestDeadline:
    def test_lifecycle(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock)
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(10.0)
        assert deadline.fraction_remaining() == pytest.approx(1.0)
        clock.now += 5
        assert deadline.fraction_remaining() == pytest.approx(0.5)
        clock.now += 6
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        assert deadline.fraction_remaining() == 0.0

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(SearchBudgetExceeded, ReproError)
        assert issubclass(WorkerFailure, ReproError)
        assert issubclass(PortionTimeout, WorkerFailure)
        assert issubclass(DegradedResult, ReproError)

    def test_budget_exceeded_carries_best(self):
        error = SearchBudgetExceeded("timeout", best_plan="p", best_score=0.9)
        assert error.best_plan == "p"
        assert error.best_score == 0.9

    def test_budget_exceeded_defaults(self):
        error = SearchBudgetExceeded("timeout")
        assert error.best_plan is None
        assert error.best_score is None

    def test_worker_failure_carries_context(self):
        error = WorkerFailure("boom", portion=2, attempt=1, failures=["x"])
        assert error.portion == 2
        assert error.attempt == 1
        assert error.failures == ("x",)
        assert error.kind == "error"

    def test_portion_timeout_carries_budget(self):
        error = PortionTimeout("slow", portion=0, attempt=2, timeout_seconds=1.5)
        assert error.timeout_seconds == 1.5
        assert error.kind == "timeout"

    def test_degraded_result_carries_failures(self):
        error = DegradedResult("all portions lost", failures=["a", "b"])
        assert error.failures == ("a", "b")

    def test_timeout_caught_as_worker_failure(self):
        with pytest.raises(WorkerFailure):
            raise PortionTimeout("slow")
