"""End-to-end integration tests crossing all subsystems.

These mirror the paper's workflows at miniature scale: the provider
receives requirements, searches for a plan, and the found plan beats the
baselines; complex structures assess end to end; the system degrades
gracefully with limited information; and everything composes on a second
architecture (leaf-spine).
"""

import numpy as np
import pytest

from repro.app.generators import microservice_mesh, multilayer, two_tier
from repro.app.structure import ApplicationStructure
from repro.baselines.common_practice import (
    common_practice_plan,
    enhanced_common_practice_plan,
)
from repro.baselines.indaas import IndaasComparator
from repro.core.assessment import ReliabilityAssessor
from repro.core.objectives import CompositeObjective, WorkloadUtilityObjective
from repro.core.plan import DeploymentPlan, enumerate_k_of_n_plans
from repro.core.search import DeploymentSearch, SearchSpec
from repro.faults.inventory import build_paper_inventory, build_rich_inventory
from repro.topology.fattree import FatTreeTopology
from repro.topology.leafspine import LeafSpineTopology
from repro.workload.model import HostWorkloadModel
from repro.core.api import AssessmentConfig


class FakeClock:
    def __init__(self, step=0.002):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestProviderWorkflow:
    def test_search_beats_common_practice_on_average(self, fattree8):
        """The headline comparison (Fig. 9) at tiny scale.

        The searched plan's failure odds should be meaningfully lower
        than the enhanced common practice's.
        """
        inventory = build_paper_inventory(fattree8, seed=2)
        workload = HostWorkloadModel.paper_default(fattree8, seed=3)
        structure = ApplicationStructure.k_of_n(4, 5)
        reference = ReliabilityAssessor(fattree8, inventory, config=AssessmentConfig(rounds=40_000, rng=99))

        ecp = enhanced_common_practice_plan(fattree8, workload, inventory, 5)
        ecp_score = reference.assess(ecp, structure).score

        assessor = ReliabilityAssessor(fattree8, inventory, config=AssessmentConfig(rounds=5_000, rng=5))
        search = DeploymentSearch(assessor, rng=7)
        result = search.search(SearchSpec(structure, max_seconds=8.0))
        found_score = reference.assess(result.best_plan, structure).score

        assert found_score > ecp_score - 0.002  # never meaningfully worse
        assert (1 - ecp_score) / max(1 - found_score, 1e-6) > 1.2

    def test_exhaustive_micro_search_confirms_annealing_target(self):
        """On a micro DC, annealing's best is close to the true optimum."""
        topo = FatTreeTopology(4, seed=21)
        inventory = build_paper_inventory(topo, seed=22)
        structure = ApplicationStructure.k_of_n(1, 2)
        assessor = ReliabilityAssessor(topo, inventory, config=AssessmentConfig(rounds=25_000, rng=23))

        best_exhaustive = max(
            assessor.assess(plan, structure).score
            for plan in enumerate_k_of_n_plans(topo.hosts, 2)
        )
        search = DeploymentSearch(assessor, rng=24, clock=FakeClock())
        result = search.search(
            SearchSpec(structure, max_seconds=5.0, max_iterations=60)
        )
        assert result.best_score >= best_exhaustive - 0.01

    def test_satisfied_search_reports_plan(self, fattree8):
        inventory = build_paper_inventory(fattree8, seed=2)
        assessor = ReliabilityAssessor(fattree8, inventory, config=AssessmentConfig(rounds=2_000, rng=5))
        search = DeploymentSearch(assessor, rng=6, clock=FakeClock())
        spec = SearchSpec(
            ApplicationStructure.k_of_n(1, 3),
            desired_reliability=0.95,
            max_seconds=30.0,
        )
        result = search.search(spec)
        assert result.satisfied
        assert result.best_score >= 0.95

    def test_multi_objective_search_balances(self, fattree8):
        """With a workload term, the search avoids hot hosts (§3.3.3)."""
        inventory = build_paper_inventory(fattree8, seed=2)
        loads = {h: 0.9 for h in fattree8.hosts}
        for h in fattree8.hosts[::4]:
            loads[h] = 0.05  # a quarter of the fleet is idle
        workload = HostWorkloadModel(loads)
        structure = ApplicationStructure.k_of_n(2, 3)
        assessor = ReliabilityAssessor(fattree8, inventory, config=AssessmentConfig(rounds=2_000, rng=5))
        # Weight utility heavily so its pull is unambiguous against the
        # log-odds reliability noise of a 2k-round assessment (Eq. 7's
        # weights are exactly the knob for this trade).
        objective = CompositeObjective.reliability_and_utility(
            WorkloadUtilityObjective(workload),
            reliability_weight=0.2,
            utility_weight=0.8,
        )
        # Iteration-capped with a fake clock so CPU contention from other
        # processes cannot starve the search of candidates.
        search = DeploymentSearch(
            assessor, objective=objective, rng=8, clock=FakeClock(0.002)
        )
        result = search.search(
            SearchSpec(structure, max_seconds=10.0, max_iterations=400)
        )
        assert workload.average(result.best_plan.hosts()) < 0.5


class TestComplexStructures:
    @pytest.mark.parametrize("layers", [1, 2, 3])
    def test_multilayer_assessment(self, fattree8, layers):
        inventory = build_paper_inventory(fattree8, seed=2)
        structure = multilayer(layers)
        assessor = ReliabilityAssessor(fattree8, inventory, config=AssessmentConfig(rounds=3_000, rng=5))
        plan = DeploymentPlan.random(fattree8, structure, rng=layers)
        result = assessor.assess(plan, structure)
        assert 0.5 < result.score <= 1.0

    def test_more_layers_cannot_increase_reliability(self, fattree8):
        """A longer chain has strictly more failure modes."""
        inventory = build_paper_inventory(fattree8, seed=2)
        rng = np.random.default_rng(17)
        scores = []
        for layers in (1, 3):
            structure = multilayer(layers)
            total = 0.0
            trials = 3
            for t in range(trials):
                plan = DeploymentPlan.random(fattree8, structure, rng=rng)
                assessor = ReliabilityAssessor(fattree8, inventory, config=AssessmentConfig(rounds=4_000, rng=100 + t))
                total += assessor.assess(plan, structure).score
            scores.append(total / trials)
        assert scores[1] <= scores[0] + 0.01

    def test_microservice_mesh_assessment(self, fattree8):
        inventory = build_paper_inventory(fattree8, seed=2)
        structure = microservice_mesh(3, 2, instances_per_component=2, k_per_component=1)
        assessor = ReliabilityAssessor(fattree8, inventory, config=AssessmentConfig(rounds=1_500, rng=5))
        plan = DeploymentPlan.random(fattree8, structure, rng=9)
        result = assessor.assess(plan, structure)
        assert 0.3 < result.score <= 1.0

    def test_two_tier_search(self, fattree8):
        inventory = build_paper_inventory(fattree8, seed=2)
        structure = two_tier()
        assessor = ReliabilityAssessor(fattree8, inventory, config=AssessmentConfig(rounds=2_000, rng=5))
        search = DeploymentSearch(assessor, rng=12)
        result = search.search(SearchSpec(structure, max_seconds=3.0))
        assert result.best_score > 0.9


class TestRichDependencies:
    def test_rich_inventory_end_to_end(self, fattree8):
        inventory = build_rich_inventory(fattree8, seed=4)
        assessor = ReliabilityAssessor(fattree8, inventory, config=AssessmentConfig(rounds=4_000, rng=5))
        result = assessor.assess_k_of_n(fattree8.hosts[:5], 4)
        assert 0.8 < result.score <= 1.0

    def test_redundant_power_beats_single_supplies(self, fattree8):
        """AND-gated power pairs are far more reliable than single PSUs."""
        single = build_paper_inventory(fattree8, seed=4)
        hosts = fattree8.hosts[:5]
        single_score = ReliabilityAssessor(fattree8, single, config=AssessmentConfig(rounds=20_000, rng=6)).assess_k_of_n(hosts, 4).score
        from repro.faults.dependencies import DependencyModel
        from repro.faults.inventory import attach_redundant_power

        redundant = DependencyModel.empty(fattree8)
        attach_redundant_power(redundant, pairs=5, seed=4)
        redundant_score = ReliabilityAssessor(fattree8, redundant, config=AssessmentConfig(rounds=20_000, rng=6)).assess_k_of_n(hosts, 4).score
        assert redundant_score > single_score


class TestSecondArchitecture:
    def test_leafspine_end_to_end(self):
        topo = LeafSpineTopology(spines=4, leaves=10, hosts_per_leaf=4, seed=2)
        inventory = build_paper_inventory(topo, seed=3)
        structure = ApplicationStructure.k_of_n(2, 3)
        assessor = ReliabilityAssessor(topo, inventory, config=AssessmentConfig(rounds=3_000, rng=5))
        search = DeploymentSearch(assessor, rng=6, clock=FakeClock())
        result = search.search(
            SearchSpec(structure, max_seconds=3.0, max_iterations=40)
        )
        assert 0.8 < result.best_score <= 1.0

    def test_indaas_on_leafspine(self):
        topo = LeafSpineTopology(spines=3, leaves=6, hosts_per_leaf=3, seed=2)
        inventory = build_paper_inventory(topo, seed=3)
        comparator = IndaasComparator(topo, inventory, rounds=2_000, rng=4)
        plans = [
            DeploymentPlan.single_component(topo.hosts[i : i + 2], "app")
            for i in (0, 4, 8)
        ]
        ranked = comparator.rank_plans(plans, k=1)
        assert len(ranked) == 3


class TestAdaptiveRedeployment:
    def test_recalculation_after_condition_change(self, fattree8):
        """The conclusion's scenario: periodically recalculate deployment
        as conditions vary; degraded hosts get evacuated."""
        inventory = build_paper_inventory(fattree8, seed=2)
        structure = ApplicationStructure.k_of_n(2, 3)
        assessor = ReliabilityAssessor(fattree8, inventory, config=AssessmentConfig(rounds=2_500, rng=5))
        search = DeploymentSearch(assessor, rng=6)
        first = search.search(SearchSpec(structure, max_seconds=2.0))

        # A rack hosting one instance degrades badly (bathtub wear-out).
        victim = first.best_plan.hosts()[0]
        fattree8.override_probabilities({victim: 0.35})
        assessor.refresh_probabilities()

        degraded_score = assessor.assess(first.best_plan, structure).score
        second = search.search(SearchSpec(structure, max_seconds=2.0))
        assert second.best_score > degraded_score
        assert victim not in second.best_plan.hosts()
