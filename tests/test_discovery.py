"""Tests for NSDMiner-style dependency discovery (repro.faults.discovery)."""

import pytest

from repro.faults.discovery import (
    DiscoveredDependency,
    Flow,
    NetworkDependencyMiner,
    attach_discovered_dependencies,
    generate_flow_log,
)
from repro.faults.dependencies import DependencyModel
from repro.util.errors import ConfigurationError
from repro.core.api import AssessmentConfig

GROUND_TRUTH = {
    "web": ["auth", "db"],
    "auth": ["db"],
    "batch": [],
}


class TestFlow:
    def test_rejects_negative_timestamp(self):
        with pytest.raises(ConfigurationError):
            Flow(-1.0, "a", "b")

    def test_rejects_self_flow(self):
        with pytest.raises(ConfigurationError):
            Flow(0.0, "a", "a")


class TestFlowLogGenerator:
    def test_flows_sorted_by_time(self):
        flows = generate_flow_log(GROUND_TRUTH, activity_windows=50, seed=1)
        times = [f.timestamp for f in flows]
        assert times == sorted(times)

    def test_ground_truth_edges_present(self):
        flows = generate_flow_log(GROUND_TRUTH, activity_windows=50, seed=1)
        observed = {(f.source_service, f.destination_service) for f in flows}
        assert ("web", "auth") in observed
        assert ("web", "db") in observed
        assert ("auth", "db") in observed

    def test_deterministic_given_seed(self):
        a = generate_flow_log(GROUND_TRUTH, activity_windows=20, seed=5)
        b = generate_flow_log(GROUND_TRUTH, activity_windows=20, seed=5)
        assert a == b

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            generate_flow_log(GROUND_TRUTH, activity_windows=0)
        with pytest.raises(ConfigurationError):
            generate_flow_log(GROUND_TRUTH, skip_probability=1.0)
        with pytest.raises(ConfigurationError):
            generate_flow_log({"only": []})


class TestMiner:
    def test_recovers_ground_truth(self):
        flows = generate_flow_log(
            GROUND_TRUTH, activity_windows=300, noise_flows_per_window=1.0, seed=2
        )
        graph = NetworkDependencyMiner().discover_graph(flows)
        assert sorted(graph["web"]) == ["auth", "db"]
        assert graph["auth"] == ["db"]
        assert "batch" not in graph

    def test_no_false_positives_from_noise(self):
        flows = generate_flow_log(
            GROUND_TRUTH, activity_windows=300, noise_flows_per_window=2.0, seed=3
        )
        discovered = NetworkDependencyMiner().discover(flows)
        truth_edges = {
            (s, t) for s, targets in GROUND_TRUTH.items() for t in targets
        }
        assert {(d.source_service, d.target_service) for d in discovered} == truth_edges

    def test_support_close_to_one_minus_skip(self):
        flows = generate_flow_log(
            GROUND_TRUTH,
            activity_windows=400,
            noise_flows_per_window=0.0,
            skip_probability=0.1,
            seed=4,
        )
        discovered = NetworkDependencyMiner().discover(flows)
        web_auth = next(
            d for d in discovered
            if (d.source_service, d.target_service) == ("web", "auth")
        )
        assert web_auth.support == pytest.approx(0.9, abs=0.05)

    def test_short_logs_report_nothing(self):
        flows = generate_flow_log(GROUND_TRUTH, activity_windows=2, seed=5)
        assert NetworkDependencyMiner(min_active_windows=5).discover(flows) == []

    def test_threshold_filters_flaky_pairs(self):
        # web talks to its logger every window (defining its activity)
        # but reaches db in only half of them: db is below a 0.9 support
        # threshold yet above a 0.3 one.
        flows = []
        for window in range(100):
            flows.append(Flow(window + 0.1, "web", "logger"))
            if window % 2 == 0:
                flows.append(Flow(window + 0.2, "web", "db"))
        strict = NetworkDependencyMiner(support_threshold=0.9)
        assert strict.discover_graph(flows) == {"web": ["logger"]}
        lenient = NetworkDependencyMiner(support_threshold=0.3)
        assert sorted(lenient.discover_graph(flows)["web"]) == ["db", "logger"]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            NetworkDependencyMiner(window_length=0)
        with pytest.raises(ConfigurationError):
            NetworkDependencyMiner(support_threshold=0)
        with pytest.raises(ConfigurationError):
            NetworkDependencyMiner(min_active_windows=0)


class TestBridgeToFaultTrees:
    def test_discovered_edges_become_branches(self, fattree4):
        model = DependencyModel.empty(fattree4)
        discovered = [
            DiscoveredDependency("web", "db", support=0.95),
            DiscoveredDependency("auth", "db", support=0.9),
        ]
        service_hosts = {"web": "host/0/0/0", "auth": "host/1/0/0"}
        created = attach_discovered_dependencies(model, service_hosts, discovered)
        assert created == ["service/db"]
        # Both hosts now fail when the shared db service fails.
        for host in service_hosts.values():
            assert model.tree_for(host).evaluate_round({"service/db"})
        assert "service/db" in model.shared_dependencies()

    def test_end_to_end_mining_into_assessment(self, fattree4):
        """Mined dependencies lower the assessed reliability."""
        from repro.core.assessment import ReliabilityAssessor

        hosts = ["host/0/0/0", "host/1/0/0", "host/2/0/0"]
        flows = generate_flow_log(
            {"svc0": ["shared"], "svc1": ["shared"], "svc2": ["shared"]},
            activity_windows=200,
            seed=7,
        )
        discovered = NetworkDependencyMiner().discover(flows)
        model = DependencyModel.empty(fattree4)
        attach_discovered_dependencies(
            model,
            {"svc0": hosts[0], "svc1": hosts[1], "svc2": hosts[2]},
            discovered,
            service_failure_probability=0.05,
        )
        with_deps = ReliabilityAssessor(fattree4, model, config=AssessmentConfig(rounds=20_000, rng=8))
        bare = ReliabilityAssessor(fattree4, DependencyModel.empty(fattree4), config=AssessmentConfig(rounds=20_000, rng=8))
        assert (
            with_deps.assess_k_of_n(hosts, 3).score
            < bare.assess_k_of_n(hosts, 3).score
        )

    def test_unknown_service_host_rejected(self, fattree4):
        model = DependencyModel.empty(fattree4)
        with pytest.raises(ConfigurationError):
            attach_discovered_dependencies(
                model, {}, [DiscoveredDependency("web", "db", 0.9)]
            )

    def test_bad_probability_rejected(self, fattree4):
        model = DependencyModel.empty(fattree4)
        with pytest.raises(ConfigurationError):
            attach_discovered_dependencies(
                model,
                {"web": "host/0/0/0"},
                [DiscoveredDependency("web", "db", 0.9)],
                service_failure_probability=0.0,
            )
