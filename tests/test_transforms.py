"""Tests for network-transformation symmetry signatures (repro.core.transforms)."""

import pytest

from repro.core.plan import DeploymentPlan
from repro.core.transforms import SignatureCache, SymmetryChecker
from repro.faults.inventory import build_paper_inventory
from repro.topology.fattree import FatTreeTopology
from repro.util.errors import ConfigurationError


@pytest.fixture
def uniform_fattree():
    """Fat-tree with uniform per-type probabilities so symmetry is exact."""
    from repro.faults.probability import DefaultProbabilityPolicy

    return FatTreeTopology(
        4, probability_policy=DefaultProbabilityPolicy(0.01), seed=3
    )


@pytest.fixture
def checker(uniform_fattree):
    return SymmetryChecker(uniform_fattree)


def plan_of(*hosts):
    return DeploymentPlan.single_component(list(hosts), "app")


class TestSignatures:
    def test_identical_plans_equal_signature(self, checker):
        a = plan_of("host/0/0/0", "host/1/0/0")
        b = plan_of("host/0/0/0", "host/1/0/0")
        assert checker.signature(a) == checker.signature(b)

    def test_pod_permutation_is_symmetric(self, checker):
        """Without shared dependencies, relabeling pods is an automorphism."""
        a = plan_of("host/0/0/0", "host/1/0/0")
        b = plan_of("host/1/0/0", "host/2/0/0")
        assert checker.signature(a) == checker.signature(b)
        assert checker.equivalent(a, b)

    def test_host_position_within_rack_symmetric(self, checker):
        a = plan_of("host/0/0/0")
        b = plan_of("host/0/0/1")
        assert checker.equivalent(a, b)

    def test_colocation_pattern_breaks_symmetry(self, checker):
        same_rack = plan_of("host/0/0/0", "host/0/0/1")
        same_pod = plan_of("host/0/0/0", "host/0/1/0")
        cross_pod = plan_of("host/0/0/0", "host/1/0/0")
        signatures = {
            checker.signature(same_rack),
            checker.signature(same_pod),
            checker.signature(cross_pod),
        }
        assert len(signatures) == 3
        assert not checker.equivalent(same_rack, cross_pod)

    def test_instance_order_irrelevant(self, checker):
        a = plan_of("host/0/0/0", "host/1/0/0")
        b = plan_of("host/1/0/0", "host/0/0/0")
        assert checker.signature(a) == checker.signature(b)

    def test_component_assignment_matters(self, checker):
        a = DeploymentPlan.from_mapping(
            {"fe": ["host/0/0/0", "host/0/0/1"], "db": ["host/1/0/0"]}
        )
        b = DeploymentPlan.from_mapping(
            {"fe": ["host/0/0/0", "host/1/0/0"], "db": ["host/0/0/1"]}
        )
        assert checker.signature(a) != checker.signature(b)


class TestProbabilityClasses:
    def test_different_probability_breaks_symmetry(self, uniform_fattree):
        """§3.3.1: same-type components with very different probabilities
        are logically different types."""
        uniform_fattree.override_probabilities({"host/0/0/0": 0.2})
        checker = SymmetryChecker(uniform_fattree)
        a = plan_of("host/0/0/0")
        b = plan_of("host/1/0/0")
        assert checker.signature(a) != checker.signature(b)
        assert not checker.equivalent(a, b)

    def test_similar_probabilities_quantised_together(self, uniform_fattree):
        uniform_fattree.override_probabilities(
            {"host/0/0/0": 0.0101, "host/1/0/0": 0.0099}
        )
        checker = SymmetryChecker(uniform_fattree, probability_decimals=2)
        assert checker.equivalent(plan_of("host/0/0/0"), plan_of("host/1/0/0"))

    def test_quantisation_granularity_configurable(self, uniform_fattree):
        uniform_fattree.override_probabilities(
            {"host/0/0/0": 0.0101, "host/1/0/0": 0.0099}
        )
        fine = SymmetryChecker(uniform_fattree, probability_decimals=4)
        assert not fine.equivalent(plan_of("host/0/0/0"), plan_of("host/1/0/0"))

    def test_rejects_negative_decimals(self, uniform_fattree):
        with pytest.raises(ConfigurationError):
            SymmetryChecker(uniform_fattree, probability_decimals=-1)


class TestSharedDependencies:
    def test_power_sharing_pattern_in_signature(self, uniform_fattree):
        """Plans with different power-supply sharing must differ."""
        model = build_paper_inventory(uniform_fattree, seed=5)
        checker = SymmetryChecker(uniform_fattree, model)
        hosts = uniform_fattree.hosts

        def rack_supply(host):
            events = model.tree_for(host).basic_events() - {host}
            return next(iter(events))

        # Find two cross-pod pairs: one sharing a rack supply, one not.
        shared_pair = diverse_pair = None
        for i, a in enumerate(hosts):
            for b in hosts[i + 1 :]:
                if uniform_fattree.pod_of(a) == uniform_fattree.pod_of(b):
                    continue
                if rack_supply(a) == rack_supply(b) and shared_pair is None:
                    shared_pair = (a, b)
                if rack_supply(a) != rack_supply(b) and diverse_pair is None:
                    diverse_pair = (a, b)
        assert shared_pair and diverse_pair
        assert not checker.equivalent(plan_of(*shared_pair), plan_of(*diverse_pair))


class TestSignatureCache:
    def test_records_and_hits(self, checker):
        cache = SignatureCache(checker)
        plan = plan_of("host/0/0/0", "host/1/0/0")
        assert cache.lookup(plan) is None
        cache.record(plan, 0.99)
        assert cache.lookup(plan) == 0.99
        # A symmetric plan hits the same entry.
        symmetric = plan_of("host/1/0/0", "host/2/0/0")
        assert cache.lookup(symmetric) == 0.99
        assert cache.hits == 2
        assert cache.misses == 1
        assert len(cache) == 1

    def test_different_pattern_misses(self, checker):
        cache = SignatureCache(checker)
        cache.record(plan_of("host/0/0/0", "host/1/0/0"), 0.9)
        assert cache.lookup(plan_of("host/0/0/0", "host/0/0/1")) is None


class TestBatchSymmetryFilter:
    """The search-loop wrapper must be verdict-identical to the checker:
    the host-label prefilter only proves inequivalence, the certificate
    fast path is a complete isomorphism invariant, and the WL + VF2
    fallback is the unwrapped check itself."""

    def _walk(self, topology, moves=60, seed=11):
        import numpy as np

        from repro.core.plan import DeploymentPlan

        rng = np.random.default_rng(seed)
        plan = DeploymentPlan.single_component(list(topology.hosts[:3]), "app")
        pairs = []
        for _ in range(moves):
            move = plan.propose_move(topology, rng=rng)
            neighbor = move.apply(plan)
            pairs.append((plan, move, neighbor))
            plan = neighbor
        return pairs

    def test_verdicts_match_unwrapped_checker(self, uniform_fattree):
        from repro.core.transforms import BatchSymmetryFilter

        filt = BatchSymmetryFilter(SymmetryChecker(uniform_fattree))
        reference = SymmetryChecker(uniform_fattree)
        verdicts = []
        for plan, move, neighbor in self._walk(uniform_fattree):
            verdict = filt.equivalent_move(plan, move, neighbor)
            assert verdict == reference.equivalent(plan, neighbor)
            verdicts.append(verdict)
        # The walk must exercise both verdicts for the test to mean much.
        assert any(verdicts) and not all(verdicts)

    def test_certificates_decide_small_plans(self, uniform_fattree):
        from repro.core.transforms import BatchSymmetryFilter

        filt = BatchSymmetryFilter(SymmetryChecker(uniform_fattree))
        for plan, move, neighbor in self._walk(uniform_fattree, moves=40):
            filt.equivalent_move(plan, move, neighbor)
        assert filt.certificate_checks > 0
        assert filt.full_checks == 0  # 3 instances never exceed the budget

    def test_certificate_none_over_permutation_budget(self, uniform_fattree):
        """Eight same-class instances (8! orderings) exceed the budget:
        the certificate declines and verdicts come from the exact
        WL + VF2 fallback, still matching the unwrapped checker."""
        from repro.core.transforms import BatchSymmetryFilter

        checker = SymmetryChecker(uniform_fattree)
        filt = BatchSymmetryFilter(checker)
        pod_host = lambda pod: [
            h for h in uniform_fattree.hosts if uniform_fattree.pod_of(h) == pod
        ]
        a = plan_of(*pod_host(0), *pod_host(1))
        b = plan_of(*pod_host(1), *pod_host(2))  # pods 0->1->2 relabelling
        assert filt.certificate(a) is None
        assert filt.equivalent(a, b)
        assert checker.equivalent(a, b)
        assert filt.full_checks > 0

    def test_reordered_instances_short_circuit(self, uniform_fattree):
        from repro.core.transforms import BatchSymmetryFilter

        filt = BatchSymmetryFilter(SymmetryChecker(uniform_fattree))
        a = plan_of("host/0/0/0", "host/1/0/0")
        b = plan_of("host/1/0/0", "host/0/0/0")
        assert filt.equivalent(a, b)
        assert filt.certificate_checks == filt.full_checks == 0

    def test_prefilter_rejects_differing_host_contexts(self, uniform_fattree):
        """A move between hosts of different probability classes is
        provably asymmetric from the context labels alone — no graph
        work, just the counter."""
        from repro.core.plan import MoveDescriptor
        from repro.core.transforms import BatchSymmetryFilter

        uniform_fattree.override_probabilities({"host/0/0/0": 0.2})
        filt = BatchSymmetryFilter(SymmetryChecker(uniform_fattree))
        assert filt.host_context_label("host/0/0/0") != filt.host_context_label(
            "host/2/0/0"
        )
        plan = plan_of("host/0/0/0", "host/1/0/0")
        move = MoveDescriptor("host/0/0/0", "host/2/0/0")
        assert not filt.equivalent_move(plan, move, move.apply(plan))
        assert filt.prefilter_rejections == 1
        assert filt.certificate_checks == filt.full_checks == 0
