"""Tests for network-transformation symmetry signatures (repro.core.transforms)."""

import pytest

from repro.core.plan import DeploymentPlan
from repro.core.transforms import SignatureCache, SymmetryChecker
from repro.faults.inventory import build_paper_inventory
from repro.topology.fattree import FatTreeTopology
from repro.util.errors import ConfigurationError


@pytest.fixture
def uniform_fattree():
    """Fat-tree with uniform per-type probabilities so symmetry is exact."""
    from repro.faults.probability import DefaultProbabilityPolicy

    return FatTreeTopology(
        4, probability_policy=DefaultProbabilityPolicy(0.01), seed=3
    )


@pytest.fixture
def checker(uniform_fattree):
    return SymmetryChecker(uniform_fattree)


def plan_of(*hosts):
    return DeploymentPlan.single_component(list(hosts), "app")


class TestSignatures:
    def test_identical_plans_equal_signature(self, checker):
        a = plan_of("host/0/0/0", "host/1/0/0")
        b = plan_of("host/0/0/0", "host/1/0/0")
        assert checker.signature(a) == checker.signature(b)

    def test_pod_permutation_is_symmetric(self, checker):
        """Without shared dependencies, relabeling pods is an automorphism."""
        a = plan_of("host/0/0/0", "host/1/0/0")
        b = plan_of("host/1/0/0", "host/2/0/0")
        assert checker.signature(a) == checker.signature(b)
        assert checker.equivalent(a, b)

    def test_host_position_within_rack_symmetric(self, checker):
        a = plan_of("host/0/0/0")
        b = plan_of("host/0/0/1")
        assert checker.equivalent(a, b)

    def test_colocation_pattern_breaks_symmetry(self, checker):
        same_rack = plan_of("host/0/0/0", "host/0/0/1")
        same_pod = plan_of("host/0/0/0", "host/0/1/0")
        cross_pod = plan_of("host/0/0/0", "host/1/0/0")
        signatures = {
            checker.signature(same_rack),
            checker.signature(same_pod),
            checker.signature(cross_pod),
        }
        assert len(signatures) == 3
        assert not checker.equivalent(same_rack, cross_pod)

    def test_instance_order_irrelevant(self, checker):
        a = plan_of("host/0/0/0", "host/1/0/0")
        b = plan_of("host/1/0/0", "host/0/0/0")
        assert checker.signature(a) == checker.signature(b)

    def test_component_assignment_matters(self, checker):
        a = DeploymentPlan.from_mapping(
            {"fe": ["host/0/0/0", "host/0/0/1"], "db": ["host/1/0/0"]}
        )
        b = DeploymentPlan.from_mapping(
            {"fe": ["host/0/0/0", "host/1/0/0"], "db": ["host/0/0/1"]}
        )
        assert checker.signature(a) != checker.signature(b)


class TestProbabilityClasses:
    def test_different_probability_breaks_symmetry(self, uniform_fattree):
        """§3.3.1: same-type components with very different probabilities
        are logically different types."""
        uniform_fattree.override_probabilities({"host/0/0/0": 0.2})
        checker = SymmetryChecker(uniform_fattree)
        a = plan_of("host/0/0/0")
        b = plan_of("host/1/0/0")
        assert checker.signature(a) != checker.signature(b)
        assert not checker.equivalent(a, b)

    def test_similar_probabilities_quantised_together(self, uniform_fattree):
        uniform_fattree.override_probabilities(
            {"host/0/0/0": 0.0101, "host/1/0/0": 0.0099}
        )
        checker = SymmetryChecker(uniform_fattree, probability_decimals=2)
        assert checker.equivalent(plan_of("host/0/0/0"), plan_of("host/1/0/0"))

    def test_quantisation_granularity_configurable(self, uniform_fattree):
        uniform_fattree.override_probabilities(
            {"host/0/0/0": 0.0101, "host/1/0/0": 0.0099}
        )
        fine = SymmetryChecker(uniform_fattree, probability_decimals=4)
        assert not fine.equivalent(plan_of("host/0/0/0"), plan_of("host/1/0/0"))

    def test_rejects_negative_decimals(self, uniform_fattree):
        with pytest.raises(ConfigurationError):
            SymmetryChecker(uniform_fattree, probability_decimals=-1)


class TestSharedDependencies:
    def test_power_sharing_pattern_in_signature(self, uniform_fattree):
        """Plans with different power-supply sharing must differ."""
        model = build_paper_inventory(uniform_fattree, seed=5)
        checker = SymmetryChecker(uniform_fattree, model)
        hosts = uniform_fattree.hosts

        def rack_supply(host):
            events = model.tree_for(host).basic_events() - {host}
            return next(iter(events))

        # Find two cross-pod pairs: one sharing a rack supply, one not.
        shared_pair = diverse_pair = None
        for i, a in enumerate(hosts):
            for b in hosts[i + 1 :]:
                if uniform_fattree.pod_of(a) == uniform_fattree.pod_of(b):
                    continue
                if rack_supply(a) == rack_supply(b) and shared_pair is None:
                    shared_pair = (a, b)
                if rack_supply(a) != rack_supply(b) and diverse_pair is None:
                    diverse_pair = (a, b)
        assert shared_pair and diverse_pair
        assert not checker.equivalent(plan_of(*shared_pair), plan_of(*diverse_pair))


class TestSignatureCache:
    def test_records_and_hits(self, checker):
        cache = SignatureCache(checker)
        plan = plan_of("host/0/0/0", "host/1/0/0")
        assert cache.lookup(plan) is None
        cache.record(plan, 0.99)
        assert cache.lookup(plan) == 0.99
        # A symmetric plan hits the same entry.
        symmetric = plan_of("host/1/0/0", "host/2/0/0")
        assert cache.lookup(symmetric) == 0.99
        assert cache.hits == 2
        assert cache.misses == 1
        assert len(cache) == 1

    def test_different_pattern_misses(self, checker):
        cache = SignatureCache(checker)
        cache.record(plan_of("host/0/0/0", "host/1/0/0"), 0.9)
        assert cache.lookup(plan_of("host/0/0/0", "host/0/0/1")) is None
