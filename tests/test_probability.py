"""Unit tests for failure-probability models (repro.faults.probability)."""

import numpy as np
import pytest

from repro.faults.component import ComponentType
from repro.faults.probability import (
    HOURS_PER_YEAR,
    PROBABILITY_DECIMALS,
    AhpProbabilityPolicy,
    BathtubCurve,
    DefaultProbabilityPolicy,
    NormalProbabilityModel,
    PaperProbabilityPolicy,
    annual_downtime_hours,
    failure_probability_from_downtime,
)
from repro.util.errors import ConfigurationError


class TestDowntimeConversion:
    def test_basic_estimator(self):
        # p = downtime / window length (§2.1)
        assert failure_probability_from_downtime(87.6, 8760) == pytest.approx(0.01)

    def test_zero_downtime(self):
        assert failure_probability_from_downtime(0.0) == 0.0

    def test_rejects_negative_downtime(self):
        with pytest.raises(ConfigurationError):
            failure_probability_from_downtime(-1.0)

    def test_rejects_downtime_exceeding_window(self):
        with pytest.raises(ConfigurationError):
            failure_probability_from_downtime(10.0, 5.0)

    def test_rejects_non_positive_window(self):
        with pytest.raises(ConfigurationError):
            failure_probability_from_downtime(1.0, 0.0)

    def test_annual_downtime_matches_paper_examples(self):
        # §4.2.2: 99.62 % ~ 33.3 h/yr, 99.97 % ~ 2.6 h/yr.
        assert annual_downtime_hours(0.9962) == pytest.approx(33.3, abs=0.3)
        assert annual_downtime_hours(0.9997) == pytest.approx(2.6, abs=0.1)

    def test_annual_downtime_bounds(self):
        assert annual_downtime_hours(1.0) == 0.0
        assert annual_downtime_hours(0.0) == HOURS_PER_YEAR

    def test_annual_downtime_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            annual_downtime_hours(1.1)


class TestNormalProbabilityModel:
    def test_draws_are_rounded(self, rng):
        model = NormalProbabilityModel(mean=0.01, stddev=0.001)
        draws = model.sample(rng, size=500)
        assert np.allclose(draws, np.round(draws, PROBABILITY_DECIMALS))

    def test_draws_clipped_to_range(self, rng):
        model = NormalProbabilityModel(mean=0.01, stddev=0.05, minimum=0.005, maximum=0.02)
        draws = model.sample(rng, size=2_000)
        assert draws.min() >= 0.005
        assert draws.max() <= 0.02

    def test_draws_never_zero(self, rng):
        # Dagger cycle lengths must stay finite.
        model = NormalProbabilityModel(mean=0.0001, stddev=0.001, minimum=1e-4)
        draws = model.sample(rng, size=2_000)
        assert draws.min() > 0.0

    def test_scalar_draw(self, rng):
        model = NormalProbabilityModel(mean=0.01, stddev=0.001)
        value = model.sample(rng)
        assert isinstance(value, float)
        assert 0 < value < 1

    def test_mean_is_respected(self, rng):
        model = NormalProbabilityModel(mean=0.01, stddev=0.001)
        draws = model.sample(rng, size=20_000)
        assert draws.mean() == pytest.approx(0.01, abs=5e-4)

    def test_rejects_negative_stddev(self):
        with pytest.raises(ConfigurationError):
            NormalProbabilityModel(mean=0.01, stddev=-0.1)

    def test_rejects_bad_clip_range(self):
        with pytest.raises(ConfigurationError):
            NormalProbabilityModel(mean=0.01, stddev=0.001, minimum=0.5, maximum=0.1)


class TestPaperProbabilityPolicy:
    def test_switches_use_switch_model(self, rng):
        policy = PaperProbabilityPolicy()
        draws = [
            policy.probability_for(ComponentType.CORE_SWITCH, rng) for _ in range(500)
        ]
        assert np.mean(draws) == pytest.approx(0.008, abs=1e-3)

    def test_hosts_use_default_model(self, rng):
        policy = PaperProbabilityPolicy()
        draws = [policy.probability_for(ComponentType.HOST, rng) for _ in range(500)]
        assert np.mean(draws) == pytest.approx(0.01, abs=1e-3)

    def test_links_default_to_perfectly_reliable(self, rng):
        policy = PaperProbabilityPolicy()
        assert policy.probability_for(ComponentType.LINK, rng) == 0.0

    def test_link_probability_override(self, rng):
        policy = PaperProbabilityPolicy(link_probability=0.05)
        assert policy.probability_for(ComponentType.LINK, rng) == 0.05


class TestDefaultProbabilityPolicy:
    def test_same_value_for_all_non_links(self, rng):
        policy = DefaultProbabilityPolicy(default_probability=0.02)
        for ctype in (ComponentType.HOST, ComponentType.CORE_SWITCH, ComponentType.POWER_SUPPLY):
            assert policy.probability_for(ctype, rng) == 0.02

    def test_rejects_out_of_range_default(self):
        with pytest.raises(ConfigurationError):
            DefaultProbabilityPolicy(default_probability=0.0)
        with pytest.raises(ConfigurationError):
            DefaultProbabilityPolicy(default_probability=1.0)


class TestAhpProbabilityPolicy:
    def test_from_pairwise_matrix_weights(self, rng):
        types = [ComponentType.HOST, ComponentType.CORE_SWITCH]
        # Hosts judged 3x more failure-prone than switches.
        policy = AhpProbabilityPolicy.from_pairwise_matrix(
            types, [[1, 3], [1 / 3, 1]], base_probability=0.01
        )
        host_p = policy.probability_for(ComponentType.HOST, rng)
        switch_p = policy.probability_for(ComponentType.CORE_SWITCH, rng)
        assert host_p == pytest.approx(3 * switch_p, rel=1e-6)

    def test_mean_weight_maps_to_base(self, rng):
        types = [ComponentType.HOST, ComponentType.CORE_SWITCH]
        policy = AhpProbabilityPolicy.from_pairwise_matrix(
            types, [[1, 1], [1, 1]], base_probability=0.01
        )
        assert policy.probability_for(ComponentType.HOST, rng) == pytest.approx(0.01)

    def test_unknown_type_uses_base(self, rng):
        policy = AhpProbabilityPolicy(
            type_weights={ComponentType.HOST: 1.0}, base_probability=0.03
        )
        assert policy.probability_for(ComponentType.COOLING, rng) == 0.03

    def test_rejects_empty_weights(self):
        with pytest.raises(ConfigurationError):
            AhpProbabilityPolicy(type_weights={})

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ConfigurationError):
            AhpProbabilityPolicy(type_weights={ComponentType.HOST: 0.0})

    def test_rejects_mismatched_matrix(self):
        with pytest.raises(ConfigurationError):
            AhpProbabilityPolicy.from_pairwise_matrix(
                [ComponentType.HOST], [[1, 2], [0.5, 1]]
            )

    def test_rejects_non_positive_comparisons(self):
        with pytest.raises(ConfigurationError):
            AhpProbabilityPolicy.from_pairwise_matrix(
                [ComponentType.HOST, ComponentType.LINK], [[1, -2], [-0.5, 1]]
            )


class TestBathtubCurve:
    def test_infant_mortality_elevated(self):
        curve = BathtubCurve(plateau_probability=0.01)
        assert curve.probability_at(0.0) > curve.probability_at(0.5)

    def test_wearout_elevated(self):
        curve = BathtubCurve(plateau_probability=0.01)
        assert curve.probability_at(1.0) > curve.probability_at(0.5)

    def test_plateau_close_to_base(self):
        curve = BathtubCurve(plateau_probability=0.01)
        mid = curve.probability_at(0.5)
        assert 0.01 <= mid < 0.013

    def test_age_clamped(self):
        curve = BathtubCurve(plateau_probability=0.01)
        assert curve.probability_at(-5.0) == curve.probability_at(0.0)
        assert curve.probability_at(99.0) == curve.probability_at(curve.lifetime)

    def test_probability_never_reaches_one(self):
        curve = BathtubCurve(plateau_probability=0.5, wearout_factor=100.0)
        assert curve.probability_at(1.0) < 1.0

    def test_rejects_bad_plateau(self):
        with pytest.raises(ConfigurationError):
            BathtubCurve(plateau_probability=0.0)

    def test_rejects_bad_lifetime(self):
        with pytest.raises(ConfigurationError):
            BathtubCurve(plateau_probability=0.01, lifetime=-1.0)
