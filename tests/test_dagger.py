"""Unit + property tests for dagger sampling (repro.sampling.dagger)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.dagger import (
    CommonRandomDaggerSampler,
    DaggerSampler,
    ExtendedDaggerSampler,
    dagger_cycle_length,
    dagger_draw_count,
)
from repro.sampling.montecarlo import MonteCarloSampler


class TestCycleLength:
    def test_paper_example(self):
        # p = 0.3 -> s = 3 subintervals (Fig. 3).
        assert dagger_cycle_length(0.3) == 3

    def test_exact_reciprocal(self):
        assert dagger_cycle_length(0.25) == 4

    def test_small_probability(self):
        assert dagger_cycle_length(0.01) == 100

    def test_large_probability(self):
        assert dagger_cycle_length(0.9) == 1

    def test_rejects_zero_and_one(self):
        with pytest.raises(ValueError):
            dagger_cycle_length(0.0)
        with pytest.raises(ValueError):
            dagger_cycle_length(1.0)


class TestDrawCount:
    def test_single_component(self):
        # p = 0.01, s = 100, 1000 rounds -> 10 cycles -> 10 draws.
        assert dagger_draw_count({"c": 0.01}, 1_000) == 10

    def test_heterogeneous_extended(self):
        # Longest cycle: s=100 (p=0.01). Block = 100 rounds.
        # p=0.5 (s=2) needs ceil(100/2)=50 draws per block.
        assert dagger_draw_count({"a": 0.01, "b": 0.5}, 100) == 1 + 50

    def test_far_fewer_than_monte_carlo(self):
        probabilities = {f"c{i}": 0.01 for i in range(50)}
        rounds = 10_000
        dagger = dagger_draw_count(probabilities, rounds)
        monte_carlo = len(probabilities) * rounds
        assert dagger * 50 < monte_carlo

    def test_zero_probability_needs_no_draws(self):
        assert dagger_draw_count({"c": 0.0}, 1_000) == 0

    def test_zero_rounds(self):
        assert dagger_draw_count({"c": 0.1}, 0) == 0


class TestFig3Examples:
    """The worked examples of the paper's Fig. 3, reproduced exactly."""

    def _states_for(self, r: float) -> list[bool]:
        """Failure states over one cycle for p=0.3 given the draw ``r``."""
        p, s = 0.3, 3
        offset = math.floor(r / p)
        return [offset == i for i in range(s)]

    def test_r_in_second_subinterval(self):
        # Fig. 3a: r=0.4 -> {'alive', 'failed', 'alive'}.
        assert self._states_for(0.4) == [False, True, False]

    def test_r_in_remainder(self):
        # Fig. 3b: r=0.95 -> all alive.
        assert self._states_for(0.95) == [False, False, False]

    def test_r_in_first_subinterval(self):
        assert self._states_for(0.0) == [True, False, False]

    def test_r_at_boundary(self):
        assert self._states_for(0.6) == [False, False, True]


@pytest.mark.parametrize("sampler_cls", [DaggerSampler, ExtendedDaggerSampler])
class TestDaggerSamplers:
    def test_at_most_one_failure_per_own_cycle(self, sampler_cls, rng):
        """Dagger fails a component in <= 1 round per (own) dagger cycle."""
        p = 0.2
        s = dagger_cycle_length(p)
        batch = sampler_cls().sample({"c": p}, 10_000, rng)
        failed = batch.rounds_failed("c")
        cycles = failed // s
        assert len(np.unique(cycles)) == len(cycles)

    def test_failed_rounds_sorted_unique(self, sampler_cls, rng):
        batch = sampler_cls().sample({"c": 0.3}, 5_000, rng)
        failed = batch.rounds_failed("c")
        assert np.all(np.diff(failed) > 0)

    def test_failed_rounds_in_range(self, sampler_cls, rng):
        batch = sampler_cls().sample({"c": 0.3}, 777, rng)
        failed = batch.rounds_failed("c")
        assert failed.min() >= 0
        assert failed.max() < 777

    def test_marginal_rate_matches_p(self, sampler_cls, rng):
        """Unbiasedness: expected fraction of failed rounds is p (§3.2.2)."""
        p, rounds = 0.01, 200_000
        batch = sampler_cls().sample({"c": p}, rounds, rng)
        rate = batch.failure_fraction("c")
        sigma = math.sqrt(p * (1 - p) / rounds)
        assert abs(rate - p) < 5 * sigma

    def test_zero_probability_component_never_fails(self, sampler_cls, rng):
        batch = sampler_cls().sample({"c": 0.0, "d": 0.5}, 1_000, rng)
        assert batch.rounds_failed("c").size == 0

    def test_empty_probabilities(self, sampler_cls, rng):
        batch = sampler_cls().sample({}, 100, rng)
        assert batch.total_failure_events() == 0

    def test_many_components(self, sampler_cls, rng):
        probabilities = {f"c{i}": 0.05 for i in range(40)}
        batch = sampler_cls().sample(probabilities, 2_000, rng)
        rates = [batch.failure_fraction(f"c{i}") for i in range(40)]
        assert np.mean(rates) == pytest.approx(0.05, abs=0.01)

    @given(p=st.floats(min_value=0.001, max_value=0.9), seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_property_marginal_rate(self, sampler_cls, p, seed):
        rounds = 30_000
        rng = np.random.default_rng(seed)
        batch = sampler_cls().sample({"c": p}, rounds, rng)
        rate = batch.failure_fraction("c")
        sigma = math.sqrt(p * (1 - p) / rounds)
        # Dagger variance is *at most* the Bernoulli variance.
        assert abs(rate - p) < 6 * sigma + 1e-9


class TestExtendedDaggerSpecifics:
    def test_heterogeneous_components_all_sampled(self, rng):
        probabilities = {"fast": 0.3, "slow": 0.001, "mid": 0.05}
        batch = ExtendedDaggerSampler().sample(probabilities, 50_000, rng)
        for cid, p in probabilities.items():
            rate = batch.failure_fraction(cid)
            sigma = math.sqrt(p * (1 - p) / 50_000)
            assert abs(rate - p) < 6 * sigma

    def test_truncation_keeps_marginal_rate(self, rng):
        """Cycle reset at the longest cycle must not bias shorter cycles.

        With p1=0.4 (s=2) and p2=0.001 (s=1000), p1's cycles are truncated
        at every 1000-round boundary; its rate must remain 0.4.
        """
        rounds = 100_000
        batch = ExtendedDaggerSampler().sample({"a": 0.4, "b": 0.001}, rounds, rng)
        assert batch.failure_fraction("a") == pytest.approx(0.4, abs=0.01)


class TestVarianceReduction:
    def test_dagger_variance_not_worse_than_monte_carlo(self):
        """Dagger's per-window failure-count variance is below Bernoulli's.

        This is the variance-reduction effect the paper leans on (§3.2.2):
        within a cycle the states are negatively correlated.
        """
        p, rounds, trials = 0.1, 1_000, 200
        s = dagger_cycle_length(p)

        def window_counts(sampler, seed):
            batch = sampler.sample({"c": p}, rounds, np.random.default_rng(seed))
            return batch.rounds_failed("c").size

        dagger_counts = [window_counts(ExtendedDaggerSampler(), i) for i in range(trials)]
        mc_counts = [window_counts(MonteCarloSampler(), i) for i in range(trials)]
        # Dagger: variance only from the remainder section; MC: full binomial.
        assert np.var(dagger_counts) < np.var(mc_counts)


class TestCommonRandomDagger:
    def test_same_master_seed_same_states(self, rng):
        s1 = CommonRandomDaggerSampler(master_seed=99)
        s2 = CommonRandomDaggerSampler(master_seed=99)
        b1 = s1.sample({"a": 0.1, "b": 0.05}, 5_000, rng)
        b2 = s2.sample({"a": 0.1, "b": 0.05}, 5_000, np.random.default_rng(7))
        for cid in ("a", "b"):
            assert np.array_equal(b1.rounds_failed(cid), b2.rounds_failed(cid))

    def test_shared_components_coupled_across_closures(self, rng):
        """A component's states must not depend on the rest of the set."""
        sampler = CommonRandomDaggerSampler(master_seed=5)
        small = sampler.sample({"shared": 0.1}, 2_000, rng)
        large = sampler.sample(
            {"shared": 0.1, "extra1": 0.2, "extra2": 0.01}, 2_000, rng
        )
        assert np.array_equal(
            small.rounds_failed("shared"), large.rounds_failed("shared")
        )

    def test_reseed_changes_states(self, rng):
        sampler = CommonRandomDaggerSampler(master_seed=1)
        before = sampler.sample({"a": 0.2}, 5_000, rng)
        sampler.reseed(2)
        after = sampler.sample({"a": 0.2}, 5_000, rng)
        assert not np.array_equal(before.rounds_failed("a"), after.rounds_failed("a"))

    def test_marginal_rate_unbiased_over_seeds(self):
        p, rounds = 0.05, 2_000
        rates = []
        for seed in range(200):
            sampler = CommonRandomDaggerSampler(master_seed=seed)
            batch = sampler.sample({"c": p}, rounds, np.random.default_rng(0))
            rates.append(batch.failure_fraction("c"))
        assert np.mean(rates) == pytest.approx(p, abs=0.005)

    def test_distinct_components_distinct_streams(self, rng):
        sampler = CommonRandomDaggerSampler(master_seed=3)
        batch = sampler.sample({"a": 0.3, "b": 0.3}, 10_000, rng)
        assert not np.array_equal(batch.rounds_failed("a"), batch.rounds_failed("b"))
