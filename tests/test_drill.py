"""The deterministic failure-drill engine.

Covers the layers bottom-up: the occurrence-addressed fault-point
registry, schedule (de)serialization, the seams threaded into the
production durability modules (journal, store, decision journal), the
whole-stack drill with its invariant checkers, campaign + shrinking +
reproducer replay, and the ``repro drill`` CLI. The heavyweight proof —
that a deliberately seeded fsync bug is caught, shrunk to a handful of
events and replays deterministically — lives in ``TestSeededBug``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random

import pytest

from repro.cli import EXIT_DRILL, EXIT_OK, main
from repro.drill.engine import (
    load_verdict,
    replay_reproducer,
    run_campaign,
    run_drill,
    write_verdict,
)
from repro.drill.faultpoints import (
    CATALOG,
    FAULT_CATALOG,
    FaultCommand,
    FaultPoints,
    SimulatedCrash,
    armed,
    fault_hit,
)
from repro.drill.schedule import (
    _UNDRAWN_POINTS,
    FaultEvent,
    FaultSchedule,
    random_schedule,
)
from repro.service.journal import RequestJournal
from repro.service.redeploy import DecisionJournal
from repro.service.store import ResultStore
from repro.util.errors import ConfigurationError


class TestFaultPoints:
    def test_rejects_unknown_point_and_kind(self):
        registry = FaultPoints()
        with pytest.raises(ValueError, match="unknown fault point"):
            registry.add("no.such.seam", FaultCommand("crash"))
        with pytest.raises(ValueError, match="does not honour"):
            registry.add("journal.append", FaultCommand("kill"))

    def test_occurrence_addressing(self):
        registry = FaultPoints()
        registry.add("store.put", FaultCommand("crash"), occurrence=2)
        assert registry.hit("store.put") is None
        assert registry.hit("store.put") is None
        assert registry.hit("store.put").kind == "crash"
        assert registry.hit("store.put") is None
        assert registry.counters["store.put"] == 4
        assert registry.fired == [
            {"point": "store.put", "occurrence": 2, "kind": "crash"}
        ]

    def test_wildcard_occurrence_fires_every_time(self):
        registry = FaultPoints()
        registry.add("worker.heartbeat", FaultCommand("drop"))
        assert registry.hit("worker.heartbeat").kind == "drop"
        assert registry.hit("worker.heartbeat").kind == "drop"

    def test_disarmed_seam_is_noop(self):
        assert fault_hit("journal.append") is None

    def test_armed_scopes_the_registry(self):
        registry = FaultPoints()
        registry.add("store.put", FaultCommand("crash"), occurrence=0)
        with armed(registry):
            assert fault_hit("store.put").kind == "crash"
        assert fault_hit("store.put") is None
        assert registry.counters["store.put"] == 1

    def test_disable_stops_injecting_but_keeps_counting(self):
        registry = FaultPoints()
        registry.add("store.put", FaultCommand("crash"))
        registry.disable()
        assert registry.hit("store.put") is None
        assert registry.counters["store.put"] == 1

    def test_power_loss_truncates_to_durable_watermark(self, tmp_path):
        path = tmp_path / "file.bin"
        path.write_bytes(b"0123456789")
        registry = FaultPoints()
        registry.add("journal.fsync", FaultCommand("skip_fsync"))
        registry.hit("journal.fsync", path=str(path), durable=4)
        lost = registry.apply_power_loss()
        assert lost == [(str(path), 4)]
        assert path.read_bytes() == b"0123"
        assert registry.unsynced == {}

    def test_fault_catalog_excludes_deliberate_bugs(self):
        assert "journal.fsync" in CATALOG
        assert "journal.fsync" not in FAULT_CATALOG


class TestSchedule:
    def test_json_round_trip(self):
        schedule = random_schedule(random.Random(3), max_events=5)
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_random_schedules_draw_faults_only_at_finite_occurrences(self):
        rng = random.Random(17)
        for _ in range(200):
            for event in random_schedule(rng, max_events=5).events:
                assert event.point in FAULT_CATALOG
                assert event.point not in _UNDRAWN_POINTS
                assert event.occurrence is not None
                assert event.command in FAULT_CATALOG[event.point]

    def test_with_bug_prepends_the_bug_events(self):
        base = FaultSchedule((FaultEvent("store.put", "io_error", 3),))
        seeded = base.with_bug("no-journal-fsync")
        assert len(seeded) == 3
        assert seeded.events[0].point == "journal.fsync"
        assert seeded.events[0].command == "skip_fsync"
        assert seeded.events[-1] == base.events[0]

    def test_build_validates_against_the_catalog(self):
        bad = FaultSchedule((FaultEvent("journal.append", "kill", 0),))
        with pytest.raises(ValueError):
            bad.build()


class TestProductionSeams:
    def test_journal_torn_append_truncated_on_reopen(self, tmp_path):
        registry = FaultPoints()
        registry.add(
            "journal.append", FaultCommand("torn", arg=7), occurrence=1
        )
        with armed(registry):
            journal = RequestJournal(tmp_path)
            journal.accepted("req-1", "assess", {"hosts": ["h0"], "k": 1})
            with pytest.raises(SimulatedCrash):
                journal.accepted("req-2", "assess", {"hosts": ["h0"], "k": 1})
        # The torn tail is dropped on reopen; req-1 survives untouched and
        # the journal is appendable again.
        journal = RequestJournal(tmp_path)
        state = journal.replay()
        assert [p.request_id for p in state.pending] == ["req-1"]
        journal.completed("req-1", "ok")
        journal.close()
        assert RequestJournal.scan(tmp_path).terminal_ids == {"req-1"}

    def test_skip_fsync_bug_loses_acked_records_on_power_loss(self, tmp_path):
        registry = FaultPoints()
        registry.add("journal.fsync", FaultCommand("skip_fsync"))
        with armed(registry):
            journal = RequestJournal(tmp_path)
            journal.accepted("req-1", "assess", {"hosts": ["h0"], "k": 1})
            journal.accepted("req-2", "assess", {"hosts": ["h0"], "k": 1})
            registry.apply_power_loss()
            journal.close()
        # Both acknowledged admissions evaporated with the page cache —
        # exactly the defect the no-journal-fsync campaign must catch.
        state = RequestJournal.scan(tmp_path)
        assert state.pending == []
        assert state.max_request_number == 0

    def test_store_put_io_error_is_transient(self, tmp_path):
        store = ResultStore(tmp_path)
        registry = FaultPoints()
        registry.add("store.put", FaultCommand("io_error"), occurrence=0)
        with armed(registry):
            with pytest.raises(OSError):
                store.put("key", {"status": "ok"})
            store.put("key", {"status": "ok"})
        assert store.get("key") == {"status": "ok"}

    def test_decision_journal_unterminated_line_is_torn(self, tmp_path):
        path = tmp_path / "decisions.jsonl"
        journal = DecisionJournal(str(path))
        journal.append({"record": "a"})
        # A crash after the bytes but before the newline: the line parses,
        # but without its terminator it is not durable.
        with open(path, "ab") as handle:
            handle.write(json.dumps({"record": "b"}).encode("utf-8"))
        records, torn = journal.scan()
        assert [r["record"] for r in records] == ["a"]
        assert torn == 1
        records, torn = journal.scan(repair=True)
        assert torn == 1
        journal.append({"record": "c"})
        records, torn = journal.scan()
        assert [r["record"] for r in records] == ["a", "c"]
        assert torn == 0

    def test_decision_journal_mid_file_corruption_is_loud(self, tmp_path):
        path = tmp_path / "decisions.jsonl"
        journal = DecisionJournal(str(path))
        journal.append({"record": "a"})
        journal.append({"record": "b"})
        data = path.read_bytes().replace(b'"a"', b'"a', 1)
        path.write_bytes(data)
        with pytest.raises(ConfigurationError, match="corrupt at line"):
            journal.scan()


class TestDrillEngine:
    def test_clean_drill_is_bit_reproducible(self):
        schedule = random_schedule(random.Random(11), max_events=3)
        first = run_drill(11, schedule, shards=2, requests=6)
        second = run_drill(11, schedule, shards=2, requests=6)
        assert first.passed, first.violations
        assert first.to_dict() == second.to_dict()

    def test_clean_campaign_passes(self):
        report = run_campaign(rounds=3, seed=7, shards=2, requests=6)
        assert report.passed
        assert report.rounds_run == 3
        assert report.total_submissions > 0

    def test_unknown_bug_name_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown seeded bug"):
            run_campaign(rounds=1, seed=7, bug="no-such-bug")

    def test_verdict_round_trips_and_tolerates_absence(self, tmp_path):
        assert load_verdict(str(tmp_path)) is None
        report = run_campaign(rounds=1, seed=3, shards=2, requests=4)
        write_verdict(str(tmp_path), report)
        verdict = load_verdict(str(tmp_path))
        assert verdict["passed"] is True
        assert verdict["rounds_run"] == 1


class TestSeededBug:
    def test_fsync_bug_is_caught_shrunk_and_replays_deterministically(
        self, tmp_path
    ):
        report = run_campaign(
            rounds=5,
            seed=7,
            bug="no-journal-fsync",
            out_dir=str(tmp_path),
        )
        # Caught: the campaign fails, and the invariant that trips is the
        # durability contract the bug breaks.
        assert not report.passed
        violated = {v.invariant for v in report.failure.violations}
        assert violated  # at least one named invariant
        # Shrunk: the minimal reproducer is a handful of events.
        assert report.shrunk_events is not None
        assert report.shrunk_events <= 5
        assert report.shrunk_events <= report.original_events
        # Replayable: the reproducer file re-runs to the same verdict,
        # bit-for-bit, twice.
        assert report.reproducer_path is not None
        assert os.path.exists(report.reproducer_path)
        first = replay_reproducer(report.reproducer_path)
        second = replay_reproducer(report.reproducer_path)
        assert not first.passed
        assert first.to_dict() == second.to_dict()
        assert violated & {v.invariant for v in first.violations}


class TestDrillCli:
    def test_campaign_pass_exits_zero(self, capsys):
        assert (
            main(
                ["drill", "--rounds", "2", "--seed", "7", "--shards", "2",
                 "--requests", "6"]
            )
            == EXIT_OK
        )
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_seeded_bug_campaign_fails_and_replays(self, tmp_path, capsys):
        code = main(
            [
                "drill",
                "--rounds", "5",
                "--seed", "7",
                "--seed-bug", "no-journal-fsync",
                "--out", os.fspath(tmp_path),
            ]
        )
        assert code == EXIT_DRILL
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "shrunk" in out
        verdict = load_verdict(os.fspath(tmp_path))
        assert verdict["passed"] is False
        reproducers = [
            name
            for name in os.listdir(tmp_path)
            if name.startswith("drill-repro-")
        ]
        assert len(reproducers) == 1
        replay_path = os.path.join(os.fspath(tmp_path), reproducers[0])
        assert main(["drill", "--replay", replay_path]) == EXIT_DRILL
        assert "REPRODUCED" in capsys.readouterr().out


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the worker fleet requires the fork start method",
)
class TestRealFleetSeam:
    def test_dropped_started_message_is_harmless(self, tmp_path):
        """The real forked fleet inherits an armed registry; dropping a
        worker's ``started`` protocol message must not affect the reply
        (the journal simply never learns the request began)."""
        from repro.service.fleet import FleetSupervisor
        from repro.service.requests import AssessRequest
        from repro.service.scheduler import ServiceConfig

        registry = FaultPoints()
        # Each worker's first send is its first task's "started".
        registry.add("fleet.worker.send", FaultCommand("drop"), occurrence=0)
        config = ServiceConfig(
            scale="tiny",
            seed=1,
            rounds=200,
            chunks=4,
            queue_capacity=16,
            fleet_workers=2,
            journal_dir=os.fspath(tmp_path),
        )
        with armed(registry):
            with FleetSupervisor(config) as fleet:
                hosts = tuple(
                    c
                    for c in fleet.topology.components
                    if c.startswith("host")
                )[:3]
                response = fleet.assess(
                    AssessRequest(hosts=hosts, k=2), timeout=60
                )
                assert response.status == "ok"
