"""Input validation at the API boundary.

Every entry point (deployment plans, assessment configs, service
requests) collects *all* field-level problems and raises one
:class:`ValidationError`, which is both a ``ConfigurationError`` (old
handlers keep working) and a typed record the service can serialize.
"""

from __future__ import annotations

import pytest

from repro.app.structure import ApplicationStructure
from repro.core.api import AssessmentConfig, build_assessor
from repro.core.plan import DeploymentPlan
from repro.service.requests import AssessRequest, SearchRequest
from repro.util.errors import ConfigurationError, ValidationError

STRUCTURE = ApplicationStructure.k_of_n(2, 3)


class TestValidationError:
    def test_collects_every_field(self):
        exc = ValidationError([("a", "bad"), ("b", "worse")])
        assert exc.errors == (("a", "bad"), ("b", "worse"))
        assert exc.fields() == ("a", "b")
        assert "a: bad" in str(exc) and "b: worse" in str(exc)

    def test_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            raise ValidationError([("x", "nope")])

    def test_as_dict_is_json_ready(self):
        document = ValidationError([("k", "must be >= 1")]).as_dict()
        assert document["error"] == "validation"
        assert document["errors"] == [{"field": "k", "message": "must be >= 1"}]

    def test_empty_error_list_is_rejected(self):
        with pytest.raises(ValueError):
            ValidationError([])


class TestPlanValidation:
    def test_valid_plan_passes(self, fattree4):
        plan = DeploymentPlan.single_component(
            fattree4.hosts[:3], STRUCTURE.components[0].name
        )
        plan.validate_against(fattree4, STRUCTURE)

    def test_unknown_host_is_a_field_error(self, fattree4):
        plan = DeploymentPlan.single_component(
            list(fattree4.hosts[:2]) + ["host/nowhere"],
            STRUCTURE.components[0].name,
        )
        with pytest.raises(ValidationError) as excinfo:
            plan.validate_against(fattree4, STRUCTURE)
        assert "hosts" in excinfo.value.fields()
        assert "host/nowhere" in str(excinfo.value)

    def test_non_host_component_is_reported(self, fattree4):
        switch = next(
            cid for cid in fattree4.components if not cid.startswith("host")
        )
        plan = DeploymentPlan.single_component(
            list(fattree4.hosts[:2]) + [switch], STRUCTURE.components[0].name
        )
        with pytest.raises(ValidationError) as excinfo:
            plan.validate_against(fattree4, STRUCTURE)
        assert "not a host" in str(excinfo.value)

    def test_wrong_instance_count_names_the_component(self, fattree4):
        plan = DeploymentPlan.single_component(
            fattree4.hosts[:2], STRUCTURE.components[0].name
        )
        with pytest.raises(ValidationError) as excinfo:
            plan.validate_against(fattree4, STRUCTURE)
        name = STRUCTURE.components[0].name
        assert f"placements.{name}" in excinfo.value.fields()

    def test_multiple_problems_reported_together(self, fattree4):
        # Wrong count AND an unknown host: both must appear in one error.
        plan = DeploymentPlan.single_component(
            [fattree4.hosts[0], "host/nowhere"], STRUCTURE.components[0].name
        )
        with pytest.raises(ValidationError) as excinfo:
            plan.validate_against(fattree4, STRUCTURE)
        fields = excinfo.value.fields()
        assert any(f.startswith("placements.") for f in fields)
        assert "hosts" in fields

    def test_capacity_exhaustion_is_reported(self, fattree4):
        from repro.workload.capacity import CapacityModel

        capacity = CapacityModel.uniform(fattree4, slots_per_host=1)
        victim = fattree4.hosts[0]
        capacity.occupy_hosts([victim])
        plan = DeploymentPlan.single_component(
            fattree4.hosts[:3], STRUCTURE.components[0].name
        )
        with pytest.raises(ValidationError) as excinfo:
            plan.validate_against(fattree4, STRUCTURE, capacity=capacity)
        assert "capacity" in excinfo.value.fields()
        assert victim in str(excinfo.value)


class TestAssessmentConfigValidation:
    def test_valid_config_passes(self, fattree4):
        AssessmentConfig(rounds=100).validate(fattree4)

    def test_parallel_cross_field_checks(self):
        config = AssessmentConfig(mode="parallel", workers=2)
        bad = config.with_updates(workers=0, backend="quantum")
        with pytest.raises(ValidationError) as excinfo:
            bad.validate()
        assert set(excinfo.value.fields()) == {"workers", "backend"}

    def test_workers_ignored_outside_parallel_mode(self):
        # Sequential mode does not read workers/backend; no error.
        AssessmentConfig(mode="sequential", workers=0, backend="quantum").validate()

    def test_negative_master_seed_rejected(self):
        with pytest.raises(ValidationError) as excinfo:
            AssessmentConfig(master_seed=-1).validate()
        assert excinfo.value.fields() == ("master_seed",)

    def test_unphysical_probabilities_reported(self, fattree4):
        class BrokenTopology:
            components = fattree4.components
            hosts = fattree4.hosts

            def failure_probabilities(self):
                probabilities = fattree4.failure_probabilities()
                first = next(iter(probabilities))
                probabilities[first] = 1.5
                return probabilities

        with pytest.raises(ValidationError) as excinfo:
            AssessmentConfig(rounds=100).validate(BrokenTopology())
        assert "topology.failure_probabilities" in excinfo.value.fields()
        assert "1.5" in str(excinfo.value)

    def test_build_assessor_validates(self, fattree4, inventory):
        with pytest.raises(ValidationError):
            build_assessor(
                fattree4,
                inventory,
                AssessmentConfig(mode="parallel", workers=0),
            )


class TestAssessRequest:
    def test_valid_request_passes(self, fattree4):
        AssessRequest(hosts=tuple(fattree4.hosts[:3]), k=2).validate(fattree4)

    def test_all_problems_in_one_error(self, fattree4):
        request = AssessRequest(
            hosts=("host/nowhere", "host/nowhere"),
            k=0,
            rounds=0,
            deadline_seconds=-1.0,
        )
        with pytest.raises(ValidationError) as excinfo:
            request.validate(fattree4)
        fields = set(excinfo.value.fields())
        assert {"hosts", "k", "rounds", "deadline_seconds"} <= fields

    def test_unknown_host_flood_is_summarised(self, fattree4):
        request = AssessRequest(
            hosts=tuple(f"host/fake/{i}" for i in range(9)), k=2
        )
        with pytest.raises(ValidationError) as excinfo:
            request.validate(fattree4)
        assert "more unknown hosts" in str(excinfo.value)

    def test_k_exceeding_hosts(self, fattree4):
        request = AssessRequest(hosts=tuple(fattree4.hosts[:2]), k=3)
        with pytest.raises(ValidationError) as excinfo:
            request.validate(fattree4)
        assert "k" in excinfo.value.fields()

    def test_from_dict_accepts_comma_string_hosts(self):
        request = AssessRequest.from_dict(
            {"hosts": "a, b ,c", "k": 2, "deadline_seconds": 1}
        )
        assert request.hosts == ("a", "b", "c")
        assert request.deadline_seconds == 1.0

    def test_from_dict_shape_errors_are_field_errors(self):
        with pytest.raises(ValidationError) as excinfo:
            AssessRequest.from_dict({"hosts": 7, "k": "two", "rounds": True})
        assert set(excinfo.value.fields()) == {"hosts", "k", "rounds"}


class TestSearchRequest:
    def test_valid_request_passes(self, fattree4):
        SearchRequest(k=2, n=3).validate(fattree4)

    def test_cross_field_and_topology_checks(self, fattree4):
        with pytest.raises(ValidationError) as excinfo:
            SearchRequest(k=5, n=3).validate(fattree4)
        assert "k" in excinfo.value.fields()
        with pytest.raises(ValidationError) as excinfo:
            SearchRequest(k=2, n=10_000).validate(fattree4)
        assert "n" in excinfo.value.fields()

    def test_budget_and_reliability_ranges(self, fattree4):
        request = SearchRequest(
            k=2, n=3, max_seconds=0.0, desired_reliability=1.5
        )
        with pytest.raises(ValidationError) as excinfo:
            request.validate(fattree4)
        assert {"max_seconds", "desired_reliability"} <= set(
            excinfo.value.fields()
        )

    def test_from_dict_requires_k_and_n(self):
        with pytest.raises(ValidationError) as excinfo:
            SearchRequest.from_dict({})
        assert set(excinfo.value.fields()) == {"k", "n"}

    def test_from_dict_defaults(self):
        request = SearchRequest.from_dict({"k": 2, "n": 3})
        assert request.max_seconds == 5.0
        assert request.desired_reliability == 1.0
        assert request.rounds is None
