"""Fault-injection tests for the supervised runtime (repro.runtime.chaos).

The acceptance bar: with crashes and hangs injected into at least a
quarter of the portions, the supervised assessor must still produce an
estimate statistically consistent with the inline backend, and
``partial_ok`` must degrade honestly (flagged result, widened bounds)
instead of raising.
"""

import numpy as np
import pytest

from repro.app.structure import ApplicationStructure
from repro.core.plan import DeploymentPlan
from repro.runtime.chaos import ChaosAction, ChaosPolicy
from repro.runtime.mapreduce import ParallelAssessor, RetryPolicy
from repro.util.errors import ConfigurationError, DegradedResult, WorkerFailure
from repro.core.api import AssessmentConfig


@pytest.fixture
def structure():
    return ApplicationStructure.k_of_n(2, 3)


@pytest.fixture
def plan(fattree4, structure):
    return DeploymentPlan.random(fattree4, structure, rng=4)


class TestChaosPolicy:
    def test_explicit_targets(self):
        policy = ChaosPolicy(crash={0}, hang={1}, error={2}, delay={3: 0.5})
        assert policy.action_for(0, 0) == ChaosAction("crash")
        assert policy.action_for(1, 0).kind == "hang"
        assert policy.action_for(2, 0).kind == "error"
        assert policy.action_for(3, 0) == ChaosAction("delay", 0.5)
        assert policy.action_for(4, 0) is None

    def test_transient_by_default(self):
        policy = ChaosPolicy(crash={0})
        assert policy.action_for(0, 0) is not None
        assert policy.action_for(0, 1) is None  # retry goes through

    def test_max_attempts_extends_sabotage(self):
        policy = ChaosPolicy(crash={0}, max_attempts=3)
        assert all(policy.action_for(0, a) is not None for a in range(3))
        assert policy.action_for(0, 3) is None

    def test_rate_mode_deterministic(self):
        policy = ChaosPolicy(rate=0.5, seed=9)
        first = [policy.action_for(i, 0) for i in range(32)]
        second = [policy.action_for(i, 0) for i in range(32)]
        assert first == second
        assert any(a is not None for a in first)
        assert any(a is None for a in first)

    def test_targeted_portions(self):
        policy = ChaosPolicy(crash={0, 2}, hang={1})
        assert policy.targeted_portions(4) == {0, 1, 2}

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            ChaosPolicy(rate=1.5)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            ChaosPolicy(rate=0.5, kinds=("meteor",))

    def test_rejects_bad_max_attempts(self):
        with pytest.raises(ConfigurationError):
            ChaosPolicy(max_attempts=0)


class TestSupervisedRecovery:
    def test_consistent_under_crash_and_hang(
        self, fattree4, inventory, plan, structure
    ):
        """Crashes + hangs on 50% of portions: retries and pool restarts
        recover every round, and the estimate stays within the same
        tolerance as the fault-free process/inline equivalence test."""
        chaos = ChaosPolicy(crash={0, 2}, hang={1})
        assert len(chaos.targeted_portions(4)) >= 1  # >= 25% of 4 portions
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=20_000, workers=4, rng=3, backend="process", retry_policy=RetryPolicy(
                timeout_seconds=1.0, max_retries=2, backoff_seconds=0.01
            ), chaos=chaos)) as pa:
            chaotic = pa.assess(plan, structure)
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=20_000, workers=4, rng=3, backend="inline")) as pa:
            inline = pa.assess(plan, structure)
        assert chaotic.estimate.rounds == 20_000
        assert chaotic.score == pytest.approx(inline.score, abs=0.015)
        assert not chaotic.degraded
        runtime = chaotic.runtime
        assert runtime.retries >= 3  # every sabotaged portion retried
        assert runtime.pool_restarts >= 1  # hang forced at least one
        assert len(runtime.failures) >= 3

    def test_error_injection_recovers_without_restart(
        self, fattree4, inventory, plan, structure
    ):
        chaos = ChaosPolicy(error={0, 1})
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=4_000, workers=2, rng=3, backend="process", retry_policy=RetryPolicy(max_retries=2, backoff_seconds=0.01), chaos=chaos)) as pa:
            result = pa.assess(plan, structure)
        assert result.estimate.rounds == 4_000
        assert result.runtime.retries == 2
        assert result.runtime.pool_restarts == 0

    def test_persistent_failure_recovers_inline(
        self, fattree4, inventory, plan, structure
    ):
        """A portion that fails on every attempt falls back to inline
        execution in the master, still completing all rounds."""
        chaos = ChaosPolicy(error={0}, max_attempts=10)
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=2_000, workers=2, rng=3, backend="process", retry_policy=RetryPolicy(max_retries=1, backoff_seconds=0.01), chaos=chaos)) as pa:
            result = pa.assess(plan, structure)
        assert result.estimate.rounds == 2_000
        assert result.runtime.recovered_inline == 1
        assert not result.degraded

    def test_partial_ok_degrades_with_widened_bounds(
        self, fattree4, inventory, plan, structure
    ):
        """partial_ok drops exhausted portions instead of recovering them:
        the result is flagged degraded and its CI honestly widened."""
        chaos = ChaosPolicy(error={0}, max_attempts=10)
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=4_000, workers=2, rng=3, backend="process", retry_policy=RetryPolicy(max_retries=1, backoff_seconds=0.01), chaos=chaos, partial_ok=True)) as pa:
            degraded = pa.assess(plan, structure)
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=4_000, workers=2, rng=3, backend="process")) as pa:
            healthy = pa.assess(plan, structure)
        assert degraded.degraded
        assert degraded.runtime.dropped_portions == 1
        assert degraded.per_round.size < 4_000
        assert degraded.runtime.dropped_rounds == 4_000 - degraded.per_round.size
        # Fewer rounds AND a missing-data penalty: strictly wider CI.
        assert (
            degraded.estimate.confidence_interval_width
            > healthy.estimate.confidence_interval_width
        )
        assert degraded.runtime.failures  # the drop is recorded, not hidden

    def test_all_portions_lost_raises_degraded_result(
        self, fattree4, inventory, plan, structure
    ):
        chaos = ChaosPolicy(error={0, 1}, max_attempts=10)
        with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=2_000, workers=2, rng=3, backend="process", retry_policy=RetryPolicy(max_retries=0), chaos=chaos, partial_ok=True)) as pa:
            # Inline recovery is off (partial_ok) and every portion fails:
            # nothing remains to estimate from.
            with pytest.raises(DegradedResult):
                pa.assess(plan, structure)

    def test_exhausted_without_partial_ok_raises_worker_failure(
        self, fattree4, inventory, plan, structure, monkeypatch
    ):
        """If even the master's inline fallback fails, the failure is
        reported as WorkerFailure with the attempt history attached."""
        chaos = ChaosPolicy(error={0, 1}, max_attempts=10)
        pa = ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=2_000, workers=2, rng=3, backend="process", retry_policy=RetryPolicy(max_retries=0), chaos=chaos))
        monkeypatch.setattr(
            pa, "_inline_portion",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("inline down")),
        )
        try:
            with pytest.raises(WorkerFailure) as excinfo:
                pa.assess(plan, structure)
            assert excinfo.value.failures
        finally:
            pa.close()

    def test_deterministic_under_chaos(self, fattree4, inventory, plan, structure):
        """Same seed + same chaos policy => identical estimate, because
        retried portions reseed deterministically."""
        def run():
            with ParallelAssessor(fattree4, inventory, config=AssessmentConfig(mode="parallel", rounds=4_000, workers=2, rng=3, backend="process", retry_policy=RetryPolicy(max_retries=2, backoff_seconds=0.01), chaos=ChaosPolicy(error={0}))) as pa:
                return pa.assess(plan, structure)

        a, b = run(), run()
        assert a.score == b.score
        assert np.array_equal(a.per_round, b.per_round)
        assert a.runtime.portion_seeds == b.runtime.portion_seeds
