#!/usr/bin/env python3
"""Auditing a deployment plan's exposure to single failures.

The outages that motivate the paper (GitHub's power disruption, AWS's
storage error, Azure's power event — §1) were all *single shared events*
taking down supposedly redundant instances. This example audits two
plans with the risk analyzer:

* a naive plan packing instances into one rack, and
* the plan reCloud finds,

listing, for every component in the relevant closure, what its lone
failure would cost — and verifying the searched plan keeps every single
failure's blast radius at one instance.

Run:  python examples/risk_audit.py
"""

from repro.core.api import AssessmentConfig
from repro import (
    ApplicationStructure,
    DeploymentPlan,
    DeploymentSearch,
    ReliabilityAssessor,
    RiskAnalyzer,
    SearchSpec,
    build_paper_inventory,
    paper_topology,
)


def print_report(title, entries, top=8):
    print(f"\n{title}")
    print(f"{'component':<24} {'type':<18} {'p':>8} {'lost':>5} {'app down':>9}")
    for entry in entries[:top]:
        print(
            f"{entry.component_id:<24} {entry.component_type:<18} "
            f"{entry.failure_probability:>8.4f} {entry.instances_lost:>5} "
            f"{'YES' if entry.application_down else '-':>9}"
        )


def main() -> None:
    topology = paper_topology("small", seed=1)
    inventory = build_paper_inventory(topology, seed=2)
    structure = ApplicationStructure.k_of_n(4, 5)
    analyzer = RiskAnalyzer(topology, inventory)

    # A naive plan: four instances in one rack plus one stray.
    rack_hosts = topology.hosts_in_rack("edge/0/0")
    naive = DeploymentPlan.single_component(
        rack_hosts[:4] + ["host/1/0/0"], "app"
    )
    report = analyzer.report(naive, structure)
    print_report("Naive plan (4 instances share rack edge/0/0):", report)
    worst = analyzer.max_instances_lost_to_one_failure(naive, structure)
    spofs = analyzer.single_points_of_failure(naive, structure)
    print(f"  worst single-failure blast radius: {worst} instances")
    print(f"  single points of failure: {[e.component_id for e in spofs]}")

    # reCloud's plan, searched on reliability alone.
    assessor = ReliabilityAssessor(topology, inventory, config=AssessmentConfig(rounds=8_000, rng=3))
    search = DeploymentSearch(assessor, rng=4)
    found = search.search(
        SearchSpec(structure, max_seconds=8.0, forbid_shared_rack=True)
    ).best_plan
    report = analyzer.report(found, structure)
    print_report("reCloud plan (reliability search only):", report)
    worst = analyzer.max_instances_lost_to_one_failure(found, structure)
    print(f"  worst single-failure blast radius: {worst} instances")
    # With only 5 supplies for the whole data center, the score search
    # sometimes *consolidates* instances behind the single most reliable
    # supply (one small correlated risk beats several) - a perfectly
    # rational optimum that an operator may still refuse to run. The
    # audit makes it visible; encoding it as a resource constraint
    # (§3.3.3: "quickly discard any generated deployment plans that do
    # not satisfy resource constraints") forbids it outright:

    def supply_footprint(host):
        """Every power supply whose lone failure cuts this host off:
        the host group's own supply plus its edge switch's supply."""
        edge = topology.edge_switch_of(host)
        deps = (inventory.tree_for(host).basic_events() - {host}) | (
            inventory.tree_for(edge).basic_events() - {edge}
        )
        return frozenset(d for d in deps if d.startswith("power/"))

    def no_shared_supply(plan):
        seen: set[str] = set()
        for host in plan.hosts():
            footprint = supply_footprint(host)
            if footprint & seen:
                return False
            seen |= footprint
        return True

    # Build a filter-satisfying starting point: prefer hosts whose rack
    # and edge switch hang off the *same* supply (footprint of one), one
    # per distinct supply - with 5 supplies that is the only way five
    # instances can avoid all sharing.
    chosen: list[str] = []
    used: set[str] = set()
    for host in topology.hosts:
        footprint = supply_footprint(host)
        if len(footprint) == 1 and not (footprint & used):
            chosen.append(host)
            used |= footprint
        if len(chosen) == 5:
            break
    if len(chosen) < 5:
        raise SystemExit("no fully supply-diverse placement exists at this scale")
    initial = DeploymentPlan.single_component(chosen, "app")
    constrained = DeploymentSearch(
        assessor, resource_filter=no_shared_supply, rng=5
    )
    found2 = constrained.search(
        SearchSpec(structure, max_seconds=8.0), initial_plan=initial
    ).best_plan
    report2 = analyzer.report(found2, structure)
    print_report("reCloud plan with supply-diversity constraint:", report2)
    worst2 = analyzer.max_instances_lost_to_one_failure(found2, structure)
    print(f"  worst single-failure blast radius: {worst2} instances")

    # Concrete what-if: the highest-impact shared dependency fails.
    top_dependency = next(
        (e for e in report2 if e.component_id.startswith("power/")), report2[0]
    )
    survives, counts = analyzer.what_if(
        found2, structure, [top_dependency.component_id]
    )
    print(
        f"\nWhat if {top_dependency.component_id} fails alone? "
        f"active instances = {counts['app']}/5, "
        f"application {'survives' if survives else 'DOWN'}"
    )


if __name__ == "__main__":
    main()
