#!/usr/bin/env python3
"""Assessing a microservices application (§3.2.4, §4.2.3).

Builds the paper's "X-Y" microservice structure — X fully-meshed core
services, each with Y supporting services — and shows:

1. quantitative reliability assessment with rigorous error bounds for a
   structure with dozens of components, and
2. how the reliability of a random placement degrades as the mesh grows,
   while a short reCloud search recovers most of it.

Run:  python examples/microservices.py
"""

import time

from repro.core.api import AssessmentConfig
from repro import (
    DeploymentPlan,
    DeploymentSearch,
    ReliabilityAssessor,
    SearchSpec,
    build_paper_inventory,
    microservice_mesh,
    paper_topology,
)


def main() -> None:
    topology = paper_topology("small", seed=1)
    inventory = build_paper_inventory(topology, seed=2)
    assessor = ReliabilityAssessor(topology, inventory, config=AssessmentConfig(rounds=5_000, rng=3))

    print("Random placements for growing microservice meshes:")
    print(f"{'structure':<14} {'components':>11} {'instances':>10} "
          f"{'R(random)':>10} {'CI width':>10} {'assess ms':>10}")
    meshes = [(2, 3), (3, 5), (5, 10)]
    for cores, supports in meshes:
        structure = microservice_mesh(cores, supports)
        plan = DeploymentPlan.random(topology, structure, rng=cores)
        start = time.perf_counter()
        result = assessor.assess(plan, structure)
        elapsed = (time.perf_counter() - start) * 1e3
        print(
            f"{structure.name:<14} {len(structure.components):>11} "
            f"{structure.total_instances:>10} {result.score:>10.4f} "
            f"{result.estimate.confidence_interval_width:>10.2e} "
            f"{elapsed:>10.1f}"
        )

    # Search for a better placement of the 3-5 mesh.
    structure = microservice_mesh(3, 5)
    print(f"\nSearching a better placement for {structure.name} "
          f"({structure.total_instances} instances)...")
    search = DeploymentSearch(assessor, rng=7)
    result = search.search(SearchSpec(structure, max_seconds=15.0))

    reference = ReliabilityAssessor(topology, inventory, config=AssessmentConfig(rounds=20_000, rng=9))
    random_score = reference.assess(
        DeploymentPlan.random(topology, structure, rng=3), structure
    ).score
    found_score = reference.assess(result.best_plan, structure).score
    print(f"  random placement : R = {random_score:.4f}")
    print(f"  reCloud placement: R = {found_score:.4f} "
          f"(after {result.plans_assessed} assessments, "
          f"{result.plans_skipped_symmetric} symmetric skips)")
    print(
        "\nEvery component kept its 4-of-5 redundancy; the search only "
        "moved instances away from shared power supplies and shared "
        "edge/aggregation switches."
    )


if __name__ == "__main__":
    main()
