#!/usr/bin/env python3
"""Quickstart: find a reliable deployment plan for a 4-of-5 application.

This walks the paper's basic scenario end to end (§2.2):

1. the cloud provider operates a fat-tree data center with shared power
   supplies (correlated-failure dependencies);
2. a developer asks for 5 instances, at least 4 alive, searched within a
   small time budget;
3. reCloud searches, and we compare the found plan with the operators'
   common practice and a plain random placement.

Run:  python examples/quickstart.py
"""

from repro import (
    ApplicationStructure,
    DeploymentPlan,
    DeploymentSearch,
    HostWorkloadModel,
    ReliabilityAssessor,
    SearchSpec,
    build_paper_inventory,
    common_practice_plan,
    enhanced_common_practice_plan,
    paper_topology,
    power_diversity,
)
from repro.faults.probability import annual_downtime_hours
from repro.core.api import AssessmentConfig


def main() -> None:
    # --- The provider's infrastructure -------------------------------
    print("Building the 'small' data center (k=16 fat-tree, 960 hosts)...")
    topology = paper_topology("small", seed=1)
    print(f"  {topology!r}")

    inventory = build_paper_inventory(topology, seed=2)
    print(
        f"  dependency inventory: {inventory.dependency_count()} shared "
        f"power supplies, {len(inventory.shared_dependencies())} of them "
        "shared across elements"
    )

    # --- The developer's requirements (§2.2) -------------------------
    structure = ApplicationStructure.k_of_n(4, 5)
    spec = SearchSpec(
        structure,
        desired_reliability=1.0,  # unattainable: use the whole budget
        max_seconds=10.0,
    )
    print(f"\nRequirements: {structure.name} redundancy, T_max = {spec.max_seconds}s")

    # --- Search (§3.3) -------------------------------------------------
    assessor = ReliabilityAssessor(topology, inventory, config=AssessmentConfig(rounds=10_000, rng=3))
    search = DeploymentSearch(assessor, rng=4)
    result = search.search(spec)
    print(
        f"\nreCloud searched {result.plans_considered} plans "
        f"({result.plans_skipped_symmetric} discarded via network symmetry) "
        f"in {result.elapsed_seconds:.1f}s"
    )
    print(f"  found plan : {result.best_plan}")
    print(f"  reliability: {result.best_assessment.estimate}")

    # --- Baselines (§4.2.2) -------------------------------------------
    reference = ReliabilityAssessor(topology, inventory, config=AssessmentConfig(rounds=40_000, rng=9))
    workload = HostWorkloadModel.paper_default(topology, seed=5)

    plans = {
        "random placement": DeploymentPlan.random(topology, structure, rng=6),
        "common practice": common_practice_plan(topology, workload, 5),
        "enhanced common practice": enhanced_common_practice_plan(
            topology, workload, inventory, 5
        ),
        "reCloud": result.best_plan,
    }
    print(f"\n{'strategy':<26} {'R':>9} {'downtime/yr':>12} {'power div.':>11}")
    for name, plan in plans.items():
        estimate = reference.assess(plan, structure).estimate
        print(
            f"{name:<26} {estimate.score:>9.4f} "
            f"{annual_downtime_hours(estimate.score):>10.1f}h "
            f"{power_diversity(inventory, plan):>11}"
        )


if __name__ == "__main__":
    main()
