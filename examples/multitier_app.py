#!/usr/bin/env python3
"""Deploying a multi-tier web application (the paper's Fig. 6 scenario).

A classic three-tier stack — load-balancing frontends, application
servers, backend databases — where each tier must reach the next and the
frontends must be reachable from the Internet. The example contrasts:

* a *pure-reliability* search, which spreads everything as far apart as
  possible, with
* a *multi-objective* search (§3.3.3) that also values inter-tier
  bandwidth locality, pulling communicating tiers closer while keeping
  redundancy meaningful.

Run:  python examples/multitier_app.py
"""

from repro.core.api import AssessmentConfig
from repro import (
    ApplicationStructure,
    BandwidthUtilityObjective,
    ComponentSpec,
    CompositeObjective,
    DeploymentSearch,
    EXTERNAL,
    ReachabilityRequirement,
    ReliabilityAssessor,
    SearchSpec,
    build_paper_inventory,
    paper_topology,
)


def three_tier_structure() -> ApplicationStructure:
    """3 frontends / 4 app servers / 3 databases with per-tier K values.

    The paper's `N_Ci` / `K_{Ci,Cj}` notation maps 1:1 onto the
    requirement list below.
    """
    return ApplicationStructure(
        components=[
            ComponentSpec("frontend", 3),
            ComponentSpec("appserver", 4),
            ComponentSpec("database", 3),
        ],
        requirements=[
            # At least 2 frontends reachable from the border switches.
            ReachabilityRequirement("frontend", EXTERNAL, 2),
            # At least 3 app servers reachable from the live frontends.
            ReachabilityRequirement("appserver", "frontend", 3),
            # At least 2 databases reachable from the live app servers.
            ReachabilityRequirement("database", "appserver", 2),
        ],
        name="three-tier",
    )


def describe(topology, plan) -> str:
    parts = []
    for component, hosts in plan.placements:
        pods = sorted({topology.pod_of(h) for h in hosts})
        parts.append(f"{component}: pods {pods}")
    return "; ".join(parts)


def main() -> None:
    topology = paper_topology("small", seed=1)
    inventory = build_paper_inventory(topology, seed=2)
    structure = three_tier_structure()
    print(f"Structure: {structure!r}")

    assessor = ReliabilityAssessor(topology, inventory, config=AssessmentConfig(rounds=8_000, rng=3))
    reference = ReliabilityAssessor(topology, inventory, config=AssessmentConfig(rounds=30_000, rng=9))
    bandwidth = BandwidthUtilityObjective(topology, structure)

    # Pure reliability.
    search = DeploymentSearch(assessor, rng=4)
    pure = search.search(SearchSpec(structure, max_seconds=8.0))

    # Reliability + bandwidth locality, equal weights (Eq. 7).
    objective = CompositeObjective.reliability_and_utility(bandwidth)
    search = DeploymentSearch(assessor, objective=objective, rng=5)
    balanced = search.search(SearchSpec(structure, max_seconds=8.0))

    print(f"\n{'objective':<26} {'R':>9} {'bandwidth utility':>18}")
    for name, result in (("reliability only", pure), ("reliability + bandwidth", balanced)):
        score = reference.assess(result.best_plan, structure).score
        locality = bandwidth.measure(result.best_plan, None)
        print(f"{name:<26} {score:>9.4f} {locality:>18.3f}")
        print(f"    placement: {describe(topology, result.best_plan)}")

    print(
        "\nThe balanced plan trades a little spread for locality: tiers "
        "that talk sit closer (higher bandwidth utility) while the "
        "reliability stays in the same band."
    )


if __name__ == "__main__":
    main()
