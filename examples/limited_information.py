#!/usr/bin/env python3
"""Working with limited dependency information (§3.4).

Cloud providers do not always have full dependency feeds or measured
failure probabilities. reCloud degrades gracefully:

1. **Full information** — measured probabilities + power-supply fault
   trees (the evaluation setting).
2. **Network-only** — no dependency trees at all; only hosts, switches
   and links are modelled.
3. **No probabilities** — a flat default failure probability for every
   component: scores are no longer quantitative, but the search still
   steers plans away from shared dependencies.
4. **AHP-weighted** — relative failure-likelihood judgements from an
   analytic hierarchy process replace measurements.

Run:  python examples/limited_information.py
"""

from repro import (
    ApplicationStructure,
    ComponentType,
    DependencyModel,
    DeploymentSearch,
    ReliabilityAssessor,
    SearchSpec,
    build_paper_inventory,
    paper_topology,
)
from repro.faults.probability import AhpProbabilityPolicy, DefaultProbabilityPolicy
from repro.topology.fattree import FatTreeTopology
from repro.core.api import AssessmentConfig


def search_with(topology, model, label, seconds=5.0):
    structure = ApplicationStructure.k_of_n(4, 5)
    assessor = ReliabilityAssessor(topology, model, config=AssessmentConfig(rounds=8_000, rng=3))
    search = DeploymentSearch(assessor, rng=4)
    result = search.search(SearchSpec(structure, max_seconds=seconds))
    estimate = result.best_assessment.estimate
    print(
        f"{label:<22} R={estimate.score:.4f} "
        f"(CI width {estimate.confidence_interval_width:.1e}, "
        f"{result.plans_assessed} plans assessed)"
    )
    return result.best_plan


def main() -> None:
    print("Mode 1: full information (measured probabilities + power trees)")
    topology = paper_topology("tiny", seed=1)
    inventory = build_paper_inventory(topology, seed=2)
    search_with(topology, inventory, "  full")

    print("\nMode 2: network dependencies only (no fault trees)")
    search_with(topology, DependencyModel.empty(topology), "  network-only")

    print("\nMode 3: no measured probabilities (flat default, §3.4)")
    flat = FatTreeTopology(
        8, probability_policy=DefaultProbabilityPolicy(0.01), seed=1
    )
    flat_inventory = build_paper_inventory(flat, seed=2)
    plan = search_with(flat, flat_inventory, "  default-p")
    print(
        "  note: with assumed probabilities the score is a *relative* "
        "measure, but the plan still avoids shared dependencies:"
    )
    from repro import power_diversity

    print(f"  power diversity of found plan: {power_diversity(flat_inventory, plan)}/5")

    print("\nMode 4: AHP-derived probabilities (operator judgement)")
    # Operators judge hosts 2x as failure-prone as switches, and power
    # supplies equally likely to fail as hosts (Saaty 1-9 scale).
    types = [
        ComponentType.HOST,
        ComponentType.EDGE_SWITCH,
        ComponentType.AGGREGATION_SWITCH,
        ComponentType.CORE_SWITCH,
        ComponentType.BORDER_SWITCH,
        ComponentType.POWER_SUPPLY,
    ]
    matrix = [
        [1, 2, 2, 2, 2, 1],
        [1 / 2, 1, 1, 1, 1, 1 / 2],
        [1 / 2, 1, 1, 1, 1, 1 / 2],
        [1 / 2, 1, 1, 1, 1, 1 / 2],
        [1 / 2, 1, 1, 1, 1, 1 / 2],
        [1, 2, 2, 2, 2, 1],
    ]
    policy = AhpProbabilityPolicy.from_pairwise_matrix(
        types, matrix, base_probability=0.01
    )
    ahp_topology = FatTreeTopology(8, probability_policy=policy, seed=1)
    ahp_inventory = build_paper_inventory(ahp_topology, seed=2)
    search_with(ahp_topology, ahp_inventory, "  ahp")


if __name__ == "__main__":
    main()
