#!/usr/bin/env python3
"""Adaptive redeployment under changing conditions.

The paper's conclusion highlights that reCloud's 30-second searches make
it feasible to *periodically recalculate* a running application's
deployment as system conditions vary. This example simulates several
monitoring epochs:

* host workloads drift every epoch (telemetry tick);
* occasionally a component enters bathtub-curve wear-out and its failure
  probability jumps;
* each epoch, reCloud re-searches with the multi-objective measure and
  migrates if the new plan is meaningfully better.

The annealing temperature is driven by a *move budget* rather than the
wall clock (:class:`MoveBudgetTemperatureSchedule`), so every epoch's
search walks the same cooling trajectory regardless of host speed —
epochs are comparable with each other and across machines.

For the zone-aware version of this loop — correlated zone outages,
cross-zone placement constraints and the journaled
:class:`~repro.service.redeploy.RedeploymentController` — see
``examples/multizone_redeployment.py``.

Run:  python examples/adaptive_redeployment.py
"""

import numpy as np

from repro import (
    ApplicationStructure,
    CompositeObjective,
    DeploymentSearch,
    HostWorkloadModel,
    ReliabilityAssessor,
    SearchSpec,
    WorkloadUtilityObjective,
    build_paper_inventory,
    paper_topology,
)
from repro.core.anneal import MoveBudgetTemperatureSchedule
from repro.faults.probability import BathtubCurve
from repro.core.api import AssessmentConfig

EPOCHS = 4
MIGRATION_GAIN_THRESHOLD = 0.002  # migrate only for a real improvement
MOVE_BUDGET = 60  # annealing moves per search; cooling follows moves, not time


def main() -> None:
    rng = np.random.default_rng(42)
    topology = paper_topology("tiny", seed=1)
    inventory = build_paper_inventory(topology, seed=2)
    workload = HostWorkloadModel.paper_default(topology, seed=3)
    structure = ApplicationStructure.k_of_n(4, 5)

    assessor = ReliabilityAssessor(topology, inventory, config=AssessmentConfig(rounds=8_000, rng=4))
    objective = CompositeObjective.reliability_and_utility(
        WorkloadUtilityObjective(workload)
    )
    search = DeploymentSearch(
        assessor,
        objective=objective,
        rng=5,
        temperature_schedule=MoveBudgetTemperatureSchedule(MOVE_BUDGET),
    )

    result = search.search(
        SearchSpec(structure, max_seconds=5.0, max_iterations=MOVE_BUDGET)
    )
    current_plan = result.best_plan
    print(f"Initial deployment: {current_plan}")
    print(f"  {result.best_assessment.estimate}")

    for epoch in range(1, EPOCHS + 1):
        print(f"\n--- epoch {epoch} ---")

        # Telemetry tick: workloads drift.
        workload.drift(stddev=0.05, seed=rng)

        # Sometimes a deployed host starts wearing out (bathtub curve).
        if epoch % 2 == 0:
            victim = current_plan.hosts()[int(rng.integers(5))]
            plateau = topology.component(victim).failure_probability
            curve = BathtubCurve(plateau_probability=plateau)
            worn = curve.probability_at(0.97)  # near end of life
            topology.override_probabilities({victim: worn})
            assessor.refresh_probabilities()
            print(f"  wear-out detected: {victim} p {plateau:.4f} -> {worn:.4f}")

        current_score = assessor.assess(current_plan, structure).score
        print(f"  current plan reliability: {current_score:.4f}")

        result = search.search(
            SearchSpec(structure, max_seconds=5.0, max_iterations=MOVE_BUDGET)
        )
        candidate_score = result.best_assessment.score
        if candidate_score > current_score + MIGRATION_GAIN_THRESHOLD:
            moved = set(current_plan.hosts()) - set(result.best_plan.hosts())
            current_plan = result.best_plan
            print(
                f"  MIGRATE: new plan at R={candidate_score:.4f}, "
                f"evacuated {sorted(moved)}"
            )
        else:
            print(
                f"  keep current plan (best candidate {candidate_score:.4f} "
                "not meaningfully better)"
            )

    print("\nFinal deployment:", current_plan)


if __name__ == "__main__":
    main()
