#!/usr/bin/env python3
"""Zone-aware redeployment: surviving a correlated zone outage.

The paper's correlated-failure argument (§2.1) is at its starkest when a
whole availability zone shares power, cooling and a control plane: one
failed root takes every host in the zone with it. This example builds a
two-zone data center, deploys a zone0-heavy (but constraint-compliant)
application, then fails all of zone0 and lets the journaled
:class:`~repro.service.redeploy.RedeploymentController` observe the
degradation and move the application out of the blast radius:

* ``MultiZoneTopology`` joins two fat-trees through WAN routers;
* ``build_zone_inventory`` attaches each zone's shared roots (power
  feed, cooling plant, control plane) to every element of the zone, so
  zone outages are *correlated* events, not independent host failures;
* ``ZoneConstraints`` requires at least one instance outside the
  primary zone — the "K replicas survive a zone outage" rule;
* ``ZoneOutage`` drives zone0's shared roots to near-certain failure;
* the controller notices the reliability drop, re-searches *from the
  incumbent* (warm start) and applies the candidate only for a real
  gain, journaling every step so a crashed controller recovers without
  double-applying.

The application needs 2 of its 3 instances alive, so the zone0-heavy
plan (two instances inside the blast radius) goes down with the zone —
and the re-search has a real gain to chase.

Run:  python examples/multizone_redeployment.py
"""

import tempfile

from repro import (
    ApplicationStructure,
    AssessmentConfig,
    DeploymentPlan,
    DeploymentSearch,
    RedeploymentController,
    ZoneConstraints,
    ZoneOutage,
    build_zone_inventory,
)
from repro.topology import MultiZoneTopology

MOVE_BUDGET = 30  # annealing moves per re-search (host-speed independent)


def main() -> None:
    topology = MultiZoneTopology(zones=2, k=4, seed=1)
    inventory = build_zone_inventory(topology, seed=2)
    structure = ApplicationStructure.k_of_n(2, 3)
    constraints = ZoneConstraints.from_mapping(
        primary_zone="zone0", min_outside_primary=1
    )

    # A zone0-heavy deployment: compliant (one instance outside the
    # primary zone) but with two of the three instances — a quorum —
    # inside zone0's blast radius.
    zone0 = topology.hosts_in_zone("zone0")
    zone1 = topology.hosts_in_zone("zone1")
    incumbent = DeploymentPlan.from_mapping(
        {"app": [zone0[0], zone0[7], zone1[0]]}
    )
    print(f"Initial deployment: {incumbent}")
    print(f"  satisfies zone constraints: "
          f"{constraints.satisfied_by(incumbent, topology)}")

    search = DeploymentSearch.from_config(
        topology, inventory, AssessmentConfig(rounds=2_000, rng=3), rng=4
    )
    state_dir = tempfile.mkdtemp(prefix="multizone-redeploy-")
    controller = RedeploymentController(
        search,
        structure,
        state_dir,
        incumbent=incumbent,
        zone_constraints=constraints,
        min_gain=0.002,
        degradation_threshold=0.005,
        search_seconds=10.0,
        search_iterations=MOVE_BUDGET,
    )
    controller.step()  # first check: establishes the healthy baseline
    print(f"\nBaseline reliability: {controller.baseline_score:.4f}")

    print("\n--- zone0 outage ---")
    with ZoneOutage(inventory, "zone0") as outage:
        print(f"  failed shared roots: {', '.join(outage.root_ids)}")
        decision = controller.step()
        if decision is None:
            print("  controller saw no actionable degradation")
        else:
            print(f"  event    : {decision.event.kind} ({decision.event.detail})")
            print(f"  action   : {decision.action}")
            print(f"  incumbent: {decision.incumbent_score:.4f}  "
                  f"candidate: {decision.candidate_score:.4f}  "
                  f"gain: {decision.gain:+.4f}")
            print(f"  new plan : {controller.incumbent}")
        # A second cycle inside the same outage should be quiescent: the
        # applied (or rejected) decision reset the baseline to the new
        # normal, so the same degradation is not re-chased forever.
        again = controller.step()
        print(f"  second cycle: {'steady' if again is None else again.action}")

    print("\n--- zone0 restored ---")
    controller.refresh()
    print(f"  incumbent reliability back at {controller.assess_incumbent():.4f}")

    # Crash recovery: a fresh controller pointed at the same state dir
    # replays the decision journal and restores the committed incumbent.
    recovered = RedeploymentController(
        search, structure, state_dir, zone_constraints=constraints,
        search_iterations=MOVE_BUDGET,
    )
    report = recovered.last_recovery
    print(f"\nRecovery from {state_dir}:")
    print(f"  {report.decisions_seen} journaled decision(s), incumbent "
          f"{'restored' if report.incumbent_restored else 'missing'}")
    same = recovered.incumbent.canonical_key() == controller.incumbent.canonical_key()
    print(f"  recovered incumbent == live incumbent: {same}")


if __name__ == "__main__":
    main()
