"""Sampler interface and the failure-state batch representation.

A sampler turns per-component failure probabilities into failure states
across many rounds — the table of §3.2.1 (Table 1 in the paper), with one
row per component and one column per round. Because components are highly
reliable, that table is extremely sparse, so batches store, per component,
the *sorted indices of failed rounds* rather than a dense boolean matrix.
Dense views are materialised on demand for the (small) closure of
components a particular route-and-check actually reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.util.cancel import CancellationToken

#: dtype used for failed-round indices.
ROUND_DTYPE = np.int64

_EMPTY_ROUNDS = np.empty(0, dtype=ROUND_DTYPE)


@dataclass
class SampleBatch:
    """Failure states of a component set across ``rounds`` sampling rounds.

    ``failed_rounds`` maps each component id to a sorted array of the round
    indices in which that component is failed. Components absent from the
    mapping never failed (equivalently: an empty array).
    """

    rounds: int
    failed_rounds: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ConfigurationError(f"rounds must be positive, got {self.rounds}")

    def rounds_failed(self, component_id: str) -> np.ndarray:
        """Sorted failed-round indices for one component (possibly empty)."""
        return self.failed_rounds.get(component_id, _EMPTY_ROUNDS)

    def dense(self, component_id: str) -> np.ndarray:
        """Boolean per-round failure vector for one component."""
        states = np.zeros(self.rounds, dtype=bool)
        failed = self.rounds_failed(component_id)
        if failed.size:
            states[failed] = True
        return states

    def dense_states(self, component_ids: Iterable[str]) -> dict[str, np.ndarray]:
        """Dense per-round vectors for a set of components.

        This is what fault-tree evaluation consumes; call it only for the
        relevant closure of an assessment, not the whole data center.
        """
        return {cid: self.dense(cid) for cid in component_ids}

    def failure_fraction(self, component_id: str) -> float:
        """Empirical fraction of rounds in which the component failed."""
        return self.rounds_failed(component_id).size / self.rounds

    def failed_components_in_round(self, round_index: int) -> frozenset[str]:
        """All components failed in one round (scalar/debug path)."""
        if not 0 <= round_index < self.rounds:
            raise ConfigurationError(
                f"round {round_index} out of range [0, {self.rounds})"
            )
        return frozenset(
            cid
            for cid, failed in self.failed_rounds.items()
            if failed.size and np.searchsorted(failed, round_index) < failed.size
            and failed[np.searchsorted(failed, round_index)] == round_index
        )

    def total_failure_events(self) -> int:
        """Total number of (component, round) failure events in the batch."""
        return int(sum(failed.size for failed in self.failed_rounds.values()))


class Sampler:
    """Generates failure states for components across sampling rounds."""

    #: Human-readable name used in benchmark output.
    name = "abstract"

    def sample(
        self,
        probabilities: Mapping[str, float],
        rounds: int,
        rng: np.random.Generator,
        cancel: "CancellationToken | None" = None,
    ) -> SampleBatch:
        """Produce a :class:`SampleBatch` for the given components.

        Args:
            probabilities: Failure probability per component id. Components
                with probability 0 are perfectly reliable and never appear
                in the result.
            rounds: Number of sampling rounds (columns of Table 1).
            rng: Source of randomness.
            cancel: Optional cooperative-cancellation token. Samplers poll
                it between vectorised chunks and raise
                :class:`~repro.util.errors.OperationCancelled` when it
                fires, so a deadline stops sampling within one chunk
                rather than after the full batch.
        """
        raise NotImplementedError


#: Test-only instrumentation: called (with no arguments) at the top of
#: every sampler entry, i.e. whenever :func:`validate_probabilities`
#: runs. Forked worker processes inherit the hook set in the parent
#: before the pool was created, which lets tests gate *deterministically*
#: on "a worker is now inside a sampling pass" instead of sleeping or
#: inflating round counts. Never set in production code.
_sampling_started_hook = None


def set_sampling_started_hook(hook) -> None:
    """Install (or with ``None`` clear) the sampling-started test hook."""
    global _sampling_started_hook
    _sampling_started_hook = hook


def validate_probabilities(probabilities: Mapping[str, float]) -> None:
    """Reject probabilities outside [0, 1)."""
    if _sampling_started_hook is not None:
        _sampling_started_hook()
    for cid, p in probabilities.items():
        if not 0.0 <= p < 1.0:
            raise ConfigurationError(
                f"failure probability of {cid!r} must be in [0, 1), got {p}"
            )
