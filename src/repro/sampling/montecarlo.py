"""Monte-Carlo failure-state sampling — the strawman design (§3.2.1).

This is the sampler the state-of-the-art INDaaS system uses: every
component's state in every round is decided by its own uniform draw
(``r < p`` means failed), so generating states costs C x X random numbers
for C components and X rounds. That cost is exactly why the paper replaces
it with dagger sampling; we keep it both as the INDaaS baseline and as the
statistical reference the dagger sampler is validated against.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.kernel.packed import PACK_DTYPE, PackedBatch, packed_width
from repro.sampling.base import ROUND_DTYPE, SampleBatch, Sampler, validate_probabilities

#: Peak transient memory allowed per chunk, in bytes (~128 MiB). Each draw
#: materialises a float64 uniform plus a bool in the comparison matrix, so
#: the budget is divided by 9 bytes per draw — budgeting by draw *count*
#: (the old scheme) undercounted and let peak memory scale past the
#: documented ceiling.
_CHUNK_BUDGET_BYTES = 128 << 20

#: float64 uniform draw + bool entry of the failed matrix.
_BYTES_PER_DRAW = np.dtype(np.float64).itemsize + np.dtype(np.bool_).itemsize


class MonteCarloSampler(Sampler):
    """Independent per-round uniform sampling for every component."""

    name = "monte-carlo"

    def sample(
        self,
        probabilities: Mapping[str, float],
        rounds: int,
        rng: np.random.Generator,
        cancel=None,
    ) -> SampleBatch:
        validate_probabilities(probabilities)
        batch = SampleBatch(rounds=rounds)

        component_ids = [cid for cid, p in probabilities.items() if p > 0.0]
        if not component_ids:
            return batch
        p_values = np.array([probabilities[cid] for cid in component_ids])

        # Process components in chunks so the uniform-draw matrix plus its
        # boolean comparison stay within the byte budget even for
        # 1e5-round batches. The chunk size never changes the sampled
        # states: consecutive rng.random((a, n)) calls consume the stream
        # exactly like one rng.random((a + b, n)) call.
        chunk_rows = max(1, _CHUNK_BUDGET_BYTES // (max(rounds, 1) * _BYTES_PER_DRAW))
        for start in range(0, len(component_ids), chunk_rows):
            if cancel is not None:
                cancel.check()
            stop = min(start + chunk_rows, len(component_ids))
            draws = rng.random((stop - start, rounds))
            failed_matrix = draws < p_values[start:stop, np.newaxis]
            # One nonzero over the whole chunk, split back into per-row
            # runs: np.nonzero is row-major, so each run is the sorted
            # failed-round list of its component — identical to the old
            # per-row nonzero calls at a fraction of the Python overhead.
            row_idx, col_idx = np.nonzero(failed_matrix)
            if not row_idx.size:
                continue
            counts = np.bincount(row_idx, minlength=stop - start)
            runs = np.split(col_idx.astype(ROUND_DTYPE), np.cumsum(counts[:-1]))
            for offset, failed in enumerate(runs):
                if failed.size:
                    batch.failed_rounds[component_ids[start + offset]] = failed
        return batch

    def sample_packed(
        self,
        probabilities: Mapping[str, float],
        rounds: int,
        rng: np.random.Generator,
        cancel=None,
    ) -> PackedBatch:
        """Matrix-native fast path: pack each chunk's rows directly.

        Consumes the rng stream exactly like :meth:`sample` (same chunk
        sizes, same ``rng.random`` calls), so the drawn states are
        bit-identical; only the index-extraction stage disappears.
        """
        validate_probabilities(probabilities)
        component_ids = [cid for cid, p in probabilities.items() if p > 0.0]
        if not component_ids:
            return PackedBatch(rounds=rounds)
        p_values = np.array([probabilities[cid] for cid in component_ids])

        matrix = np.zeros((len(component_ids), packed_width(rounds)), dtype=PACK_DTYPE)
        chunk_rows = max(1, _CHUNK_BUDGET_BYTES // (max(rounds, 1) * _BYTES_PER_DRAW))
        for start in range(0, len(component_ids), chunk_rows):
            if cancel is not None:
                cancel.check()
            stop = min(start + chunk_rows, len(component_ids))
            draws = rng.random((stop - start, rounds))
            failed_matrix = draws < p_values[start:stop, np.newaxis]
            matrix[start:stop] = np.packbits(failed_matrix, axis=1)
        return PackedBatch(
            rounds=rounds, component_ids=tuple(component_ids), matrix=matrix
        )
