"""Reliability-score statistics: Eqs. 1-3 of the paper (§3.2.2).

An assessment over ``n`` rounds yields a result list ``L = {d_1..d_n}``
with ``d_i = 1`` when the deployment was reliable in round ``i``. The
reliability score is the mean of ``L`` (Eq. 1); its variance is
conservatively estimated as ``Var[L] / n`` (Eq. 2, valid for dagger
sampling thanks to its variance-reduction effect); and by the central limit
theorem the 95 % confidence interval width is ``4 * sqrt(V)`` (Eq. 3 —
two standard errors on each side, the 68-95-99.7 rule).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class ReliabilityEstimate:
    """A reliability score with its rigorous error bound.

    Attributes:
        score: Estimated reliability R (Eq. 1).
        variance: Conservative variance V of the estimate (Eq. 2).
        confidence_interval_width: 95 % CI width (Eq. 3); the ground-truth
            reliability lies within ``score +/- width / 2`` with ~95 %
            probability.
        rounds: Number of sampling rounds n behind the estimate.
        reliable_rounds: Number of rounds in which the plan was reliable.
        exact: True for analytically computed scores
            (:mod:`repro.kernel.exact`): the score is the ground-truth
            probability, the CI has zero width, and no sampling rounds
            back the estimate (``rounds == reliable_rounds == 0``).
    """

    score: float
    variance: float
    confidence_interval_width: float
    rounds: int
    reliable_rounds: int
    exact: bool = False

    @property
    def failure_odds(self) -> float:
        """The plan's failure probability 1 - R.

        "One order of magnitude more reliable" in the paper means one order
        of magnitude lower failure odds (see Eq. 5's log-ratio).
        """
        return 1.0 - self.score

    @property
    def ci_lower(self) -> float:
        """Lower end of the 95 % confidence interval, clamped to [0, 1]."""
        return max(0.0, self.score - self.confidence_interval_width / 2.0)

    @property
    def ci_upper(self) -> float:
        """Upper end of the 95 % confidence interval, clamped to [0, 1]."""
        return min(1.0, self.score + self.confidence_interval_width / 2.0)

    def contains(self, true_reliability: float) -> bool:
        """Whether a reliability value lies within the 95 % interval."""
        return self.ci_lower <= true_reliability <= self.ci_upper

    def __str__(self) -> str:
        if self.exact:
            return f"R={self.score:.6f} (exact, zero-width CI)"
        return (
            f"R={self.score:.6f} (95% CI width {self.confidence_interval_width:.2e}, "
            f"{self.reliable_rounds}/{self.rounds} rounds reliable)"
        )


def estimate_from_results(result_list: np.ndarray) -> ReliabilityEstimate:
    """Build a :class:`ReliabilityEstimate` from a per-round result list.

    ``result_list`` is the paper's ``L``: one entry per round, truthy when
    the deployment plan was reliable in that round.
    """
    results = np.asarray(result_list, dtype=float)
    if results.ndim != 1 or results.size == 0:
        raise ConfigurationError("result list must be a non-empty 1-D sequence")
    n = results.size
    score = float(results.mean())
    variance = float(results.var()) / n  # Eq. 2: V = Var[L] / n
    ci_width = 4.0 * math.sqrt(variance)  # Eq. 3
    return ReliabilityEstimate(
        score=score,
        variance=variance,
        confidence_interval_width=ci_width,
        rounds=n,
        reliable_rounds=int(results.sum()),
    )


def exact_estimate(score: float) -> ReliabilityEstimate:
    """An analytically computed estimate: zero variance, zero-width CI.

    Built by the analytic assessor (:mod:`repro.core.analytic`) when the
    exact evaluator succeeds; ``rounds == 0`` records that no sampling
    backs the number (it needs none).
    """
    if not 0.0 <= score <= 1.0:
        raise ConfigurationError(f"exact score must be in [0, 1], got {score}")
    return ReliabilityEstimate(
        score=float(score),
        variance=0.0,
        confidence_interval_width=0.0,
        rounds=0,
        reliable_rounds=0,
        exact=True,
    )


def merge_estimates(estimates: list[ReliabilityEstimate]) -> ReliabilityEstimate:
    """Combine estimates from disjoint round sets (parallel execution).

    This is the reduce step of §3.2.1's MapReduce formulation: worker nodes
    assess disjoint chunks of rounds and the master combines their counts.
    The merged variance is recomputed from the pooled Bernoulli counts,
    which equals ``Var[L]/n`` over the concatenated result list.
    """
    if not estimates:
        raise ConfigurationError("cannot merge zero estimates")
    total_rounds = sum(e.rounds for e in estimates)
    reliable = sum(e.reliable_rounds for e in estimates)
    score = reliable / total_rounds
    variance = score * (1.0 - score) / total_rounds
    return ReliabilityEstimate(
        score=score,
        variance=variance,
        confidence_interval_width=4.0 * math.sqrt(variance),
        rounds=total_rounds,
        reliable_rounds=reliable,
    )


def rounds_for_target_ci(
    target_ci_width: float, pilot_variance_per_round: float
) -> int:
    """Rounds needed so the 95 % CI width reaches ``target_ci_width``.

    ``pilot_variance_per_round`` is ``Var[L]`` from a pilot run. Inverting
    Eq. 3: ``n = 16 * Var[L] / width^2``.
    """
    if target_ci_width <= 0:
        raise ConfigurationError(f"target width must be positive, got {target_ci_width}")
    if pilot_variance_per_round < 0:
        raise ConfigurationError("variance must be non-negative")
    if pilot_variance_per_round == 0:
        return 1
    return max(1, math.ceil(16.0 * pilot_variance_per_round / target_ci_width**2))
