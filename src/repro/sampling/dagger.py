"""Dagger sampling and the extended variant reCloud uses (§3.2.2).

Dagger sampling [45] targets exactly our setting: two-state variables with
low failure probabilities. For a component with failure probability ``p``,
let ``s = floor(1/p)``. The unit interval is divided into ``s``
subintervals of length ``p`` plus a remainder; a *single* uniform draw
``r`` then fixes the component's states for ``s`` consecutive rounds (one
"dagger cycle"): if ``r`` lands in the i-th subinterval the component fails
in round ``i`` of the cycle and is alive in the rest; if ``r`` lands in the
remainder it is alive throughout. The expected per-round failure rate is
still exactly ``p`` — no bias — but each cycle costs one draw instead of
``s``, and the induced negative correlation within a cycle gives the
variance-reduction effect the paper leans on.

Components with different ``p`` have different cycle lengths, so the
*extended* variant (following [63]) resets every component's cycle at the
end of the longest cycle: time is cut into blocks of ``s_max`` rounds, each
component concatenates its own cycles inside a block and truncates the last
one at the block boundary. Truncation drops whole tail rounds of a cycle,
which leaves every surviving round's marginal failure probability at ``p``.

Implementation notes: probabilities in a data center are heavily repeated
(the paper rounds them to 4 decimals), so components are grouped by exact
probability and each group is sampled as one vectorised matrix of draws.
"""

from __future__ import annotations

import hashlib
import math
from collections import defaultdict
from typing import Mapping

import numpy as np

from repro.kernel.packed import PACK_DTYPE, PackedBatch, pack_indices, packed_width
from repro.sampling.base import ROUND_DTYPE, SampleBatch, Sampler, validate_probabilities


def dagger_cycle_length(probability: float) -> int:
    """Cycle length ``s = floor(1/p)`` for a failure probability ``p``."""
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must be in (0, 1), got {probability}")
    return int(math.floor(1.0 / probability))


def dagger_draw_count(probabilities: Mapping[str, float], rounds: int) -> int:
    """Number of uniform draws extended dagger sampling needs.

    The Monte-Carlo equivalent is ``len(probabilities) * rounds``; the ratio
    of the two is the headline efficiency gain of Fig. 7.
    """
    positive = [p for p in probabilities.values() if p > 0.0]
    if not positive or rounds <= 0:
        return 0
    longest = max(dagger_cycle_length(p) for p in positive)
    blocks = math.ceil(rounds / longest)
    total = 0
    for p in positive:
        cycles_per_block = math.ceil(longest / dagger_cycle_length(p))
        total += blocks * cycles_per_block
    return total


def _group_draws(
    rng: np.random.Generator,
    probability: float,
    count: int,
    rounds: int,
    block_length: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Raw ``(failed_round, valid)`` matrices for one probability group.

    Cycles of length ``s = floor(1/p)`` are concatenated within blocks of
    ``block_length`` rounds and truncated at block boundaries (extended
    dagger). Entry ``[i, d]`` is the round draw ``d`` of component ``i``
    fails, meaningful only where ``valid`` is True (the draw landed in a
    subinterval and inside the block and round range).
    """
    s = dagger_cycle_length(probability)
    cycles_per_block = math.ceil(block_length / s)
    blocks = math.ceil(rounds / block_length)
    draws_per_component = blocks * cycles_per_block

    draw_index = np.arange(draws_per_component, dtype=ROUND_DTYPE)
    block_of_draw = draw_index // cycles_per_block
    cycle_in_block = draw_index % cycles_per_block
    cycle_start = block_of_draw * block_length + cycle_in_block * s

    r = rng.random((count, draws_per_component))
    offset = np.floor(r / probability).astype(ROUND_DTYPE)
    # A draw in the i-th subinterval (offset < s) fails round i of its
    # cycle; the remainder section (offset >= s) keeps the cycle all-alive.
    failed_round = cycle_start[np.newaxis, :] + offset
    valid = (
        (offset < s)
        & (cycle_in_block[np.newaxis, :] * s + offset < block_length)
        & (failed_round < rounds)
    )
    return failed_round, valid


#: MSB-first bit weights, float64 because ``np.bincount`` weights are.
_BIT_WEIGHTS = (0x80 >> np.arange(8)).astype(np.float64)

#: Cached per-(probability, rounds, block_length) cycle geometry. The
#: arrays are rng-independent, so repeated assessments (the search loop
#: re-samples the same closure every move) skip rebuilding them.
_GEOMETRY_CACHE: dict[tuple[float, int, int], tuple[int, int, np.ndarray, np.ndarray]] = {}


def _cycle_geometry(
    probability: float, rounds: int, block_length: int
) -> tuple[int, int, np.ndarray, np.ndarray]:
    """``(s, draws_per_component, cycle_start, limit)`` for one group.

    Mirrors the arithmetic of :func:`_group_draws` exactly, with its
    three per-draw validity conditions folded into one: a draw whose
    offset is below ``limit`` lands in a subinterval (``offset < s``),
    inside the block (``cycle_in_block * s + offset < block_length``)
    and inside the round range (``cycle_start + offset < rounds``) —
    all integers, so the conjunction is ``offset < min`` of the three
    bounds.
    """
    key = (probability, rounds, block_length)
    geometry = _GEOMETRY_CACHE.get(key)
    if geometry is None:
        s = dagger_cycle_length(probability)
        cycles_per_block = math.ceil(block_length / s)
        blocks = math.ceil(rounds / block_length)
        draws_per_component = blocks * cycles_per_block
        draw_index = np.arange(draws_per_component, dtype=ROUND_DTYPE)
        block_of_draw = draw_index // cycles_per_block
        cycle_in_block = draw_index % cycles_per_block
        cycle_start = block_of_draw * block_length + cycle_in_block * s
        limit = np.minimum(
            np.minimum(s, block_length - cycle_in_block * s),
            rounds - cycle_start,
        ).astype(ROUND_DTYPE)
        if len(_GEOMETRY_CACHE) >= 4096:
            _GEOMETRY_CACHE.clear()
        geometry = _GEOMETRY_CACHE[key] = (s, draws_per_component, cycle_start, limit)
    return geometry


def _sample_group(
    rng: np.random.Generator,
    probability: float,
    count: int,
    rounds: int,
    block_length: int,
) -> list[np.ndarray]:
    """Failed-round indices for ``count`` components sharing ``probability``.

    Returns one sorted index array per component.
    """
    failed_round, valid = _group_draws(rng, probability, count, rounds, block_length)
    # Within a row, cycle starts are increasing and offsets stay inside
    # their cycle, so the surviving indices are already sorted.
    return [failed_round[row][valid[row]] for row in range(count)]


class ExtendedDaggerSampler(Sampler):
    """The paper's extended dagger sampling (Fig. 4).

    All components' cycles are reset at the end of the longest dagger cycle
    among them, so components with heterogeneous failure probabilities can
    be sampled together without bias [63].
    """

    name = "extended-dagger"

    def sample(
        self,
        probabilities: Mapping[str, float],
        rounds: int,
        rng: np.random.Generator,
        cancel=None,
    ) -> SampleBatch:
        validate_probabilities(probabilities)
        batch = SampleBatch(rounds=rounds)

        by_probability: dict[float, list[str]] = defaultdict(list)
        for cid, p in probabilities.items():
            if p > 0.0:
                by_probability[p].append(cid)
        if not by_probability:
            return batch

        block_length = max(dagger_cycle_length(p) for p in by_probability)
        for probability, component_ids in by_probability.items():
            if cancel is not None:
                cancel.check()
            failed_lists = _sample_group(
                rng, probability, len(component_ids), rounds, block_length
            )
            for cid, failed in zip(component_ids, failed_lists):
                if failed.size:
                    batch.failed_rounds[cid] = failed
        return batch

    def sample_packed(
        self,
        probabilities: Mapping[str, float],
        rounds: int,
        rng: np.random.Generator,
        cancel=None,
    ) -> PackedBatch:
        """Matrix-native fast path, stream-identical to :meth:`sample`.

        All groups' uniforms come from ONE ``rng.random`` call — numpy
        generators fill arrays sequentially from the bit stream, so a
        flat draw sliced per group is bit-identical to :meth:`sample`'s
        one call per group, without 2x-the-group-count call overhead.
        The per-draw constants (probability, cycle starts, block guards,
        component row) are precomputed as flat arrays and cached per
        ``(probabilities, rounds)``, so the whole batch reduces to a
        handful of whole-array operations plus one ``packbits``.
        """
        layout = self._packed_layout(probabilities, rounds)
        if layout is None:
            return PackedBatch(rounds=rounds)
        ids, index, row_byte0, p_of_draw, cycle_start, limit = layout
        if cancel is not None:
            cancel.check()

        flat = rng.random(len(p_of_draw))
        # Truncation == floor for the non-negative ratios, and a single
        # bound check replaces sample()'s three validity conditions (see
        # _cycle_geometry) — the surviving draws are identical.
        offset = (flat / p_of_draw).astype(ROUND_DTYPE)
        hits = np.nonzero(offset < limit)[0]
        # Pack without a dense (components x rounds) intermediate: each
        # (component, round) pair is unique, so the bits of one byte come
        # from distinct powers of two and summing them (bincount) equals
        # OR-ing them.
        width = (rounds + 7) >> 3
        cols = cycle_start[hits] + offset[hits]
        flat_byte = row_byte0[hits] + (cols >> 3)
        bits = _BIT_WEIGHTS[cols & 7]
        matrix = (
            np.bincount(flat_byte, weights=bits, minlength=len(ids) * width)
            .astype(PACK_DTYPE)
            .reshape(len(ids), width)
        )
        return PackedBatch(
            rounds=rounds, component_ids=ids, matrix=matrix, _index=index
        )

    #: (probabilities, rounds) -> flat draw layout; bounded, see below.
    _LAYOUT_CACHE_LIMIT = 64

    def _packed_layout(self, probabilities: Mapping[str, float], rounds: int):
        """Flat per-draw constants for :meth:`sample_packed`, cached.

        Returns ``None`` when no component has a positive probability.
        The layout is a pure function of the (ordered) probability map
        and the round count — exactly what determines :meth:`sample`'s
        rng consumption. Reused map *objects* (the assessor passes its
        one ``_all_probabilities`` dict in full-infrastructure mode) hit
        an identity key, so the cache check costs nothing even for
        thousands of components; small maps fall back to a content key
        so logically-equal rebuilt closures still hit. Entries keep a
        strong reference to identity-keyed maps, which both pins their
        ``id`` and means a *mutated* map must be passed as a fresh dict
        (as the assessors do) to take effect.
        """
        cache = getattr(self, "_layout_cache", None)
        if cache is None:
            cache = self._layout_cache = {}
        key = (rounds, id(probabilities))
        entry = cache.get(key)
        if entry is not None and entry[0] is probabilities:
            return entry[1]
        if len(probabilities) <= 4096:
            key = (rounds, tuple(probabilities.items()))
            entry = cache.get(key)
            if entry is not None:
                return entry[1]

        validate_probabilities(probabilities)  # once per layout, not per draw
        by_probability: dict[float, list[str]] = defaultdict(list)
        for cid, p in probabilities.items():
            if p > 0.0:
                by_probability[p].append(cid)
        if not by_probability:
            layout = None
        else:
            block_length = max(dagger_cycle_length(p) for p in by_probability)
            width = packed_width(rounds)
            ids: list[str] = []
            rows, ps, starts, limits = [], [], [], []
            for probability, component_ids in by_probability.items():
                _s, dpc, cycle_start, limit = _cycle_geometry(
                    probability, rounds, block_length
                )
                count = len(component_ids)
                row0 = len(ids)
                ids.extend(component_ids)
                # Row-major draw order: component i's draws are contiguous,
                # matching rng.random((count, dpc)) consumption in sample();
                # pre-scaled to byte offsets for the bincount pack.
                rows.append(
                    np.repeat(
                        np.arange(
                            row0 * width, (row0 + count) * width, width,
                            dtype=np.intp,
                        ),
                        dpc,
                    )
                )
                ps.append(np.full(count * dpc, probability))
                starts.append(np.tile(cycle_start, count))
                limits.append(np.tile(limit, count))
            id_tuple = tuple(ids)
            layout = (
                id_tuple,
                {cid: i for i, cid in enumerate(id_tuple)},
                np.concatenate(rows),
                np.concatenate(ps),
                np.concatenate(starts),
                np.concatenate(limits),
            )
        if len(cache) >= self._LAYOUT_CACHE_LIMIT:
            cache.clear()
        cache[key] = (probabilities, layout)
        return layout


def _component_stream_seed(master_seed: int, component_id: str) -> np.random.SeedSequence:
    """A stable, component-addressed seed: same (master, id) -> same stream."""
    digest = hashlib.blake2b(
        component_id.encode("utf-8"), digest_size=8
    ).digest()
    return np.random.SeedSequence([master_seed, int.from_bytes(digest, "big")])


class CommonRandomDaggerSampler(Sampler):
    """Extended dagger sampling with *common random numbers* across calls.

    Every component's failure states are drawn from a private stream keyed
    by ``(master_seed, component_id)``, so two sample calls — e.g. for the
    current plan and a neighbour sharing 4 of its 5 hosts — see *identical*
    states for every shared component. Score differences between such
    plans then reflect only the genuinely differing components, which
    turns the annealing comparison into a low-variance paired test.

    Marginally the distribution is the same extended dagger distribution
    (each stream is an ordinary dagger stream), so individual scores stay
    unbiased; only the coupling *between* assessments changes. Because the
    "best score observed" under a fixed master seed inherits that seed's
    noise, callers should re-assess a search's winning plan with
    independent randomness before reporting it (the search does this).

    Call :meth:`reseed` to move to a fresh master seed.
    """

    name = "common-random-dagger"

    def __init__(self, master_seed: int):
        self.master_seed = int(master_seed)

    def reseed(self, master_seed: int) -> None:
        """Switch every component stream to a new master seed."""
        self.master_seed = int(master_seed)

    def component_failed_rounds(
        self, component_id: str, probability: float, rounds: int
    ) -> np.ndarray:
        """Failed-round indices of one component under its private stream.

        A pure function of ``(master_seed, component_id, probability,
        rounds)`` — which is precisely what makes per-component failure
        states cacheable across assessments: the incremental engine calls
        this only for the closure *delta* of a move and reuses every
        previously drawn component verbatim.
        """
        if probability <= 0.0:
            return np.empty(0, dtype=ROUND_DTYPE)
        stream = np.random.default_rng(
            _component_stream_seed(self.master_seed, component_id)
        )
        # Per-component cycle length (original dagger) rather than the
        # extended cross-component reset: the reset aligns cycles of
        # *jointly drawn* components, but these streams are independent
        # per component, and a component's states must not depend on
        # which other components happen to be in the closure — that is
        # exactly what makes the coupling across calls work.
        return _sample_group(
            stream,
            probability,
            1,
            rounds,
            block_length=dagger_cycle_length(probability),
        )[0]

    def sample(
        self,
        probabilities: Mapping[str, float],
        rounds: int,
        rng: np.random.Generator,  # unused: streams are component-addressed
        cancel=None,
    ) -> SampleBatch:
        validate_probabilities(probabilities)
        batch = SampleBatch(rounds=rounds)
        for index, (cid, probability) in enumerate(probabilities.items()):
            # Per-component streams are cheap individually; poll every few
            # components so huge closures still cancel promptly.
            if cancel is not None and index % 64 == 0:
                cancel.check()
            failed = self.component_failed_rounds(cid, probability, rounds)
            if failed.size:
                batch.failed_rounds[cid] = failed
        return batch

    def component_packed_row(
        self, component_id: str, probability: float, rounds: int
    ) -> np.ndarray | None:
        """Packed failure row of one component, ``None`` when never failed.

        The packed analogue of :meth:`component_failed_rounds`, with the
        same pure-function-of-``(master_seed, component_id, probability,
        rounds)`` contract — safe to cache across assessments.
        """
        failed = self.component_failed_rounds(component_id, probability, rounds)
        if not failed.size:
            return None
        return pack_indices(failed, rounds)

    def sample_packed(
        self,
        probabilities: Mapping[str, float],
        rounds: int,
        rng: np.random.Generator,  # unused: streams are component-addressed
        cancel=None,
    ) -> PackedBatch:
        """Packed batch from the per-component common-random streams."""
        validate_probabilities(probabilities)
        ids = tuple(probabilities)
        matrix = np.zeros((len(ids), packed_width(rounds)), dtype=PACK_DTYPE)
        for index, (cid, probability) in enumerate(probabilities.items()):
            if cancel is not None and index % 64 == 0:
                cancel.check()
            row = self.component_packed_row(cid, probability, rounds)
            if row is not None:
                matrix[index] = row
        return PackedBatch(rounds=rounds, component_ids=ids, matrix=matrix)


class DaggerSampler(Sampler):
    """Original dagger sampling, without the cross-component cycle reset.

    Each component concatenates its own cycles independently (Fig. 3).
    Statistically this also has per-round marginal ``p``; the extended
    variant exists to align cycle boundaries across heterogeneous
    components. Kept for completeness and for ablation comparisons.
    """

    name = "dagger"

    def sample(
        self,
        probabilities: Mapping[str, float],
        rounds: int,
        rng: np.random.Generator,
        cancel=None,
    ) -> SampleBatch:
        validate_probabilities(probabilities)
        batch = SampleBatch(rounds=rounds)

        by_probability: dict[float, list[str]] = defaultdict(list)
        for cid, p in probabilities.items():
            if p > 0.0:
                by_probability[p].append(cid)

        for probability, component_ids in by_probability.items():
            if cancel is not None:
                cancel.check()
            # With block_length == own cycle length, truncation never trims
            # a cycle: this is exactly the original scheme.
            failed_lists = _sample_group(
                rng,
                probability,
                len(component_ids),
                rounds,
                block_length=dagger_cycle_length(probability),
            )
            for cid, failed in zip(component_ids, failed_lists):
                if failed.size:
                    batch.failed_rounds[cid] = failed
        return batch
