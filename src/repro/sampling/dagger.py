"""Dagger sampling and the extended variant reCloud uses (§3.2.2).

Dagger sampling [45] targets exactly our setting: two-state variables with
low failure probabilities. For a component with failure probability ``p``,
let ``s = floor(1/p)``. The unit interval is divided into ``s``
subintervals of length ``p`` plus a remainder; a *single* uniform draw
``r`` then fixes the component's states for ``s`` consecutive rounds (one
"dagger cycle"): if ``r`` lands in the i-th subinterval the component fails
in round ``i`` of the cycle and is alive in the rest; if ``r`` lands in the
remainder it is alive throughout. The expected per-round failure rate is
still exactly ``p`` — no bias — but each cycle costs one draw instead of
``s``, and the induced negative correlation within a cycle gives the
variance-reduction effect the paper leans on.

Components with different ``p`` have different cycle lengths, so the
*extended* variant (following [63]) resets every component's cycle at the
end of the longest cycle: time is cut into blocks of ``s_max`` rounds, each
component concatenates its own cycles inside a block and truncates the last
one at the block boundary. Truncation drops whole tail rounds of a cycle,
which leaves every surviving round's marginal failure probability at ``p``.

Implementation notes: probabilities in a data center are heavily repeated
(the paper rounds them to 4 decimals), so components are grouped by exact
probability and each group is sampled as one vectorised matrix of draws.
"""

from __future__ import annotations

import hashlib
import math
from collections import defaultdict
from typing import Mapping

import numpy as np

from repro.sampling.base import ROUND_DTYPE, SampleBatch, Sampler, validate_probabilities


def dagger_cycle_length(probability: float) -> int:
    """Cycle length ``s = floor(1/p)`` for a failure probability ``p``."""
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must be in (0, 1), got {probability}")
    return int(math.floor(1.0 / probability))


def dagger_draw_count(probabilities: Mapping[str, float], rounds: int) -> int:
    """Number of uniform draws extended dagger sampling needs.

    The Monte-Carlo equivalent is ``len(probabilities) * rounds``; the ratio
    of the two is the headline efficiency gain of Fig. 7.
    """
    positive = [p for p in probabilities.values() if p > 0.0]
    if not positive or rounds <= 0:
        return 0
    longest = max(dagger_cycle_length(p) for p in positive)
    blocks = math.ceil(rounds / longest)
    total = 0
    for p in positive:
        cycles_per_block = math.ceil(longest / dagger_cycle_length(p))
        total += blocks * cycles_per_block
    return total


def _sample_group(
    rng: np.random.Generator,
    probability: float,
    count: int,
    rounds: int,
    block_length: int,
) -> list[np.ndarray]:
    """Failed-round indices for ``count`` components sharing ``probability``.

    Cycles of length ``s = floor(1/p)`` are concatenated within blocks of
    ``block_length`` rounds and truncated at block boundaries (extended
    dagger). Returns one sorted index array per component.
    """
    s = dagger_cycle_length(probability)
    cycles_per_block = math.ceil(block_length / s)
    blocks = math.ceil(rounds / block_length)
    draws_per_component = blocks * cycles_per_block

    draw_index = np.arange(draws_per_component, dtype=ROUND_DTYPE)
    block_of_draw = draw_index // cycles_per_block
    cycle_in_block = draw_index % cycles_per_block
    cycle_start = block_of_draw * block_length + cycle_in_block * s

    r = rng.random((count, draws_per_component))
    offset = np.floor(r / probability).astype(ROUND_DTYPE)
    # A draw in the i-th subinterval (offset < s) fails round i of its
    # cycle; the remainder section (offset >= s) keeps the cycle all-alive.
    failed_round = cycle_start[np.newaxis, :] + offset
    valid = (
        (offset < s)
        & (cycle_in_block[np.newaxis, :] * s + offset < block_length)
        & (failed_round < rounds)
    )

    results = []
    for row in range(count):
        # Within a row, cycle starts are increasing and offsets stay inside
        # their cycle, so the surviving indices are already sorted.
        results.append(failed_round[row][valid[row]])
    return results


class ExtendedDaggerSampler(Sampler):
    """The paper's extended dagger sampling (Fig. 4).

    All components' cycles are reset at the end of the longest dagger cycle
    among them, so components with heterogeneous failure probabilities can
    be sampled together without bias [63].
    """

    name = "extended-dagger"

    def sample(
        self,
        probabilities: Mapping[str, float],
        rounds: int,
        rng: np.random.Generator,
        cancel=None,
    ) -> SampleBatch:
        validate_probabilities(probabilities)
        batch = SampleBatch(rounds=rounds)

        by_probability: dict[float, list[str]] = defaultdict(list)
        for cid, p in probabilities.items():
            if p > 0.0:
                by_probability[p].append(cid)
        if not by_probability:
            return batch

        block_length = max(dagger_cycle_length(p) for p in by_probability)
        for probability, component_ids in by_probability.items():
            if cancel is not None:
                cancel.check()
            failed_lists = _sample_group(
                rng, probability, len(component_ids), rounds, block_length
            )
            for cid, failed in zip(component_ids, failed_lists):
                if failed.size:
                    batch.failed_rounds[cid] = failed
        return batch


def _component_stream_seed(master_seed: int, component_id: str) -> np.random.SeedSequence:
    """A stable, component-addressed seed: same (master, id) -> same stream."""
    digest = hashlib.blake2b(
        component_id.encode("utf-8"), digest_size=8
    ).digest()
    return np.random.SeedSequence([master_seed, int.from_bytes(digest, "big")])


class CommonRandomDaggerSampler(Sampler):
    """Extended dagger sampling with *common random numbers* across calls.

    Every component's failure states are drawn from a private stream keyed
    by ``(master_seed, component_id)``, so two sample calls — e.g. for the
    current plan and a neighbour sharing 4 of its 5 hosts — see *identical*
    states for every shared component. Score differences between such
    plans then reflect only the genuinely differing components, which
    turns the annealing comparison into a low-variance paired test.

    Marginally the distribution is the same extended dagger distribution
    (each stream is an ordinary dagger stream), so individual scores stay
    unbiased; only the coupling *between* assessments changes. Because the
    "best score observed" under a fixed master seed inherits that seed's
    noise, callers should re-assess a search's winning plan with
    independent randomness before reporting it (the search does this).

    Call :meth:`reseed` to move to a fresh master seed.
    """

    name = "common-random-dagger"

    def __init__(self, master_seed: int):
        self.master_seed = int(master_seed)

    def reseed(self, master_seed: int) -> None:
        """Switch every component stream to a new master seed."""
        self.master_seed = int(master_seed)

    def component_failed_rounds(
        self, component_id: str, probability: float, rounds: int
    ) -> np.ndarray:
        """Failed-round indices of one component under its private stream.

        A pure function of ``(master_seed, component_id, probability,
        rounds)`` — which is precisely what makes per-component failure
        states cacheable across assessments: the incremental engine calls
        this only for the closure *delta* of a move and reuses every
        previously drawn component verbatim.
        """
        if probability <= 0.0:
            return np.empty(0, dtype=ROUND_DTYPE)
        stream = np.random.default_rng(
            _component_stream_seed(self.master_seed, component_id)
        )
        # Per-component cycle length (original dagger) rather than the
        # extended cross-component reset: the reset aligns cycles of
        # *jointly drawn* components, but these streams are independent
        # per component, and a component's states must not depend on
        # which other components happen to be in the closure — that is
        # exactly what makes the coupling across calls work.
        return _sample_group(
            stream,
            probability,
            1,
            rounds,
            block_length=dagger_cycle_length(probability),
        )[0]

    def sample(
        self,
        probabilities: Mapping[str, float],
        rounds: int,
        rng: np.random.Generator,  # unused: streams are component-addressed
        cancel=None,
    ) -> SampleBatch:
        validate_probabilities(probabilities)
        batch = SampleBatch(rounds=rounds)
        for index, (cid, probability) in enumerate(probabilities.items()):
            # Per-component streams are cheap individually; poll every few
            # components so huge closures still cancel promptly.
            if cancel is not None and index % 64 == 0:
                cancel.check()
            failed = self.component_failed_rounds(cid, probability, rounds)
            if failed.size:
                batch.failed_rounds[cid] = failed
        return batch


class DaggerSampler(Sampler):
    """Original dagger sampling, without the cross-component cycle reset.

    Each component concatenates its own cycles independently (Fig. 3).
    Statistically this also has per-round marginal ``p``; the extended
    variant exists to align cycle boundaries across heterogeneous
    components. Kept for completeness and for ablation comparisons.
    """

    name = "dagger"

    def sample(
        self,
        probabilities: Mapping[str, float],
        rounds: int,
        rng: np.random.Generator,
        cancel=None,
    ) -> SampleBatch:
        validate_probabilities(probabilities)
        batch = SampleBatch(rounds=rounds)

        by_probability: dict[float, list[str]] = defaultdict(list)
        for cid, p in probabilities.items():
            if p > 0.0:
                by_probability[p].append(cid)

        for probability, component_ids in by_probability.items():
            if cancel is not None:
                cancel.check()
            # With block_length == own cycle length, truncation never trims
            # a cycle: this is exactly the original scheme.
            failed_lists = _sample_group(
                rng,
                probability,
                len(component_ids),
                rounds,
                block_length=dagger_cycle_length(probability),
            )
            for cid, failed in zip(component_ids, failed_lists):
                if failed.size:
                    batch.failed_rounds[cid] = failed
        return batch
