"""Failure-state samplers (Monte-Carlo, dagger) and reliability statistics."""

from repro.sampling.base import SampleBatch, Sampler
from repro.sampling.dagger import (
    DaggerSampler,
    ExtendedDaggerSampler,
    dagger_cycle_length,
    dagger_draw_count,
)
from repro.sampling.montecarlo import MonteCarloSampler
from repro.sampling.statistics import (
    ReliabilityEstimate,
    estimate_from_results,
    merge_estimates,
    rounds_for_target_ci,
)

__all__ = [
    "DaggerSampler",
    "ExtendedDaggerSampler",
    "MonteCarloSampler",
    "ReliabilityEstimate",
    "SampleBatch",
    "Sampler",
    "dagger_cycle_length",
    "dagger_draw_count",
    "estimate_from_results",
    "merge_estimates",
    "rounds_for_target_ci",
]
