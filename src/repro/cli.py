"""Command-line interface: ``python -m repro <command>``.

A thin operational wrapper around the library for providers who want to
drive reCloud from scripts:

``topology``   print a data center's Table-2 style summary
``assess``     assess a concrete plan's reliability with error bounds
``search``     search for a reliable plan within a time budget
``risk``       single-failure risk report for a plan
``baseline``   show the common-practice / enhanced-CP plans
``serve``      run the long-lived assessment service (HTTP); with
               ``--workers N`` a supervised multi-process shard fleet
``capacity``   plan the worker fleet size for an SLO under a crash rate
``journal``    inspect a write-ahead journal directory post-mortem
``redeploy``   watch a multi-zone deployment and redeploy on degradation

Most commands operate on the paper's preset data centers (``--scale``);
``redeploy`` instead builds a multi-zone data center (``--zones`` joined
fat-trees with per-zone shared roots) and runs the degradation-triggered
redeployment controller against it.

All commands are seeded deterministically (``--seed``) and can emit
machine-readable JSON (``--json``).

Exit codes (stable; scripts may branch on them):

===  ====================================================================
0    success — the result is complete and requirements (if any) were met
2    configuration/usage error (bad flags, unknown hosts, validation)
3    search finished but the desired reliability was not reached
4    search was preempted (SIGTERM/SIGINT); a resumable checkpoint exists
5    result is degraded — an estimate was produced but rounds were lost
     (``partial_ok`` drops or a deadline), so its error bounds are wider
     than requested
===  ====================================================================
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from repro import serialization
from repro.app.structure import ApplicationStructure
from repro.baselines.common_practice import (
    common_practice_plan,
    enhanced_common_practice_plan,
    power_diversity,
)
from repro.core.api import AssessmentConfig, build_assessor
from repro.core.objectives import CompositeObjective, WorkloadUtilityObjective
from repro.core.plan import DeploymentPlan
from repro.core.risk import RiskAnalyzer
from repro.core.anneal import MoveBudgetTemperatureSchedule
from repro.core.search import DeploymentSearch, SearchSpec
from repro.faults.inventory import build_paper_inventory
from repro.faults.probability import annual_downtime_hours
from repro.runtime.mapreduce import RetryPolicy
from repro.topology.presets import PAPER_SCALES, paper_topology
from repro.util.errors import ReproError, ValidationError
from repro.util.metrics import MetricsRegistry
from repro.workload.model import HostWorkloadModel

#: Stable exit codes (see module docstring).
EXIT_OK = 0
EXIT_CONFIG = 2
EXIT_UNSATISFIED = 3
EXIT_PREEMPTED = 4
EXIT_DEGRADED = 5
EXIT_DRILL = 6


def _build_context(args):
    topology = paper_topology(args.scale, seed=args.seed)
    inventory = build_paper_inventory(topology, seed=args.seed + 1)
    return topology, inventory


def _metrics_for(args) -> MetricsRegistry | None:
    return MetricsRegistry() if getattr(args, "profile", False) else None


def _attach_profile(args, metrics, document: dict, human: str) -> str:
    """Fold a profiling snapshot into both output forms when requested."""
    if metrics is None:
        return human
    document["profile"] = {key: value for key, value in metrics.flat()}
    return human + "\n" + metrics.format_table()


def _emit(args, document: dict, human: str) -> None:
    if getattr(args, "json", False):
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(human)


def _parse_hosts(raw: str) -> list[str]:
    return [h.strip() for h in raw.split(",") if h.strip()]


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_topology(args) -> int:
    topology, inventory = _build_context(args)
    summary = topology.summarize()
    document = {
        "scale": args.scale,
        "ports_per_switch": summary.ports_per_switch,
        "core_switches": summary.core_switches,
        "aggregation_switches": summary.aggregation_switches,
        "edge_switches": summary.edge_switches,
        "border_switches": summary.border_switches,
        "hosts": summary.hosts,
        "links": summary.links,
        "power_supplies": inventory.dependency_count(),
    }
    human = "\n".join(f"{key:>22}: {value}" for key, value in document.items())
    _emit(args, document, human)
    return 0


def cmd_assess(args) -> int:
    topology, inventory = _build_context(args)
    hosts = _parse_hosts(args.hosts)
    structure = ApplicationStructure.k_of_n(args.k, len(hosts))
    plan = DeploymentPlan.single_component(hosts, structure.components[0].name)
    if args.assessor == "analytic":
        # The analytic backend is a mode of its own: collect every flag
        # conflict and report them all at once, like config validation.
        conflicts = []
        if args.mode != "auto":
            conflicts.append(
                ("mode", f"--assessor analytic conflicts with --mode {args.mode}")
            )
        if args.workers > 0:
            conflicts.append(
                (
                    "workers",
                    "--assessor analytic runs in-process; "
                    f"--workers {args.workers} has no effect",
                )
            )
        if conflicts:
            raise ValidationError(conflicts)
        mode = "analytic"
    elif args.mode == "auto":
        mode = "parallel" if args.workers > 0 else "sequential"
    else:
        mode = args.mode
    metrics = _metrics_for(args)
    config = AssessmentConfig(
        rounds=args.rounds,
        rng=args.seed + 2,
        mode=mode,
        workers=args.workers or 2,
        retry_policy=RetryPolicy(
            timeout_seconds=args.portion_timeout, max_retries=args.retries
        ),
        partial_ok=args.partial_ok,
        kernel=args.kernel,
        metrics=metrics,
        analytic_shared_bits=args.analytic_shared_bits,
        analytic_state_bits=args.analytic_state_bits,
    )
    assessor = build_assessor(topology, inventory, config)
    try:
        result = assessor.assess(plan, structure)
    finally:
        close = getattr(assessor, "close", None)
        if close is not None:
            close()
    document = serialization.assessment_to_dict(result)
    human = (
        f"plan      : {result.plan}\n"
        f"estimate  : {result.estimate}\n"
        f"downtime  : {annual_downtime_hours(result.score):.1f} h/year\n"
        f"sampled   : {result.sampled_components} components\n"
        f"elapsed   : {result.elapsed_seconds * 1e3:.1f} ms"
    )
    if result.estimate.exact:
        human += "\nmethod    : analytic (exact fault-tree evaluation)"
    elif args.assessor == "analytic":
        human += (
            "\nmethod    : sampled (closure exceeded the analytic "
            "tractability budget)"
        )
    if result.runtime is not None:
        runtime = result.runtime
        human += (
            f"\nworkers   : {runtime.workers} ({runtime.backend} backend, "
            f"{runtime.portions} portions)"
        )
        if runtime.retries or runtime.failures:
            human += (
                f"\nrecovery  : {runtime.retries} retries, "
                f"{runtime.pool_restarts} pool restarts, "
                f"{runtime.recovered_inline} recovered inline"
            )
        if result.degraded:
            human += (
                f"\nDEGRADED  : {runtime.dropped_portions} portions "
                f"({runtime.dropped_rounds} rounds) lost; error bounds widened"
            )
    human = _attach_profile(args, metrics, document, human)
    _emit(args, document, human)
    # A degraded estimate is usable but not what was asked for: exit
    # non-zero so scripts cannot mistake it for a full-fidelity result.
    return EXIT_DEGRADED if result.degraded else EXIT_OK


def cmd_search(args) -> int:
    if not args.resume and (args.k is None or args.n is None):
        print("error: --k and --n are required unless --resume is given",
              file=sys.stderr)
        return EXIT_CONFIG
    topology, inventory = _build_context(args)
    metrics = _metrics_for(args)
    if args.assessor == "analytic":
        mode = "analytic"
    else:
        mode = "incremental" if args.incremental else "sequential"
    config = AssessmentConfig(
        rounds=args.rounds,
        rng=args.seed + 2,
        mode=mode,
        kernel=args.kernel,
        metrics=metrics,
        analytic_shared_bits=args.analytic_shared_bits,
        analytic_state_bits=args.analytic_state_bits,
    )
    if args.multi_objective:
        workload = HostWorkloadModel.paper_default(topology, seed=args.seed + 3)
        objective = CompositeObjective.reliability_and_utility(
            WorkloadUtilityObjective(workload)
        )
    else:
        objective = None

    # Graceful preemption: when checkpointing, SIGTERM/SIGINT request a
    # final checkpoint and an orderly stop instead of killing mid-anneal.
    stop_requested = {"flag": False}
    checkpoint_path = args.checkpoint or args.resume
    if checkpoint_path:
        def _request_stop(signum, frame):
            stop_requested["flag"] = True

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)

    if args.batch_size < 1:
        print("error: --batch-size must be >= 1", file=sys.stderr)
        return EXIT_CONFIG
    schedule = None
    if args.move_budget is not None:
        if args.move_budget < 1:
            print("error: --move-budget must be >= 1", file=sys.stderr)
            return EXIT_CONFIG
        schedule = MoveBudgetTemperatureSchedule(args.move_budget)
    search = DeploymentSearch.from_config(
        topology,
        inventory,
        config,
        # With the analytic backend the mode no longer encodes the
        # hot-path choice, so the sampling fallback's engine is picked
        # by the flag directly.
        incremental=args.incremental,
        objective=objective,
        rng=args.seed + 4,
        checkpoint_path=checkpoint_path,
        checkpoint_every=args.checkpoint_every,
        should_stop=(lambda: stop_requested["flag"]) if checkpoint_path else None,
        batch_size=args.batch_size,
        temperature_schedule=schedule,
    )
    if args.resume:
        result = search.resume(args.resume, max_seconds=args.seconds)
    else:
        structure = ApplicationStructure.k_of_n(args.k, args.n)
        spec = SearchSpec(
            structure,
            desired_reliability=args.desired,
            max_seconds=args.seconds if args.seconds is not None else 10.0,
            forbid_shared_rack=True,
            max_iterations=args.move_budget,
        )
        result = search.search(spec)
    document = serialization.search_result_to_dict(result)
    human = (
        f"satisfied : {result.satisfied}\n"
        f"plan      : {result.best_plan}\n"
        f"estimate  : {result.best_assessment.estimate}\n"
        f"considered: {result.plans_considered} plans "
        f"({result.plans_skipped_symmetric} symmetric skips)\n"
        f"elapsed   : {result.elapsed_seconds:.1f} s"
    )
    if args.batch_size > 1:
        human += (
            f"\nbatches   : {result.batches_scored} score_plans calls over "
            f"{result.candidates_proposed} proposed candidates"
        )
    if checkpoint_path:
        human += f"\ncheckpoint: {checkpoint_path}"
        if stop_requested["flag"]:
            human += " (preempted; resume with --resume)"
    human = _attach_profile(args, metrics, document, human)
    _emit(args, document, human)
    if stop_requested["flag"]:
        return EXIT_PREEMPTED
    if result.satisfied or args.desired >= 1.0:
        return EXIT_OK
    return EXIT_UNSATISFIED


def cmd_risk(args) -> int:
    topology, inventory = _build_context(args)
    hosts = _parse_hosts(args.hosts)
    structure = ApplicationStructure.k_of_n(args.k, len(hosts))
    plan = DeploymentPlan.single_component(hosts, structure.components[0].name)
    analyzer = RiskAnalyzer(topology, inventory)
    entries = analyzer.report(plan, structure)
    document = serialization.risk_report_to_dict(entries)
    lines = [
        f"{'component':<28} {'type':<20} {'p':>8} {'lost':>5} {'down':>5}"
    ]
    for entry in entries[: args.top]:
        lines.append(
            f"{entry.component_id:<28} {entry.component_type:<20} "
            f"{entry.failure_probability:>8.4f} {entry.instances_lost:>5} "
            f"{'YES' if entry.application_down else '':>5}"
        )
    _emit(args, document, "\n".join(lines))
    return 0


def cmd_baseline(args) -> int:
    topology, inventory = _build_context(args)
    workload = HostWorkloadModel.paper_default(topology, seed=args.seed + 3)
    assessor = build_assessor(
        topology,
        inventory,
        AssessmentConfig(rounds=args.rounds, rng=args.seed + 2, kernel=args.kernel),
    )
    plans = {
        "common-practice": common_practice_plan(topology, workload, args.n),
        "enhanced-common-practice": enhanced_common_practice_plan(
            topology, workload, inventory, args.n
        ),
    }
    document: dict = {"format": "baseline-report", "version": 1, "plans": {}}
    lines = []
    for name, plan in plans.items():
        estimate = assessor.assess_k_of_n(plan.hosts(), args.k).estimate
        document["plans"][name] = {
            "plan": serialization.plan_to_dict(plan),
            "estimate": serialization.estimate_to_dict(estimate),
            "power_diversity": power_diversity(inventory, plan),
        }
        lines.append(f"{name}: {plan}")
        lines.append(
            f"  {estimate} | power diversity "
            f"{power_diversity(inventory, plan)}"
        )
    _emit(args, document, "\n".join(lines))
    return 0


def cmd_serve(args) -> int:
    import logging

    from repro.service.scheduler import ServiceConfig
    from repro.service.server import serve

    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    config = ServiceConfig(
        scale=args.scale,
        seed=args.seed,
        rounds=args.rounds,
        queue_capacity=args.queue_capacity,
        scheduler_workers=args.scheduler_workers,
        parallel_workers=args.parallel_workers,
        default_deadline_seconds=args.default_deadline,
        drain_timeout_seconds=args.drain_timeout,
        journal_dir=args.journal_dir,
        result_ttl_seconds=args.result_ttl,
        fleet_workers=args.workers,
        heartbeat_interval_seconds=args.heartbeat_interval,
        heartbeat_misses=args.heartbeat_misses,
    )
    return serve(config, host=args.host, port=args.port)


def cmd_capacity(args) -> int:
    from repro.service.capacity import plan_capacity

    plan = plan_capacity(
        target_rps=args.target_rps,
        per_worker_rps=args.per_worker_rps,
        slo=args.slo,
        crash_rate_per_hour=args.crash_rate,
        failover_seconds=args.failover_seconds,
        max_workers=args.max_workers,
        rounds=args.rounds,
        seed=args.seed,
    )
    document = plan.to_dict()
    lines = [
        f"throughput : {args.target_rps:g} rps target / "
        f"{args.per_worker_rps:g} rps per worker -> k={plan.k_required}",
        f"worker p   : {plan.worker_unavailability:.6f} unavailable "
        f"({args.crash_rate:g} crashes/h x {args.failover_seconds:g}s failover)",
        f"{'workers':>8}  {'availability':>14}  {'method':<12} meets "
        f"SLO {args.slo}",
    ]
    for candidate in plan.candidates:
        lines.append(
            f"{candidate.workers:>8}  {candidate.availability:>14.8f}  "
            f"{candidate.method:<12} {'YES' if candidate.meets_slo else 'no'}"
        )
    if plan.satisfiable:
        lines.append(f"recommend  : --workers {plan.recommended_workers}")
    else:
        lines.append(
            f"recommend  : UNSATISFIABLE within {args.max_workers} workers"
        )
    _emit(args, document, "\n".join(lines))
    return EXIT_OK if plan.satisfiable else EXIT_UNSATISFIED


def cmd_journal(args) -> int:
    from repro.service.journal import RequestJournal

    state = RequestJournal.scan(args.directory)
    pending = {entry.request_id: entry for entry in state.pending}
    document = {
        "directory": args.directory,
        "requests": len(state.events),
        "terminal": len(state.terminal_ids),
        "orphans": len(pending),
        "keys": len(state.keys),
        "lifecycle": {
            request_id: events
            for request_id, events in sorted(state.events.items())
        },
        "orphan_ids": sorted(pending),
    }
    lines = [
        f"journal    : {args.directory}",
        f"requests   : {len(state.events)} journaled, "
        f"{len(state.terminal_ids)} terminal, {len(pending)} orphaned",
        f"keys       : {len(state.keys)} completed idempotency key(s)",
    ]
    for request_id, events in sorted(state.events.items()):
        if args.orphans and request_id not in pending:
            continue
        entry = pending.get(request_id)
        marker = " ORPHAN" if entry is not None else ""
        shard = next(
            (e["shard"] for e in events if e.get("shard") is not None), None
        )
        shard_note = f" shard={shard}" if shard is not None else ""
        lines.append(f"{request_id}{shard_note}{marker}")
        for event in events:
            detail = ""
            if event.get("status"):
                detail = f" status={event['status']}"
            elif event.get("reason"):
                detail = f" reason={event['reason']}"
            kind = f" kind={event['kind']}" if event.get("kind") else ""
            lines.append(f"    {event['event']}{kind}{detail}")
    _emit(args, document, "\n".join(lines))
    return EXIT_OK


def cmd_redeploy(args) -> int:
    import os

    from repro.core.plan import ZoneConstraints
    from repro.faults.inventory import build_zone_inventory
    from repro.runtime.chaos import ZoneOutage
    from repro.service.redeploy import INCUMBENT_NAME, RedeploymentController
    from repro.topology.zones import MultiZoneTopology

    topology = MultiZoneTopology(
        zones=args.zones, k=args.fabric_k, seed=args.seed
    )
    inventory = build_zone_inventory(topology, seed=args.seed + 1)

    pinned: dict[str, list[str]] = {}
    for spec in args.pin or []:
        component, _, zones = spec.partition("=")
        zone_list = [z.strip() for z in zones.split(",") if z.strip()]
        if not component or not zone_list:
            print(
                f"error: --pin expects COMPONENT=zone[,zone...], got {spec!r}",
                file=sys.stderr,
            )
            return EXIT_CONFIG
        pinned[component] = zone_list
    known_zones = set(topology.zone_names)
    referenced = set()
    if args.primary_zone is not None:
        referenced.add(args.primary_zone)
    if args.inject_outage is not None:
        referenced.add(args.inject_outage)
    for zone_list in pinned.values():
        referenced.update(zone_list)
    unknown = sorted(referenced - known_zones)
    if unknown:
        print(
            f"error: unknown zone(s) {', '.join(unknown)}; this data center "
            f"has {', '.join(topology.zone_names)}",
            file=sys.stderr,
        )
        return EXIT_CONFIG
    constraints = ZoneConstraints.from_mapping(
        primary_zone=args.primary_zone,
        min_outside_primary=args.min_outside_primary,
        pinned_zones=pinned,
        spread_components=args.spread or (),
    )
    if constraints.is_trivial:
        constraints = None

    config = AssessmentConfig(
        rounds=args.rounds, rng=args.seed + 2, kernel=args.kernel
    )
    search = DeploymentSearch.from_config(
        topology, inventory, config, rng=args.seed + 4
    )
    structure = ApplicationStructure.k_of_n(args.k, args.n)

    # A first run has no committed incumbent to recover: seed one (random
    # but constraint-satisfying, so the controller starts from a legal
    # deployment). Reruns recover the journaled incumbent instead.
    incumbent = None
    if not os.path.exists(os.path.join(args.state_dir, INCUMBENT_NAME)):
        incumbent = DeploymentPlan.random(
            topology, structure, rng=args.seed + 5, zone_constraints=constraints
        )
    controller = RedeploymentController(
        search,
        structure,
        args.state_dir,
        incumbent=incumbent,
        zone_constraints=constraints,
        min_gain=args.min_gain,
        degradation_threshold=args.threshold,
        search_seconds=args.search_seconds,
        search_iterations=args.move_budget,
    )

    outage = None
    decisions = []
    try:
        if args.inject_outage is not None:
            # Establish the healthy baseline first, then fail the zone:
            # the controller must *observe* the degradation rather than
            # start inside it (a first check only sets the baseline).
            decisions += controller.run(1)
            outage = ZoneOutage(inventory, args.inject_outage)
            outage.inject()
        decisions += controller.run(args.cycles, poll_seconds=args.poll_seconds)
    finally:
        if outage is not None:
            outage.revert()

    recovery = controller.last_recovery
    document = {
        "format": "redeploy-report",
        "version": 1,
        "zones": args.zones,
        "state_dir": args.state_dir,
        "recovery": {
            "decisions_seen": recovery.decisions_seen,
            "completed_applies": recovery.completed_applies,
            "incumbent_restored": recovery.incumbent_restored,
            "torn_records_dropped": recovery.torn_records_dropped,
        },
        "decisions": [
            {
                "decision": d.decision_id,
                "event": d.event.to_dict(),
                "action": d.action,
                "incumbent_score": d.incumbent_score,
                "candidate_score": d.candidate_score,
                "gain": d.gain,
                "search_attempts": d.search_attempts,
                "plan": serialization.plan_to_dict(d.plan) if d.plan else None,
            }
            for d in decisions
        ],
        "incumbent": serialization.plan_to_dict(controller.incumbent),
        "baseline_score": controller.baseline_score,
    }
    lines = [
        f"zones      : {args.zones} x fat-tree(k={args.fabric_k}), "
        f"{len(topology.hosts)} hosts",
        f"recovery   : {recovery.decisions_seen} journaled decision(s), "
        f"{recovery.completed_applies} apply(ies) completed, incumbent "
        f"{'restored' if recovery.incumbent_restored else 'seeded'}",
    ]
    if not decisions:
        lines.append(f"decisions  : none in {args.cycles} cycle(s) — steady")
    for d in decisions:
        detail = f" [{d.event.detail}]" if d.event.detail else ""
        lines.append(
            f"decision {d.decision_id}: {d.event.kind}{detail} -> {d.action} "
            f"(incumbent {d.incumbent_score:.4f}"
            + (
                f", candidate {d.candidate_score:.4f}, gain {d.gain:+.4f}"
                if d.candidate_score is not None
                else ""
            )
            + f", {d.search_attempts} search attempt(s))"
        )
    lines.append(f"incumbent  : {controller.incumbent}")
    if controller.baseline_score is not None:
        lines.append(f"baseline   : {controller.baseline_score:.4f}")
    _emit(args, document, "\n".join(lines))
    if any(d.action == "abandoned" for d in decisions):
        return EXIT_UNSATISFIED
    return EXIT_OK


def cmd_drill(args) -> int:
    from repro.drill.engine import (
        replay_reproducer,
        run_campaign,
        write_verdict,
    )

    if args.replay is not None:
        result = replay_reproducer(args.replay)
        document = result.to_dict()
        lines = [
            f"replay     : {args.replay}",
            f"drill      : seed {result.seed}, {len(result.schedule)} "
            f"event(s), {result.ticks} tick(s), {result.crashes} crash(es)",
        ]
        if result.passed:
            lines.append("verdict    : PASS — the failure no longer reproduces")
        else:
            lines.append(
                f"verdict    : REPRODUCED — {len(result.violations)} "
                "invariant violation(s)"
            )
            for violation in result.violations:
                lines.append(f"  {violation.invariant}: {violation.detail}")
        _emit(args, document, "\n".join(lines))
        return EXIT_OK if result.passed else EXIT_DRILL

    report = run_campaign(
        rounds=args.rounds,
        seed=args.seed,
        bug=args.seed_bug,
        shards=args.shards,
        requests=args.requests,
        max_events=args.max_events,
        shrink_failures=not args.no_shrink,
        out_dir=args.out,
    )
    if args.out is not None:
        write_verdict(args.out, report)
    document = report.to_dict()
    lines = [
        f"campaign   : {report.rounds_run}/{report.rounds} round(s), "
        f"seed {report.seed}"
        + (f", seeded bug {report.bug!r}" if report.bug else ""),
        f"injected   : {report.total_faults} fault(s), "
        f"{report.total_crashes} simulated crash(es), "
        f"{report.total_submissions} client submission(s)",
    ]
    if report.passed:
        lines.append("verdict    : PASS — zero invariant violations")
    else:
        lines.append(
            f"verdict    : FAIL at round {report.failed_round} "
            f"(drill seed {report.failure.seed})"
        )
        for violation in report.failure.violations:
            lines.append(f"  {violation.invariant}: {violation.detail}")
        if report.shrunk_events is not None:
            lines.append(
                f"shrunk     : {report.original_events} -> "
                f"{report.shrunk_events} event(s) in {report.shrink_runs} "
                "re-run(s)"
            )
        if report.reproducer_path is not None:
            lines.append(f"reproducer : {report.reproducer_path}")
            lines.append(
                f"             re-run: repro drill --replay "
                f"{report.reproducer_path}"
            )
    _emit(args, document, "\n".join(lines))
    return EXIT_OK if report.passed else EXIT_DRILL


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="reCloud reproduction: reliable application deployment",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def analytic_flags(p):
        p.add_argument(
            "--assessor",
            choices=("sampled", "analytic"),
            default="sampled",
            help="assessment backend: 'sampled' (Monte Carlo dagger "
            "sampling) or 'analytic' (exact fault-tree evaluation where "
            "the relevant closure fits the tractability budget, sampled "
            "fallback elsewhere)",
        )
        p.add_argument(
            "--analytic-state-bits",
            type=int,
            default=20,
            metavar="B",
            help="analytic tractability budget: closures with more than B "
            "uncertain basic events (2**B exact states) fall back to "
            "sampling",
        )
        p.add_argument(
            "--analytic-shared-bits",
            type=int,
            default=12,
            metavar="B",
            help="analytic marginal-evaluation budget: at most B shared "
            "basic events conditioned out (2**B conditioning states)",
        )

    def common(p, rounds_default=10_000):
        p.add_argument(
            "--scale",
            choices=sorted(PAPER_SCALES),
            default="tiny",
            help="preset data-center scale (Table 2)",
        )
        p.add_argument("--seed", type=int, default=1, help="deterministic seed")
        p.add_argument(
            "--rounds",
            type=int,
            default=rounds_default,
            help="sampling rounds per assessment",
        )
        p.add_argument(
            "--json", action="store_true", help="emit machine-readable JSON"
        )
        p.add_argument(
            "--profile",
            action="store_true",
            help="collect and print stage timings and cache counters",
        )
        p.add_argument(
            "--kernel",
            action="store_true",
            help="route assessments through the compiled kernel (packed "
            "states + flattened fault trees); bit-identical, faster",
        )

    p = sub.add_parser("topology", help="print a data center summary")
    common(p)
    p.set_defaults(handler=cmd_topology)

    p = sub.add_parser("assess", help="assess a concrete plan")
    common(p)
    p.add_argument("--hosts", required=True, help="comma-separated host ids")
    p.add_argument("--k", type=int, required=True, help="instances that must be alive")
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="parallel worker processes (0 = sequential in-process)",
    )
    p.add_argument(
        "--portion-timeout",
        type=float,
        default=None,
        help="per-portion timeout in seconds before a worker is presumed hung",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retry attempts per failed portion before degrading",
    )
    p.add_argument(
        "--partial-ok",
        action="store_true",
        help="accept partial results with widened error bounds instead of "
        "recovering failed portions inline",
    )
    p.add_argument(
        "--mode",
        choices=("auto", "sequential", "parallel", "incremental"),
        default="auto",
        help="execution mode (auto = parallel when --workers > 0)",
    )
    analytic_flags(p)
    p.set_defaults(handler=cmd_assess)

    p = sub.add_parser("search", help="search for a reliable plan")
    common(p)
    p.add_argument("--k", type=int, help="instances that must be alive")
    p.add_argument("--n", type=int, help="instances to deploy")
    p.add_argument(
        "--seconds",
        type=float,
        default=None,
        help="T_max budget (default 10; on --resume, default keeps the "
        "checkpoint's budget)",
    )
    p.add_argument(
        "--desired", type=float, default=1.0, help="desired reliability R_desired"
    )
    p.add_argument(
        "--multi-objective",
        action="store_true",
        help="optimise reliability + workload utility (Eq. 7)",
    )
    p.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="periodically write a resumable search checkpoint here",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        metavar="N",
        help="checkpoint every N search iterations",
    )
    p.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="resume an interrupted search from this checkpoint "
        "(--k/--n come from the checkpoint)",
    )
    p.add_argument(
        "--incremental",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the search hot path through the incremental assessment "
        "engine (bit-identical to the from-scratch path, just faster)",
    )
    p.add_argument(
        "--batch-size",
        type=int,
        default=1,
        metavar="B",
        help="candidate neighbours proposed and scored (one shared-CRN "
        "score_plans call) per temperature step; 1 = the classic "
        "one-neighbour loop, bit-identical trajectories",
    )
    p.add_argument(
        "--move-budget",
        type=int,
        default=None,
        metavar="M",
        help="drive the temperature by moves consumed out of M instead of "
        "the wall clock, for host-speed-independent trajectories "
        "(also caps the search at M iterations; the time budget "
        "still applies)",
    )
    analytic_flags(p)
    p.set_defaults(handler=cmd_search)

    p = sub.add_parser("risk", help="single-failure risk report for a plan")
    common(p)
    p.add_argument("--hosts", required=True, help="comma-separated host ids")
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--top", type=int, default=20, help="entries to print")
    p.set_defaults(handler=cmd_risk)

    p = sub.add_parser("baseline", help="common-practice baselines")
    common(p)
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--n", type=int, required=True)
    p.set_defaults(handler=cmd_baseline)

    p = sub.add_parser(
        "serve", help="run the long-lived assessment service over HTTP"
    )
    common(p)
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8321, help="bind port (0 = ephemeral)")
    p.add_argument(
        "--queue-capacity",
        type=int,
        default=8,
        help="bounded admission queue size; further requests are shed",
    )
    p.add_argument(
        "--scheduler-workers",
        type=int,
        default=2,
        help="worker threads executing requests",
    )
    p.add_argument(
        "--parallel-workers",
        type=int,
        default=0,
        help="worker processes for the circuit-broken parallel backend "
        "(0 = chunked sequential only)",
    )
    p.add_argument(
        "--default-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="deadline applied to requests that do not set one",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long SIGTERM waits for in-flight requests before "
        "cancelling them into anytime results",
    )
    p.add_argument(
        "--journal-dir",
        default=None,
        metavar="DIR",
        help="enable durability: write-ahead request journal + result "
        "store in DIR; accepted requests survive a crash and are "
        "re-executed on restart, completed idempotency keys replay "
        "their stored response",
    )
    p.add_argument(
        "--result-ttl",
        type=float,
        default=7 * 24 * 3600.0,
        metavar="SECONDS",
        help="retention for stored results and sealed journal segments "
        "(default one week)",
    )
    p.add_argument(
        "--verbose", action="store_true", help="debug-level service logs"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard worker processes for the supervised fleet (0 = "
        "single-process thread scheduler); each worker owns a shard of "
        "the idempotency-key space, dead workers are failed over from "
        "the journal and respawned with backoff",
    )
    p.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="fleet worker heartbeat period",
    )
    p.add_argument(
        "--heartbeat-misses",
        type=int,
        default=8,
        help="consecutive missed heartbeats before a worker is declared dead",
    )
    p.set_defaults(handler=cmd_serve)

    p = sub.add_parser(
        "capacity",
        help="plan the worker fleet size for an SLO under a crash rate",
    )
    p.add_argument(
        "--target-rps", type=float, required=True,
        help="request throughput the fleet must sustain",
    )
    p.add_argument(
        "--per-worker-rps", type=float, required=True,
        help="measured throughput of one shard worker (bench_fleet.py "
        "reports this)",
    )
    p.add_argument(
        "--slo", type=float, default=0.999,
        help="required fleet availability (probability >= k workers alive)",
    )
    p.add_argument(
        "--crash-rate", type=float, default=1.0, metavar="PER_HOUR",
        help="expected worker crashes per hour",
    )
    p.add_argument(
        "--failover-seconds", type=float, default=5.0,
        help="detection + takeover + respawn window per crash",
    )
    p.add_argument(
        "--max-workers", type=int, default=64,
        help="largest fleet size to consider",
    )
    p.add_argument(
        "--rounds", type=int, default=200_000,
        help="Monte Carlo rounds for fleets too large to enumerate exactly",
    )
    p.add_argument("--seed", type=int, default=1, help="deterministic seed")
    p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    p.set_defaults(handler=cmd_capacity)

    p = sub.add_parser(
        "journal", help="inspect a write-ahead journal directory"
    )
    journal_sub = p.add_subparsers(dest="journal_command", required=True)
    p = journal_sub.add_parser(
        "inspect",
        help="print per-request lifecycle and orphan counts (read-only; "
        "safe against a live journal)",
    )
    p.add_argument("directory", help="journal directory to scan")
    p.add_argument(
        "--orphans", action="store_true",
        help="only show non-terminal (orphaned) requests",
    )
    p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    p.set_defaults(handler=cmd_journal)

    p = sub.add_parser(
        "redeploy",
        help="watch a multi-zone deployment, redeploy on degradation",
    )
    p.add_argument(
        "--zones", type=int, default=2, help="availability zones to build"
    )
    p.add_argument(
        "--fabric-k",
        type=int,
        default=4,
        help="fat-tree arity k of each zone's fabric",
    )
    p.add_argument("--seed", type=int, default=1, help="deterministic seed")
    p.add_argument(
        "--rounds",
        type=int,
        default=2000,
        help="sampling rounds per assessment",
    )
    p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    p.add_argument(
        "--kernel",
        action="store_true",
        help="route assessments through the compiled kernel",
    )
    p.add_argument("--k", type=int, required=True, help="instances that must be alive")
    p.add_argument("--n", type=int, required=True, help="instances to deploy")
    p.add_argument(
        "--state-dir",
        required=True,
        metavar="DIR",
        help="controller state: decision journal + committed incumbent; "
        "rerunning against the same DIR recovers cleanly after a crash",
    )
    p.add_argument(
        "--primary-zone",
        default=None,
        help="zone treated as primary for --min-outside-primary",
    )
    p.add_argument(
        "--min-outside-primary",
        type=int,
        default=0,
        metavar="K",
        help="require >= K instances placed outside the primary zone",
    )
    p.add_argument(
        "--pin",
        action="append",
        metavar="COMPONENT=ZONE[,ZONE...]",
        help="pin a component's instances to the listed zones (repeatable)",
    )
    p.add_argument(
        "--spread",
        action="append",
        metavar="COMPONENT",
        help="forbid this component's instances from sharing a zone "
        "(repeatable)",
    )
    p.add_argument(
        "--cycles", type=int, default=3, help="watch cycles to run"
    )
    p.add_argument(
        "--poll-seconds",
        type=float,
        default=0.0,
        help="sleep between watch cycles",
    )
    p.add_argument(
        "--search-seconds",
        type=float,
        default=5.0,
        help="T_max budget of each incumbent re-search",
    )
    p.add_argument(
        "--move-budget",
        type=int,
        default=None,
        metavar="M",
        help="cap each re-search at M annealing moves",
    )
    p.add_argument(
        "--min-gain",
        type=float,
        default=0.002,
        help="minimum reliability gain before a candidate is applied",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=0.005,
        help="reliability drop (vs baseline) that counts as degradation",
    )
    p.add_argument(
        "--inject-outage",
        default=None,
        metavar="ZONE",
        help="chaos: fail ZONE's shared roots for the duration of the run "
        "(demonstrates the outage -> redeploy loop)",
    )
    p.set_defaults(handler=cmd_redeploy)

    p = sub.add_parser(
        "drill",
        help="deterministic whole-stack failure drills "
        "(randomized fault schedules + invariant checks)",
    )
    p.add_argument(
        "--rounds",
        type=int,
        default=30,
        help="random fault schedules to run (stops at the first failure)",
    )
    p.add_argument("--seed", type=int, default=7, help="campaign seed")
    p.add_argument(
        "--shards", type=int, default=3, help="simulated fleet shards"
    )
    p.add_argument(
        "--requests",
        type=int,
        default=10,
        help="client submissions per drill",
    )
    p.add_argument(
        "--max-events",
        type=int,
        default=5,
        help="fault events per random schedule (1..N)",
    )
    p.add_argument(
        "--seed-bug",
        default=None,
        metavar="NAME",
        help="graft a known bug onto every schedule (self-test that the "
        "invariants catch it); see repro.drill.schedule.SEEDED_BUGS",
    )
    p.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="re-run a reproducer JSON instead of a campaign",
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for reproducer JSON and the campaign verdict "
        "(default: current directory, verdict not written)",
    )
    p.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip delta-debugging the failing schedule",
    )
    p.add_argument("--json", action="store_true", help="machine output")
    p.set_defaults(handler=cmd_drill)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ValidationError as exc:
        print("error: validation failed", file=sys.stderr)
        for field, message in exc.errors:
            print(f"  {field}: {message}", file=sys.stderr)
        return EXIT_CONFIG
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CONFIG


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
