"""Command-line interface: ``python -m repro <command>``.

A thin operational wrapper around the library for providers who want to
drive reCloud from scripts:

``topology``   print a data center's Table-2 style summary
``assess``     assess a concrete plan's reliability with error bounds
``search``     search for a reliable plan within a time budget
``risk``       single-failure risk report for a plan
``baseline``   show the common-practice / enhanced-CP plans

All commands operate on the paper's preset data centers (``--scale``)
with the §4.1 inventory, seeded deterministically (``--seed``), and can
emit machine-readable JSON (``--json``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import serialization
from repro.app.structure import ApplicationStructure
from repro.baselines.common_practice import (
    common_practice_plan,
    enhanced_common_practice_plan,
    power_diversity,
)
from repro.core.assessment import ReliabilityAssessor
from repro.core.objectives import CompositeObjective, WorkloadUtilityObjective
from repro.core.plan import DeploymentPlan
from repro.core.risk import RiskAnalyzer
from repro.core.search import DeploymentSearch, SearchSpec
from repro.faults.inventory import build_paper_inventory
from repro.faults.probability import annual_downtime_hours
from repro.topology.presets import PAPER_SCALES, paper_topology
from repro.util.errors import ReproError
from repro.workload.model import HostWorkloadModel


def _build_context(args):
    topology = paper_topology(args.scale, seed=args.seed)
    inventory = build_paper_inventory(topology, seed=args.seed + 1)
    return topology, inventory


def _emit(args, document: dict, human: str) -> None:
    if getattr(args, "json", False):
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(human)


def _parse_hosts(raw: str) -> list[str]:
    return [h.strip() for h in raw.split(",") if h.strip()]


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_topology(args) -> int:
    topology, inventory = _build_context(args)
    summary = topology.summarize()
    document = {
        "scale": args.scale,
        "ports_per_switch": summary.ports_per_switch,
        "core_switches": summary.core_switches,
        "aggregation_switches": summary.aggregation_switches,
        "edge_switches": summary.edge_switches,
        "border_switches": summary.border_switches,
        "hosts": summary.hosts,
        "links": summary.links,
        "power_supplies": inventory.dependency_count(),
    }
    human = "\n".join(f"{key:>22}: {value}" for key, value in document.items())
    _emit(args, document, human)
    return 0


def cmd_assess(args) -> int:
    topology, inventory = _build_context(args)
    hosts = _parse_hosts(args.hosts)
    assessor = ReliabilityAssessor(
        topology, inventory, rounds=args.rounds, rng=args.seed + 2
    )
    result = assessor.assess_k_of_n(hosts, args.k)
    document = serialization.assessment_to_dict(result)
    human = (
        f"plan      : {result.plan}\n"
        f"estimate  : {result.estimate}\n"
        f"downtime  : {annual_downtime_hours(result.score):.1f} h/year\n"
        f"sampled   : {result.sampled_components} components\n"
        f"elapsed   : {result.elapsed_seconds * 1e3:.1f} ms"
    )
    _emit(args, document, human)
    return 0


def cmd_search(args) -> int:
    topology, inventory = _build_context(args)
    structure = ApplicationStructure.k_of_n(args.k, args.n)
    assessor = ReliabilityAssessor(
        topology, inventory, rounds=args.rounds, rng=args.seed + 2
    )
    if args.multi_objective:
        workload = HostWorkloadModel.paper_default(topology, seed=args.seed + 3)
        objective = CompositeObjective.reliability_and_utility(
            WorkloadUtilityObjective(workload)
        )
    else:
        objective = None
    search = DeploymentSearch(assessor, objective=objective, rng=args.seed + 4)
    spec = SearchSpec(
        structure,
        desired_reliability=args.desired,
        max_seconds=args.seconds,
        forbid_shared_rack=True,
    )
    result = search.search(spec)
    document = serialization.search_result_to_dict(result)
    human = (
        f"satisfied : {result.satisfied}\n"
        f"plan      : {result.best_plan}\n"
        f"estimate  : {result.best_assessment.estimate}\n"
        f"considered: {result.plans_considered} plans "
        f"({result.plans_skipped_symmetric} symmetric skips)\n"
        f"elapsed   : {result.elapsed_seconds:.1f} s"
    )
    _emit(args, document, human)
    return 0 if result.satisfied or args.desired >= 1.0 else 3


def cmd_risk(args) -> int:
    topology, inventory = _build_context(args)
    hosts = _parse_hosts(args.hosts)
    structure = ApplicationStructure.k_of_n(args.k, len(hosts))
    plan = DeploymentPlan.single_component(hosts, structure.components[0].name)
    analyzer = RiskAnalyzer(topology, inventory)
    entries = analyzer.report(plan, structure)
    document = serialization.risk_report_to_dict(entries)
    lines = [
        f"{'component':<28} {'type':<20} {'p':>8} {'lost':>5} {'down':>5}"
    ]
    for entry in entries[: args.top]:
        lines.append(
            f"{entry.component_id:<28} {entry.component_type:<20} "
            f"{entry.failure_probability:>8.4f} {entry.instances_lost:>5} "
            f"{'YES' if entry.application_down else '':>5}"
        )
    _emit(args, document, "\n".join(lines))
    return 0


def cmd_baseline(args) -> int:
    topology, inventory = _build_context(args)
    workload = HostWorkloadModel.paper_default(topology, seed=args.seed + 3)
    assessor = ReliabilityAssessor(
        topology, inventory, rounds=args.rounds, rng=args.seed + 2
    )
    plans = {
        "common-practice": common_practice_plan(topology, workload, args.n),
        "enhanced-common-practice": enhanced_common_practice_plan(
            topology, workload, inventory, args.n
        ),
    }
    document: dict = {"format": "baseline-report", "version": 1, "plans": {}}
    lines = []
    for name, plan in plans.items():
        estimate = assessor.assess_k_of_n(plan.hosts(), args.k).estimate
        document["plans"][name] = {
            "plan": serialization.plan_to_dict(plan),
            "estimate": serialization.estimate_to_dict(estimate),
            "power_diversity": power_diversity(inventory, plan),
        }
        lines.append(f"{name}: {plan}")
        lines.append(
            f"  {estimate} | power diversity "
            f"{power_diversity(inventory, plan)}"
        )
    _emit(args, document, "\n".join(lines))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="reCloud reproduction: reliable application deployment",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, rounds_default=10_000):
        p.add_argument(
            "--scale",
            choices=sorted(PAPER_SCALES),
            default="tiny",
            help="preset data-center scale (Table 2)",
        )
        p.add_argument("--seed", type=int, default=1, help="deterministic seed")
        p.add_argument(
            "--rounds",
            type=int,
            default=rounds_default,
            help="sampling rounds per assessment",
        )
        p.add_argument(
            "--json", action="store_true", help="emit machine-readable JSON"
        )

    p = sub.add_parser("topology", help="print a data center summary")
    common(p)
    p.set_defaults(handler=cmd_topology)

    p = sub.add_parser("assess", help="assess a concrete plan")
    common(p)
    p.add_argument("--hosts", required=True, help="comma-separated host ids")
    p.add_argument("--k", type=int, required=True, help="instances that must be alive")
    p.set_defaults(handler=cmd_assess)

    p = sub.add_parser("search", help="search for a reliable plan")
    common(p)
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--n", type=int, required=True, help="instances to deploy")
    p.add_argument("--seconds", type=float, default=10.0, help="T_max budget")
    p.add_argument(
        "--desired", type=float, default=1.0, help="desired reliability R_desired"
    )
    p.add_argument(
        "--multi-objective",
        action="store_true",
        help="optimise reliability + workload utility (Eq. 7)",
    )
    p.set_defaults(handler=cmd_search)

    p = sub.add_parser("risk", help="single-failure risk report for a plan")
    common(p)
    p.add_argument("--hosts", required=True, help="comma-separated host ids")
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--top", type=int, default=20, help="entries to print")
    p.set_defaults(handler=cmd_risk)

    p = sub.add_parser("baseline", help="common-practice baselines")
    common(p)
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--n", type=int, required=True)
    p.set_defaults(handler=cmd_baseline)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
