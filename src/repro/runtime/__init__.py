"""Parallel execution engine for multi-round assessments."""

from repro.runtime.mapreduce import ParallelAssessor

__all__ = ["ParallelAssessor"]
