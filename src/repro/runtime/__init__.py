"""Supervised parallel execution engine for multi-round assessments."""

from repro.runtime.chaos import ChaosAction, ChaosPolicy, ZoneOutage
from repro.runtime.mapreduce import ParallelAssessor, RetryPolicy

__all__ = [
    "ChaosAction",
    "ChaosPolicy",
    "ParallelAssessor",
    "RetryPolicy",
    "ZoneOutage",
]
