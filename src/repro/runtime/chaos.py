"""Deterministic fault injection for the parallel runtime.

A reliability engine should be tested the way it tests others: by making
its own substrate fail. :class:`ChaosPolicy` decides — deterministically,
from ``(portion index, attempt number)`` — whether a worker handling a
portion should crash (die without a word, like an OOM-killed process),
hang (stop responding, like a livelocked worker), raise an error, or
merely return late. Tests and ``benchmarks/bench_runtime_faults.py`` use
it to measure how the supervised :class:`~repro.runtime.mapreduce.
ParallelAssessor` recovers.

Injection happens *inside worker processes only*: the master's inline
fallback path is never sabotaged, mirroring the real failure domain (the
master is the reliable coordinator; workers are the commodity substrate).

Determinism matters twice over. It makes failures reproducible (a test
seed always kills the same portions), and it lets ``max_attempts`` model
*transient* faults: a portion is only sabotaged while ``attempt <
max_attempts``, so a retried portion eventually goes through — the
crash-loop/recovery behaviour real clusters exhibit.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.util.errors import ConfigurationError

#: Failure kinds a policy can inject.
KINDS = ("crash", "hang", "error", "delay")

#: Probability a zone's shared roots are driven to during an injected
#: outage. Just under 1 because components require p < 1; at 1e-6 odds of
#: survival the zone is down in essentially every sampled round.
ZONE_OUTAGE_PROBABILITY = 0.999999

#: How long a "hung" worker sleeps. Long enough that only supervision
#: (portion timeout + pool restart) can rescue the assessment; the pool's
#: terminate() kills the sleeper when the supervisor restarts it.
HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class ChaosAction:
    """One injected fault: what to do to the worker, and for how long."""

    kind: str
    seconds: float = 0.0


@dataclass(frozen=True)
class ChaosPolicy:
    """Decides which (portion, attempt) executions are sabotaged.

    Two addressing modes, combinable:

    * **Explicit**: ``crash``/``hang``/``error`` name portion indices,
      ``delay`` maps portion indices to extra seconds of latency.
    * **Random-rate**: ``rate`` injects a failure into that fraction of
      (portion, attempt) executions, choosing uniformly among ``kinds``;
      the draw is a pure function of ``(seed, portion, attempt)``.

    Attributes:
        crash: Portions whose worker calls ``os._exit`` mid-portion.
        hang: Portions whose worker sleeps ~forever (must be reaped by a
            portion timeout + pool restart).
        error: Portions whose worker raises ``RuntimeError``.
        delay: Portion → seconds of added latency (a *late* worker: the
            result is correct but may miss a tight portion timeout).
        rate: Probability of injecting into any given (portion, attempt).
        kinds: Failure kinds the random mode draws from.
        seed: Seed for the random mode's deterministic draws.
        max_attempts: Inject only while ``attempt < max_attempts``; with
            the default 1, every fault is transient and the first retry
            of a portion succeeds.
    """

    crash: frozenset = frozenset()
    hang: frozenset = frozenset()
    error: frozenset = frozenset()
    delay: Mapping[int, float] = field(default_factory=dict)
    rate: float = 0.0
    kinds: tuple[str, ...] = ("crash", "error")
    seed: int = 0
    max_attempts: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "crash", frozenset(self.crash))
        object.__setattr__(self, "hang", frozenset(self.hang))
        object.__setattr__(self, "error", frozenset(self.error))
        object.__setattr__(self, "delay", dict(self.delay))
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {self.rate}")
        for kind in self.kinds:
            if kind not in KINDS:
                raise ConfigurationError(
                    f"unknown chaos kind {kind!r}; expected one of {KINDS}"
                )
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    # ------------------------------------------------------------------

    def action_for(self, portion: int, attempt: int) -> ChaosAction | None:
        """The fault to inject into this execution, or ``None``."""
        if attempt >= self.max_attempts:
            return None
        if portion in self.crash:
            return ChaosAction("crash")
        if portion in self.hang:
            return ChaosAction("hang", HANG_SECONDS)
        if portion in self.error:
            return ChaosAction("error")
        if portion in self.delay:
            return ChaosAction("delay", float(self.delay[portion]))
        if self.rate > 0.0:
            stream = np.random.default_rng(
                np.random.SeedSequence([self.seed, portion, attempt])
            )
            if stream.random() < self.rate:
                kind = self.kinds[int(stream.integers(0, len(self.kinds)))]
                seconds = HANG_SECONDS if kind == "hang" else 0.25
                return ChaosAction(kind, seconds)
        return None

    def targeted_portions(self, portions: int) -> set[int]:
        """Portion indices that would be sabotaged on their first attempt
        (useful for asserting an injection-rate floor in tests)."""
        return {
            index
            for index in range(portions)
            if self.action_for(index, 0) is not None
        }

    def execute(self, portion: int, attempt: int) -> None:
        """Apply the injected fault, if any. Runs inside the worker."""
        action = self.action_for(portion, attempt)
        if action is None:
            return
        if action.kind == "crash":
            # A real crash: no exception, no cleanup, no exit handlers —
            # the process is simply gone, as after a SIGKILL.
            os._exit(70)
        if action.kind == "hang":
            time.sleep(action.seconds)
            return
        if action.kind == "error":
            raise RuntimeError(
                f"chaos: injected worker error (portion {portion}, attempt {attempt})"
            )
        time.sleep(action.seconds)  # "delay": late but otherwise healthy


class ZoneOutage:
    """Take a whole availability zone down in one injection.

    Drives every shared root of the zone (power feed, cooling plant,
    control plane — see :func:`repro.faults.inventory.
    attach_zone_shared_roots`) to :data:`ZONE_OUTAGE_PROBABILITY` at
    once, which fails every element of the zone in essentially every
    sampled round — the correlated disaster the cross-zone placement
    constraints exist for. :meth:`revert` restores the exact original
    probabilities, and the class is a context manager (``with
    ZoneOutage(model, "zone0"): ...``).

    Only probabilities change, never structure, so attached fault trees
    and topology graphs stay valid. Assessors cache probability maps:
    after :meth:`inject`/:meth:`revert`, call ``refresh_probabilities()``
    on from-scratch assessors and ``clear_caches()`` on incremental ones
    (the :class:`~repro.service.redeploy.RedeploymentController` does
    this automatically).
    """

    def __init__(self, dependency_model, zone: str, probability: float = ZONE_OUTAGE_PROBABILITY):
        from repro.faults.inventory import zone_shared_root_ids

        if not 0.0 < probability < 1.0:
            raise ConfigurationError(
                f"outage probability must be in (0, 1), got {probability}"
            )
        self.dependency_model = dependency_model
        self.zone = zone
        self.probability = probability
        self.root_ids = zone_shared_root_ids(dependency_model, zone)
        self._saved: dict[str, float] | None = None

    @property
    def active(self) -> bool:
        """True while the outage is injected."""
        return self._saved is not None

    def inject(self) -> list[str]:
        """Fail the zone's shared roots; returns the affected root ids.

        All-or-nothing: the roots are overridden one at a time, each
        original saved *before* its mutation, and any failure rolls back
        every override already applied before re-raising. Without that, a
        root that rejects its override would leak a half-failed zone —
        and ``with ZoneOutage(...)`` never reaches ``__exit__`` when
        ``__enter__`` raises, so nothing else would clean it up.
        """
        if self.active:
            return self.root_ids
        probabilities = self.dependency_model.failure_probabilities()
        saved: dict[str, float] = {}
        try:
            for rid in self.root_ids:
                saved[rid] = probabilities[rid]
                self.dependency_model.override_probabilities(
                    {rid: self.probability}
                )
        except BaseException:
            if saved:
                # The failing root may or may not have been applied;
                # restoring its saved original either way is harmless.
                self.dependency_model.override_probabilities(saved)
            raise
        self._saved = saved
        return self.root_ids

    def revert(self) -> None:
        """Restore the pre-outage probabilities (idempotent)."""
        if self._saved is None:
            return
        self.dependency_model.override_probabilities(self._saved)
        self._saved = None

    def __enter__(self) -> "ZoneOutage":
        self.inject()
        return self

    def __exit__(self, *exc_info) -> None:
        self.revert()
