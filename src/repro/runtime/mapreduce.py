"""Parallel route-and-check via a MapReduce-style master/worker split.

§3.2.1: "A master node distributes portions of rounds to worker nodes.
Each worker node performs the route-and-check for the assigned rounds. The
master node then gathers the results from each worker node to compute the
overall reliability score."

Here the worker nodes are processes on one machine (the closest local
equivalent of the paper's distributed execution engine). Each worker
receives a (seed, rounds) portion, runs the full sample + fault-tree +
route-and-check pipeline for its rounds, and ships back its per-round
result list; the master concatenates the lists and computes the estimate —
statistically identical to a single sequential run over the union of
rounds, because portions use independent random streams.

The paper's Fig. 12 lesson reproduces naturally: for small round counts
the serialization/transmission and per-worker context setup dominate the
cheap route-and-check, so parallel execution only pays off when very high
assessment accuracy (many rounds) is required.

Implementation note: the process backend uses a fork-based
``multiprocessing.Pool``, whose workers fork *eagerly* at construction;
the (possibly huge) topology is inherited copy-on-write and never pickled.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool

import numpy as np

from repro.app.structure import ApplicationStructure
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.core.result import AssessmentResult
from repro.faults.dependencies import DependencyModel
from repro.sampling.base import Sampler
from repro.sampling.statistics import estimate_from_results
from repro.topology.base import Topology
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng
from repro.util.timing import Stopwatch

#: State inherited by forked workers. Written immediately before the pool
#: forks and cleared right after, so concurrent instances cannot clash.
_FORK_STATE: dict = {}


def _init_forked_worker() -> None:
    """Pin the forked snapshot of the parent state inside the worker."""
    global _WORKER_STATE
    _WORKER_STATE = dict(_FORK_STATE)


_WORKER_STATE: dict = {}


def _worker_portion(args: tuple) -> np.ndarray:
    """Run the route-and-check pipeline for one portion of rounds.

    The assessor is the per-worker "context" of §3.2.1 and is set up once
    per worker process, then reused across portions; only the stream seed
    and the round count change per task.
    """
    seed, rounds, plan, structure = args
    assessor = _WORKER_STATE.get("assessor")
    if assessor is None:
        assessor = ReliabilityAssessor(
            _WORKER_STATE["topology"],
            _WORKER_STATE["model"],
            sampler=_WORKER_STATE["sampler"],
            rounds=rounds,
            rng=seed,
        )
        _WORKER_STATE["assessor"] = assessor
    assessor.rng = make_rng(seed)
    return assessor.assess(plan, structure, rounds=rounds).per_round


class ParallelAssessor:
    """Assesses plans by fanning rounds out to worker processes.

    Statistically equivalent to :class:`ReliabilityAssessor` with the same
    total round count. ``backend`` selects ``"process"`` (default; uses
    fork so the topology is shared copy-on-write) or ``"inline"`` (no
    parallelism — the master does everything; the 0-worker baseline and
    the fallback on platforms without fork).
    """

    def __init__(
        self,
        topology: Topology,
        dependency_model: DependencyModel | None = None,
        sampler: Sampler | None = None,
        rounds: int = 10_000,
        workers: int = 2,
        rng: int | np.random.Generator | None = None,
        backend: str = "process",
    ):
        if workers < 1:
            raise ConfigurationError(f"need at least one worker, got {workers}")
        if backend not in ("process", "inline"):
            raise ConfigurationError(f"unknown backend {backend!r}")
        self.topology = topology
        self.dependency_model = dependency_model or DependencyModel.empty(topology)
        self.sampler = sampler
        self.rounds = rounds
        self.workers = workers
        self.backend = backend
        self.rng = make_rng(rng)
        self._pool: multiprocessing.pool.Pool | None = None
        if backend == "process":
            self._start_pool()

    # ------------------------------------------------------------------

    def _start_pool(self) -> None:
        # multiprocessing.Pool forks all workers eagerly in the
        # constructor, so the state snapshot below is taken synchronously
        # and can be cleared as soon as the constructor returns.
        _FORK_STATE.update(
            topology=self.topology,
            model=self.dependency_model,
            sampler=self.sampler,
        )
        try:
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(
                processes=self.workers, initializer=_init_forked_worker
            )
        finally:
            _FORK_STATE.clear()

    def close(self) -> None:
        """Shut the worker pool down."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelAssessor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _portions(self, rounds: int) -> list[int]:
        """Split ``rounds`` into one near-equal portion per worker."""
        base = rounds // self.workers
        remainder = rounds % self.workers
        portions = [base + (1 if i < remainder else 0) for i in range(self.workers)]
        return [p for p in portions if p > 0]

    def assess(
        self,
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        rounds: int | None = None,
    ) -> AssessmentResult:
        """Distribute, gather, reduce (the MapReduce of §3.2.1)."""
        watch = Stopwatch()
        total_rounds = rounds or self.rounds
        portions = self._portions(total_rounds)
        seeds = [int(s) for s in self.rng.integers(0, 2**63, size=len(portions))]
        tasks = [
            (seed, portion, plan, structure)
            for seed, portion in zip(seeds, portions)
        ]

        if self._pool is None:
            results = [self._inline_portion(task) for task in tasks]
        else:
            results = self._pool.map(_worker_portion, tasks)

        per_round = np.concatenate(results)
        estimate = estimate_from_results(per_round)
        return AssessmentResult(
            plan=plan,
            estimate=estimate,
            per_round=per_round,
            sampled_components=-1,  # workers sample independently
            elapsed_seconds=watch.elapsed(),
        )

    def _inline_portion(self, args: tuple) -> np.ndarray:
        seed, rounds, plan, structure = args
        assessor = ReliabilityAssessor(
            self.topology,
            self.dependency_model,
            sampler=self.sampler,
            rounds=rounds,
            rng=seed,
        )
        return assessor.assess(plan, structure).per_round
