"""Parallel route-and-check via a supervised MapReduce-style master/worker split.

§3.2.1: "A master node distributes portions of rounds to worker nodes.
Each worker node performs the route-and-check for the assigned rounds. The
master node then gathers the results from each worker node to compute the
overall reliability score."

Here the worker nodes are processes on one machine (the closest local
equivalent of the paper's distributed execution engine). Each worker
receives a (seed, rounds) portion, runs the full sample + fault-tree +
route-and-check pipeline for its rounds, and ships back its per-round
result list; the master concatenates the lists and computes the estimate —
statistically identical to a single sequential run over the union of
rounds, because portions use independent random streams.

The master is also a *supervisor*. A system that assesses reliability
should itself survive component failure, so portions are dispatched
asynchronously under a :class:`RetryPolicy`:

* a portion that exceeds its per-portion timeout is marked hung and the
  worker pool is restarted (terminating the stuck worker);
* a worker process that dies is detected by watching worker pids, the
  pool is restarted, and the lost portions are retried;
* retried portions are *reseeded deterministically* from their base seed
  and attempt number, so the estimate stays reproducible given the same
  failure pattern and every attempt is an independent, unbiased stream;
* when retries are exhausted the master degrades gracefully: by default
  it recovers the portion by running it inline (the 0-worker fallback
  backend), or — under ``partial_ok`` — returns an estimate built from
  the portions that did complete, flagged ``degraded`` with honestly
  widened error bounds.

The paper's Fig. 12 lesson reproduces naturally: for small round counts
the serialization/transmission and per-worker context setup dominate the
cheap route-and-check, so parallel execution only pays off when very high
assessment accuracy (many rounds) is required.

Implementation note: the process backend uses a fork-based
``multiprocessing.Pool``, whose workers inherit the (possibly huge)
topology copy-on-write — it is never pickled. The inherited state lives
in a registry keyed per assessor for the pool's lifetime, so workers the
pool respawns after a crash re-initialize correctly, and concurrent
assessors cannot clash. On platforms without the fork start method the
assessor degrades to the inline backend with a warning instead of
crashing.
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
import multiprocessing.pool
import time
import warnings
from dataclasses import dataclass, replace
from typing import Any, Sequence

import numpy as np

from repro.app.structure import ApplicationStructure
from repro.core.api import (
    AssessmentConfig,
    reject_legacy_kwargs,
    score_plans_sequentially,
)
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.core.result import AssessmentResult, PortionFailure, RuntimeMetadata
from repro.faults.dependencies import DependencyModel
from repro.runtime.chaos import ChaosPolicy
from repro.sampling.statistics import estimate_from_results
from repro.topology.base import Topology
from repro.util.errors import (
    ConfigurationError,
    DegradedResult,
    OperationCancelled,
    PortionTimeout,
    WorkerFailure,
)
from repro.util.rng import make_rng
from repro.util.timing import Stopwatch

#: Per-assessor state inherited by forked workers, keyed by a registry id.
#: An entry lives exactly as long as its assessor's pool, so workers the
#: pool respawns later (after a crash) still find their state at fork time.
_FORK_REGISTRY: dict[int, dict] = {}
_REGISTRY_IDS = itertools.count(1)

_WORKER_STATE: dict = {}


def _init_forked_worker(registry_key: int) -> None:
    """Pin the forked snapshot of the parent state inside the worker."""
    global _WORKER_STATE
    _WORKER_STATE = dict(_FORK_REGISTRY[registry_key])


def _seed_for_attempt(base_seed: int, attempt: int) -> int:
    """Deterministic stream seed for one attempt at one portion.

    Attempt 0 uses the base seed itself (so a failure-free run is
    bit-identical to the unsupervised runtime); retries derive a fresh,
    independent stream from (base seed, attempt) so a deterministic
    worker fault tied to the stream cannot recur forever and the retried
    estimate is still reproducible.
    """
    if attempt == 0:
        return int(base_seed)
    derived = np.random.SeedSequence([int(base_seed), int(attempt)])
    return int(derived.generate_state(1, dtype=np.uint64)[0] & (2**63 - 1))


def _worker_portion(args: tuple) -> tuple[np.ndarray, int]:
    """Run the route-and-check pipeline for one portion of rounds.

    The assessor is the per-worker "context" of §3.2.1 and is set up once
    per worker process, then reused across portions; only the stream seed
    and the round count change per task. Returns the per-round result
    list and the sampled-closure size so the master can aggregate real
    metadata instead of a sentinel.
    """
    portion_index, attempt, seed, rounds, plan, structure = args
    chaos: ChaosPolicy | None = _WORKER_STATE.get("chaos")
    if chaos is not None:
        chaos.execute(portion_index, attempt)
    assessor = _WORKER_STATE.get("assessor")
    if assessor is None:
        assessor = ReliabilityAssessor.from_config(
            _WORKER_STATE["topology"],
            _WORKER_STATE["model"],
            AssessmentConfig(
                rounds=rounds,
                sampler=_WORKER_STATE["sampler"],
                rng=seed,
                kernel=_WORKER_STATE.get("kernel", False),
            ),
        )
        _WORKER_STATE["assessor"] = assessor
    assessor.rng = make_rng(seed)
    result = assessor.assess(plan, structure, rounds=rounds)
    return result.per_round, result.sampled_components


@dataclass(frozen=True)
class RetryPolicy:
    """How the master supervises portions (timeouts, retries, backoff).

    Attributes:
        timeout_seconds: Per-portion deadline; a portion that has not
            reported by then is treated as hung and the pool restarted.
            ``None`` disables the timeout (crashes are still detected by
            pid-watching, but a genuinely hung worker then hangs the
            assessment — set a timeout for production use).
        max_retries: Retry attempts per portion after its first failure.
        backoff_seconds: Base delay before re-dispatching failed portions.
        backoff_multiplier: Exponential growth factor per retry attempt.
        max_backoff_seconds: Cap on the backoff delay.
        jitter_fraction: Uniform ±fraction of jitter applied to each
            backoff sleep (decorrelates retry stampedes; drawn from a
            private stream so estimates stay reproducible).
        poll_interval_seconds: How often the master polls pending
            portions and checks worker liveness while waiting.
    """

    timeout_seconds: float | None = None
    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 2.0
    jitter_fraction: float = 0.25
    poll_interval_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError(
                f"timeout must be positive or None, got {self.timeout_seconds}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigurationError(
                f"jitter fraction must be in [0, 1], got {self.jitter_fraction}"
            )
        if self.poll_interval_seconds <= 0:
            raise ConfigurationError(
                f"poll interval must be positive, got {self.poll_interval_seconds}"
            )

    def backoff_for(self, attempt: int, jitter_rng: np.random.Generator) -> float:
        """Sleep before re-dispatching a portion on its Nth retry (1-based)."""
        delay = self.backoff_seconds * self.backoff_multiplier ** max(0, attempt - 1)
        delay = min(delay, self.max_backoff_seconds)
        if self.jitter_fraction > 0.0 and delay > 0.0:
            spread = self.jitter_fraction * delay
            delay += float(jitter_rng.uniform(-spread, spread))
        return max(0.0, delay)


@dataclass
class _Portion:
    """Supervision state for one portion of rounds."""

    index: int
    rounds: int
    base_seed: int
    attempt: int = 0

    def seed(self) -> int:
        return _seed_for_attempt(self.base_seed, self.attempt)


class _PassAborted(Exception):
    """Internal: a worker death invalidated the rest of a dispatch pass."""


class _PassCancelled(Exception):
    """Internal: the caller's cancellation token fired during a pass."""


class ParallelAssessor:
    """Assesses plans by fanning rounds out to supervised worker processes.

    Statistically equivalent to :class:`ReliabilityAssessor` with the same
    total round count. ``backend`` selects ``"process"`` (default; uses
    fork so the topology is shared copy-on-write) or ``"inline"`` (no
    parallelism — the master does everything; the 0-worker baseline and
    the fallback on platforms without fork).

    Fault tolerance is governed by ``retry_policy`` (see
    :class:`RetryPolicy`). ``partial_ok=True`` switches the degradation
    mode from "recover exhausted portions inline" to "return a degraded
    partial estimate with widened error bounds". ``chaos`` injects
    deterministic worker faults for tests and benchmarks (never applied
    on the inline path).
    """

    def __init__(
        self,
        topology: Topology,
        dependency_model: DependencyModel | None = None,
        config: AssessmentConfig | None = None,
        **legacy: Any,
    ):
        if legacy:
            reject_legacy_kwargs(legacy)
        config = config or AssessmentConfig(mode="parallel")
        if config.workers < 1:
            raise ConfigurationError(
                f"need at least one worker, got {config.workers}"
            )
        if config.backend not in ("process", "inline"):
            raise ConfigurationError(f"unknown backend {config.backend!r}")
        backend = config.backend
        if backend == "process" and not self._fork_available():
            warnings.warn(
                "the 'fork' start method is unavailable on this platform; "
                "falling back to backend='inline' (no parallelism)",
                RuntimeWarning,
                stacklevel=2,
            )
            backend = "inline"
            config = config.with_updates(backend="inline")
        self.config = config
        self.topology = topology
        self.dependency_model = dependency_model or DependencyModel.empty(topology)
        self.sampler = config.sampler
        self.rounds = config.rounds
        self.workers = config.workers
        self.backend = backend
        self.retry_policy = config.retry_policy or RetryPolicy()
        self.partial_ok = config.partial_ok
        self.chaos = config.chaos
        self.rng = make_rng(config.rng)
        self.metrics = config.registry()
        self._jitter_rng = np.random.default_rng()
        self._pool: multiprocessing.pool.Pool | None = None
        self._pool_suspect = False  # a hang/crash was seen: drain may block
        self._registry_key = next(_REGISTRY_IDS)
        self._pool_restarts = 0
        if backend == "process":
            self._start_pool()

    @classmethod
    def from_config(
        cls,
        topology: Topology,
        dependency_model: DependencyModel | None = None,
        config: AssessmentConfig | None = None,
    ) -> "ParallelAssessor":
        """The unified-API constructor (see :mod:`repro.core.api`)."""
        return cls(topology, dependency_model, config=config)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    @staticmethod
    def _fork_available() -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def _start_pool(self) -> None:
        # The registry entry must outlive this call: multiprocessing.Pool
        # respawns dead workers on demand, and those late forks run the
        # initializer again — it has to find the state.
        _FORK_REGISTRY[self._registry_key] = dict(
            topology=self.topology,
            model=self.dependency_model,
            sampler=self.sampler,
            chaos=self.chaos,
            kernel=self.config.kernel,
        )
        context = multiprocessing.get_context("fork")
        self._pool = context.Pool(
            processes=self.workers,
            initializer=_init_forked_worker,
            initargs=(self._registry_key,),
        )
        self._pool_suspect = False

    def _restart_pool(self) -> None:
        """Tear down a suspect pool (hung/crashed workers) and refork."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
        self._pool_restarts += 1
        self._start_pool()

    def close(self) -> None:
        """Shut the worker pool down.

        Drains gracefully (``close()`` + ``join()``) when the pool is
        healthy; escalates to ``terminate()`` when a hang or crash was
        observed, so a stuck worker cannot block shutdown. Idempotent.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            if self._pool_suspect:
                pool.terminate()
            else:
                pool.close()
            pool.join()
        _FORK_REGISTRY.pop(self._registry_key, None)

    def __del__(self):  # pragma: no cover - exercised indirectly
        # Abandoned assessors must not leak worker processes. Terminate
        # rather than drain: __del__ may run at interpreter shutdown where
        # a graceful join could block indefinitely.
        try:
            pool = getattr(self, "_pool", None)
            self._pool = None
            if pool is not None:
                pool.terminate()
                pool.join()
            _FORK_REGISTRY.pop(getattr(self, "_registry_key", None), None)
        except Exception:
            pass

    def __enter__(self) -> "ParallelAssessor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _live_worker_pids(self) -> frozenset[int]:
        pool = self._pool
        processes = getattr(pool, "_pool", None) or ()
        return frozenset(p.pid for p in processes if p.is_alive())

    # ------------------------------------------------------------------
    # Portioning
    # ------------------------------------------------------------------

    def _portions(self, rounds: int) -> list[int]:
        """Split ``rounds`` into one near-equal portion per worker."""
        if rounds <= 0:
            raise ConfigurationError(f"rounds must be positive, got {rounds}")
        base = rounds // self.workers
        remainder = rounds % self.workers
        portions = [base + (1 if i < remainder else 0) for i in range(self.workers)]
        return [p for p in portions if p > 0]

    # ------------------------------------------------------------------
    # Assessment
    # ------------------------------------------------------------------

    def assess(
        self,
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        rounds: int | None = None,
        cancel=None,
    ) -> AssessmentResult:
        """Distribute, supervise, gather, reduce (the MapReduce of §3.2.1).

        ``cancel`` is an optional
        :class:`~repro.util.cancel.CancellationToken`. When it fires
        mid-assessment, the master stops waiting, tears down in-flight
        work (nothing keeps burning on rounds nobody will collect) and
        returns an **anytime result**: the estimate built from the
        portions completed so far, flagged ``runtime.cancelled`` and
        ``degraded``, with the confidence interval widened by the missing
        coverage — the same honest-widening path ``partial_ok`` uses.
        Only when *zero* portions completed does it raise
        :class:`~repro.util.errors.OperationCancelled`.
        """
        watch = Stopwatch()
        total_rounds = self.rounds if rounds is None else rounds
        portion_sizes = self._portions(total_rounds)
        base_seeds = [
            int(s) for s in self.rng.integers(0, 2**63, size=len(portion_sizes))
        ]
        portions = [
            _Portion(index=i, rounds=size, base_seed=seed)
            for i, (size, seed) in enumerate(zip(portion_sizes, base_seeds))
        ]

        failures: list[PortionFailure] = []
        retries = 0
        recovered_inline = 0
        restarts_before = self._pool_restarts
        cancelled: list[_Portion] = []

        if self._pool is None:
            completed, cancelled = self._inline_portions(
                portions, plan, structure, failures, cancel
            )
            exhausted: list[_Portion] = []
        else:
            completed, exhausted, cancelled, retries = self._supervise(
                portions, plan, structure, failures, cancel
            )

        dropped: list[_Portion] = list(cancelled)
        if exhausted:
            if self.partial_ok:
                dropped.extend(exhausted)
            else:
                # Graceful degradation, mode 1: the master recovers lost
                # portions itself on the inline backend (chaos-free and
                # pool-independent). A failure here is a real error in
                # the workload, not the substrate — surface it.
                for portion in exhausted:
                    try:
                        completed[portion.index] = self._inline_portion(
                            portion, plan, structure
                        )
                        recovered_inline += 1
                    except Exception as exc:
                        raise WorkerFailure(
                            f"portion {portion.index} failed in every worker "
                            f"attempt and in the inline fallback: {exc}",
                            portion=portion.index,
                            attempt=portion.attempt,
                            failures=failures,
                        ) from exc

        if not completed:
            if cancelled:
                raise OperationCancelled(
                    "assessment cancelled before any portion completed; "
                    "no anytime estimate is possible",
                    reason=cancel.reason if cancel is not None else None,
                )
            raise DegradedResult(
                f"all {len(portions)} portions were lost despite "
                f"{retries} retries; nothing to estimate from",
                failures=failures,
            )

        per_round = np.concatenate(
            [completed[i][0] for i in sorted(completed)]
        )
        sampled_components = max(completed[i][1] for i in completed)
        used_seeds = tuple(completed[i][2] for i in sorted(completed))
        dropped_rounds = sum(p.rounds for p in dropped)

        estimate = estimate_from_results(per_round)
        if dropped_rounds:
            # Honest widening: the statistical CI already reflects the
            # smaller sample, but the dropped portions are missing data,
            # not sampled data — inflate variance by the coverage ratio
            # so the reported interval cannot understate uncertainty.
            coverage = total_rounds / per_round.size
            estimate = replace(
                estimate,
                variance=estimate.variance * coverage,
                confidence_interval_width=(
                    estimate.confidence_interval_width * math.sqrt(coverage)
                ),
            )

        runtime = RuntimeMetadata(
            backend=self.backend if self._pool is not None else "inline",
            workers=self.workers,
            portion_seeds=used_seeds,
            retries=retries,
            pool_restarts=self._pool_restarts - restarts_before,
            recovered_inline=recovered_inline,
            dropped_portions=len(dropped),
            dropped_rounds=dropped_rounds,
            cancelled=bool(cancelled),
            failures=tuple(failures),
            profile=self.metrics.flat() if self.metrics is not None else None,
        )
        return AssessmentResult(
            plan=plan,
            estimate=estimate,
            per_round=per_round,
            sampled_components=sampled_components,
            elapsed_seconds=watch.elapsed(),
            runtime=runtime,
        )

    def score_plans(
        self,
        plans: Sequence[DeploymentPlan],
        structure: ApplicationStructure,
        rounds: int | None = None,
        cancel=None,
    ) -> list[AssessmentResult]:
        """Batch scoring via the protocol's sequential fallback.

        The parallel backend already saturates the workers with one
        plan's portions, so there is no shared-batch fast path to gain;
        the method exists so the search can consume every backend through
        the same :class:`~repro.core.api.Assessor` batch interface.
        """
        if cancel is not None:
            return [
                self.assess(plan, structure, rounds=rounds, cancel=cancel)
                for plan in plans
            ]
        return score_plans_sequentially(self, plans, structure, rounds=rounds)

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------

    def _supervise(
        self,
        portions: list[_Portion],
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        failures: list[PortionFailure],
        cancel=None,
    ) -> tuple[
        dict[int, tuple[np.ndarray, int, int]], list[_Portion], list[_Portion], int
    ]:
        """Dispatch portions until each completes or exhausts its retries.

        Returns ``(completed, exhausted, cancelled, retries)`` where
        ``completed`` maps portion index to ``(per_round,
        sampled_components, seed)``. A fired cancellation token ends
        supervision immediately: portions not yet gathered land in
        ``cancelled`` (never retried), and the pool is restarted so no
        orphaned worker keeps computing rounds nobody will collect.
        """
        policy = self.retry_policy
        completed: dict[int, tuple[np.ndarray, int, int]] = {}
        exhausted: list[_Portion] = []
        cancelled: list[_Portion] = []
        retries = 0
        pending = list(portions)

        while pending:
            if cancel is not None and cancel.cancelled:
                cancelled.extend(pending)
                for portion in pending:
                    self._record_failure(
                        failures, portion, "cancelled", "cancelled before dispatch"
                    )
                break
            failed_pass, cancelled_pass = self._dispatch_pass(
                pending, plan, structure, completed, failures, cancel
            )
            if cancelled_pass:
                cancelled.extend(cancelled_pass)
                # In-flight tasks were abandoned mid-pass; tear the pool
                # down so their workers stop burning CPU on dead rounds.
                self._pool_suspect = True
                self._restart_pool()
                break
            if not failed_pass:
                break
            # A hang or crash leaves the pool suspect (stuck worker still
            # holding a slot, or respawned workers mid-flight): restart it
            # before the retry pass so retries land on a clean substrate.
            # A worker that merely raised leaves the pool healthy.
            if self._pool_suspect:
                self._restart_pool()
            pending = []
            for portion in failed_pass:
                portion.attempt += 1
                if portion.attempt <= policy.max_retries:
                    retries += 1
                    pending.append(portion)
                else:
                    exhausted.append(portion)
            if pending:
                min_attempt = min(p.attempt for p in pending)
                delay = policy.backoff_for(min_attempt, self._jitter_rng)
                if delay > 0.0:
                    time.sleep(delay)
        return completed, exhausted, cancelled, retries

    def _dispatch_pass(
        self,
        pending: list[_Portion],
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        completed: dict[int, tuple[np.ndarray, int, int]],
        failures: list[PortionFailure],
        cancel=None,
    ) -> tuple[list[_Portion], list[_Portion]]:
        """One async dispatch of every pending portion.

        Returns ``(failed, cancelled)``. A worker death aborts the whole
        pass: the pool is about to be restarted, which invalidates every
        result not yet gathered, so ready results are swept up and
        everything else is marked crashed. A fired cancellation token
        likewise ends the pass, but the un-gathered portions are
        *cancelled* (not retried) — whatever already finished is kept for
        the anytime estimate.
        """
        assert self._pool is not None
        pass_pids = self._live_worker_pids()
        dispatched = [
            (
                portion,
                self._pool.apply_async(
                    _worker_portion,
                    (
                        (
                            portion.index,
                            portion.attempt,
                            portion.seed(),
                            portion.rounds,
                            plan,
                            structure,
                        ),
                    ),
                ),
            )
            for portion in pending
        ]

        failed: list[_Portion] = []
        cancelled: list[_Portion] = []
        for position, (portion, async_result) in enumerate(dispatched):
            try:
                value = self._wait_portion(portion, async_result, pass_pids, cancel)
                completed[portion.index] = (value[0], value[1], portion.seed())
            except _PassCancelled:
                # Sweep results that are already in, then mark the rest
                # cancelled; nothing gets retried after a cancel.
                for later, later_result in dispatched[position:]:
                    if later_result.ready():
                        try:
                            value = later_result.get(timeout=0)
                            completed[later.index] = (
                                value[0],
                                value[1],
                                later.seed(),
                            )
                            continue
                        except Exception as exc:
                            self._record_failure(failures, later, "error", str(exc))
                            cancelled.append(later)
                            continue
                    self._record_failure(
                        failures, later, "cancelled", "cancelled while in flight"
                    )
                    cancelled.append(later)
                break
            except _PassAborted:
                self._record_failure(
                    failures, portion, "crash", "worker process died mid-pass"
                )
                failed.append(portion)
                # Sweep later results that finished before the death was
                # observed; the rest cannot be trusted to ever arrive.
                for later, later_result in dispatched[position + 1 :]:
                    if later_result.ready():
                        try:
                            value = later_result.get(timeout=0)
                            completed[later.index] = (
                                value[0],
                                value[1],
                                later.seed(),
                            )
                            continue
                        except Exception as exc:
                            self._record_failure(failures, later, "error", str(exc))
                            failed.append(later)
                            continue
                    self._record_failure(
                        failures, later, "crash", "result lost to a worker death"
                    )
                    failed.append(later)
                break
            except PortionTimeout as exc:
                self._pool_suspect = True
                self._record_failure(failures, portion, "timeout", str(exc))
                failed.append(portion)
            except Exception as exc:  # the worker raised
                self._record_failure(failures, portion, "error", str(exc))
                failed.append(portion)
        return failed, cancelled

    def _wait_portion(self, portion: _Portion, async_result, pass_pids, cancel=None):
        """Wait for one portion, polling for timeouts, deaths and cancel."""
        policy = self.retry_policy
        deadline = (
            None
            if policy.timeout_seconds is None
            else time.monotonic() + policy.timeout_seconds
        )
        while True:
            try:
                return async_result.get(timeout=policy.poll_interval_seconds)
            except multiprocessing.TimeoutError:
                pass
            if cancel is not None and cancel.cancelled:
                raise _PassCancelled()
            if pass_pids - self._live_worker_pids():
                self._pool_suspect = True
                raise _PassAborted()
            if deadline is not None and time.monotonic() >= deadline:
                raise PortionTimeout(
                    f"portion {portion.index} (attempt {portion.attempt}) exceeded "
                    f"its {policy.timeout_seconds:.3g}s timeout",
                    portion=portion.index,
                    attempt=portion.attempt,
                    timeout_seconds=policy.timeout_seconds,
                )

    @staticmethod
    def _record_failure(
        failures: list[PortionFailure], portion: _Portion, kind: str, message: str
    ) -> None:
        failures.append(
            PortionFailure(
                portion=portion.index,
                attempt=portion.attempt,
                kind=kind,
                message=message,
            )
        )

    # ------------------------------------------------------------------
    # Inline execution (the 0-worker baseline and the fallback path)
    # ------------------------------------------------------------------

    def _inline_portions(
        self,
        portions: list[_Portion],
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        failures: list[PortionFailure],
        cancel=None,
    ) -> tuple[dict[int, tuple[np.ndarray, int, int]], list[_Portion]]:
        """Run portions one-by-one on the master, honouring cancellation.

        The token is checked between portions and forwarded into each
        portion's pipeline (sampler chunk granularity), so a deadline cuts
        the work off promptly even without a worker pool. A portion
        interrupted mid-pipeline yields no partial data — it and every
        later portion are returned as cancelled.
        """
        completed: dict[int, tuple[np.ndarray, int, int]] = {}
        cancelled: list[_Portion] = []
        for position, portion in enumerate(portions):
            if cancel is not None and cancel.cancelled:
                remaining = portions[position:]
                for later in remaining:
                    self._record_failure(
                        failures, later, "cancelled", "cancelled before dispatch"
                    )
                cancelled.extend(remaining)
                break
            try:
                completed[portion.index] = self._inline_portion(
                    portion, plan, structure, cancel
                )
            except OperationCancelled:
                remaining = portions[position:]
                for later in remaining:
                    self._record_failure(
                        failures, later, "cancelled", "cancelled mid-portion"
                    )
                cancelled.extend(remaining)
                break
        return completed, cancelled

    def _inline_portion(
        self,
        portion: _Portion,
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        cancel=None,
    ) -> tuple[np.ndarray, int, int]:
        seed = portion.seed()
        assessor = ReliabilityAssessor.from_config(
            self.topology,
            self.dependency_model,
            AssessmentConfig(
                rounds=portion.rounds,
                sampler=self.sampler,
                rng=seed,
                kernel=self.config.kernel,
            ),
        )
        result = assessor.assess(plan, structure, cancel=cancel)
        return result.per_round, result.sampled_components, seed
