"""Service-facing re-export of the cancellation primitives.

The token class itself lives at the bottom of the layering
(:mod:`repro.util.cancel`) because samplers and assessors poll it without
depending on the service package; this module is the service-flavoured
import path for code that thinks in requests and deadlines.
"""

from repro.util.cancel import NEVER, CancellationToken
from repro.util.errors import OperationCancelled

__all__ = ["CancellationToken", "NEVER", "OperationCancelled"]
