"""Fleet capacity planning: how many workers to meet an SLO.

The paper's thesis applied to ourselves: the worker fleet is a
deployment whose reliability we can *assess* instead of guess. A fleet
of ``n`` workers serves its target load while at least ``k`` of them are
alive, where ``k`` is fixed by throughput; each worker is independently
unavailable for the failover window around every crash. That is exactly
a K-of-N fault tree over worker basic events, so the planner reuses the
repository's own assessment machinery: the analytic evaluator
(:func:`~repro.kernel.exact.exact_tree_probability`), whose
Poisson-binomial propagation handles a K-of-N gate over *any* fleet size
in ``O(n * k)`` — the historical ``2**n`` enumeration cutoff with a
Monte Carlo fallback above 20 workers is gone (the ``2**n`` enumerator
survives only as the test oracle). The vectorised
:meth:`~repro.faults.faulttree.FaultTree.evaluate` sampler with
:func:`~repro.sampling.statistics.estimate_from_results` remains as a
defensive fallback should the analytic evaluator ever decline. The
planner recommends the smallest ``n`` whose availability
(conservatively, the CI lower bound when sampled) meets the SLO.

PCRAFT (PAPERS.md) frames the same question for stateless VM fleets;
``benchmarks/bench_fleet.py`` closes the loop by confirming the
recommended count under real kill -9 chaos.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.faults.faulttree import FaultTree, basic, k_of_n_gate
from repro.kernel.exact import ExactDeclined, exact_tree_probability
from repro.sampling.statistics import estimate_from_results
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng


def worker_unavailability(
    crash_rate_per_hour: float, failover_seconds: float
) -> float:
    """Steady-state probability that one worker is down.

    Every crash costs one failover window (detection + journal takeover
    + respawn backoff) during which the worker serves nothing; crashes
    at ``crash_rate_per_hour`` therefore leave the worker unavailable
    for ``rate * window`` seconds of every hour.
    """
    if crash_rate_per_hour < 0:
        raise ConfigurationError("crash rate must be >= 0")
    if failover_seconds < 0:
        raise ConfigurationError("failover window must be >= 0")
    return min(1.0, crash_rate_per_hour * failover_seconds / 3600.0)


def fleet_fault_tree(workers: int, k_required: int) -> FaultTree:
    """The fleet's own fault tree: down when fewer than ``k`` survive.

    ``n - k + 1`` worker failures take the fleet below its required
    capacity — the same K-of-N gate shape the paper uses for application
    deployments, with shard workers as the basic events.
    """
    if workers < 1:
        raise ConfigurationError("fleet needs at least one worker")
    if not 1 <= k_required <= workers:
        raise ConfigurationError(
            f"k_required={k_required} must be within [1, {workers}]"
        )
    events = [basic(f"worker-{i}") for i in range(workers)]
    return FaultTree(
        subject_id=f"fleet-{workers}",
        root=k_of_n_gate(workers - k_required + 1, *events),
    )


@dataclass(frozen=True)
class CandidateFleet:
    """One evaluated fleet size."""

    workers: int
    availability: float
    availability_lower: float  # CI lower bound (== availability when exact)
    method: str  # "analytic" | "monte-carlo"
    meets_slo: bool

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "availability": self.availability,
            "availability_lower": self.availability_lower,
            "method": self.method,
            "meets_slo": self.meets_slo,
        }


@dataclass(frozen=True)
class FleetCapacityPlan:
    """The planner's answer, JSON-ready for the CLI."""

    target_rps: float
    per_worker_rps: float
    k_required: int
    slo: float
    crash_rate_per_hour: float
    failover_seconds: float
    worker_unavailability: float
    recommended_workers: int | None
    candidates: tuple[CandidateFleet, ...] = field(default_factory=tuple)

    @property
    def satisfiable(self) -> bool:
        return self.recommended_workers is not None

    def to_dict(self) -> dict:
        return {
            "target_rps": self.target_rps,
            "per_worker_rps": self.per_worker_rps,
            "k_required": self.k_required,
            "slo": self.slo,
            "crash_rate_per_hour": self.crash_rate_per_hour,
            "failover_seconds": self.failover_seconds,
            "worker_unavailability": self.worker_unavailability,
            "recommended_workers": self.recommended_workers,
            "candidates": [c.to_dict() for c in self.candidates],
        }


def assess_fleet(
    workers: int,
    k_required: int,
    unavailability: float,
    rounds: int = 200_000,
    seed: int = 7,
) -> CandidateFleet:
    """Availability of one fleet size, analytically exact for any size.

    Independent workers under one K-of-N gate need no conditioning, so
    the analytic evaluator's Poisson-binomial propagation is exact in
    ``O(n * k)`` regardless of fleet size. The Monte Carlo path only
    runs if the evaluator declines — impossible for the trees built
    here, kept as a defensive fallback; sampled fleets then use the CI
    *lower* bound for the SLO decision (a capacity plan should err
    toward one worker too many, never one too few on sampling noise).
    """
    tree = fleet_fault_tree(workers, k_required)
    probabilities = {f"worker-{i}": unavailability for i in range(workers)}
    try:
        down = exact_tree_probability(tree, probabilities)
    except ExactDeclined:
        pass
    else:
        availability = 1.0 - down
        return CandidateFleet(
            workers=workers,
            availability=availability,
            availability_lower=availability,
            method="analytic",
            meets_slo=False,  # decided by the caller against the SLO
        )
    rng = make_rng(seed + workers)
    failed = {
        event: rng.random(rounds) < probabilities[event]
        for event in sorted(tree.basic_events())
    }
    fleet_down = tree.evaluate(failed)
    estimate = estimate_from_results(~fleet_down)
    return CandidateFleet(
        workers=workers,
        availability=estimate.score,
        availability_lower=estimate.ci_lower,
        method="monte-carlo",
        meets_slo=False,
    )


def plan_capacity(
    target_rps: float,
    per_worker_rps: float,
    slo: float,
    crash_rate_per_hour: float,
    failover_seconds: float,
    max_workers: int = 64,
    rounds: int = 200_000,
    seed: int = 7,
) -> FleetCapacityPlan:
    """Smallest worker count meeting both throughput and availability.

    ``k = ceil(target_rps / per_worker_rps)`` workers are needed just to
    carry the load; spares are added until the K-of-N availability —
    evaluated with the repo's own fault-tree assessor — reaches ``slo``
    or ``max_workers`` is exhausted (``recommended_workers=None``).
    """
    if target_rps <= 0 or per_worker_rps <= 0:
        raise ConfigurationError("target and per-worker throughput must be > 0")
    if not 0.0 < slo < 1.0:
        raise ConfigurationError(f"slo must be in (0, 1), got {slo}")
    k_required = max(1, math.ceil(target_rps / per_worker_rps))
    unavailability = worker_unavailability(crash_rate_per_hour, failover_seconds)
    candidates: list[CandidateFleet] = []
    recommended: int | None = None
    for workers in range(k_required, max_workers + 1):
        candidate = assess_fleet(
            workers, k_required, unavailability, rounds=rounds, seed=seed
        )
        meets = candidate.availability_lower >= slo
        candidate = CandidateFleet(
            workers=candidate.workers,
            availability=candidate.availability,
            availability_lower=candidate.availability_lower,
            method=candidate.method,
            meets_slo=meets,
        )
        candidates.append(candidate)
        if meets:
            recommended = workers
            break
    return FleetCapacityPlan(
        target_rps=target_rps,
        per_worker_rps=per_worker_rps,
        k_required=k_required,
        slo=slo,
        crash_rate_per_hour=crash_rate_per_hour,
        failover_seconds=failover_seconds,
        worker_unavailability=unavailability,
        recommended_workers=recommended,
        candidates=tuple(candidates),
    )
