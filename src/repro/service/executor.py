"""Request execution core shared by every service deployment shape.

The in-process :class:`~repro.service.scheduler.AssessmentService` runs
requests on scheduler *threads*; the supervised fleet
(:mod:`repro.service.fleet`) runs them in shard worker *processes*. Both
must answer a given request with the **same bits** — that is the whole
failover guarantee: a request re-executed after a crash, on a different
worker, in a different process, yields the result the original execution
would have produced. The way to keep that property is to have exactly one
implementation of the execution path, parameterised only by values that
are a pure function of the request:

* :func:`request_seed` — the deterministic random stream, derived from
  ``(service seed, kind, idempotency key or journaled id)``, never from
  worker identity, shard placement or submission order.
* :func:`chunked_assess` — the anytime sequential assessment loop
  (cancellation checked between chunks, honest CI widening on partial
  completion).
* :class:`RequestExecutor` — one worker's view: a per-worker assessor
  plus ``run()`` mapping requests (and mid-run cancellation/errors) to
  :class:`~repro.service.requests.ServiceResponse` exactly like the
  scheduler's execute path does.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

import numpy as np

from repro import serialization
from repro.app.structure import ApplicationStructure
from repro.core.api import AssessmentConfig
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.core.result import AssessmentResult, RuntimeMetadata
from repro.core.search import DeploymentSearch, SearchSpec
from repro.sampling.statistics import estimate_from_results
from repro.service.requests import (
    AssessRequest,
    SearchRequest,
    ServiceResponse,
)
from repro.util.cancel import CancellationToken
from repro.util.errors import OperationCancelled, ReproError
from repro.util.rng import make_rng
from repro.util.timing import Stopwatch


def request_seed(service_seed: int, kind: str, handle: str) -> int:
    """Deterministic per-request stream seed.

    Derived from the service seed and the idempotency key (or the
    journaled request id), never from worker identity or submission
    order — the property that makes a crash-replayed request
    bit-identical to what the crashed process would have answered, even
    when a *different* worker process replays it.
    """
    digest = hashlib.sha256(
        f"{service_seed}:{kind}:{handle}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def chunked_assess(
    assessor,
    plan: DeploymentPlan,
    structure: ApplicationStructure,
    rounds: int,
    chunks: int,
    token: CancellationToken,
) -> AssessmentResult:
    """Sequential anytime execution: assess in chunks, stop on cancel.

    Rounds are split into about ``chunks`` independent chunks; the token
    is checked between chunks and forwarded into each chunk's sampler
    loop. On cancel the completed chunks become the anytime estimate with
    coverage-widened bounds; only a cancel before *any* chunk finished
    raises :class:`OperationCancelled`.
    """
    watch = Stopwatch()
    chunk_size = max(1, rounds // max(1, chunks))
    per_round_chunks: list[np.ndarray] = []
    completed_rounds = 0
    sampled_components = 0
    cancelled = False
    while completed_rounds < rounds:
        if token.cancelled:
            cancelled = True
            break
        batch = min(chunk_size, rounds - completed_rounds)
        try:
            chunk = assessor.assess(plan, structure, rounds=batch, cancel=token)
        except OperationCancelled:
            # Mid-chunk cancel: the interrupted chunk yields nothing,
            # but earlier chunks may still carry the anytime result.
            cancelled = True
            break
        per_round_chunks.append(chunk.per_round)
        sampled_components = max(sampled_components, chunk.sampled_components)
        completed_rounds += batch
    if not per_round_chunks:
        raise OperationCancelled(
            "assessment cancelled before any chunk completed",
            reason=token.reason,
        )
    per_round = (
        per_round_chunks[0]
        if len(per_round_chunks) == 1
        else np.concatenate(per_round_chunks)
    )
    estimate = estimate_from_results(per_round)
    dropped_rounds = rounds - completed_rounds
    if dropped_rounds > 0:
        # Same honest widening the parallel partial_ok path applies:
        # missing rounds are missing data, not sampled data.
        coverage = rounds / per_round.size
        estimate = replace(
            estimate,
            variance=estimate.variance * coverage,
            confidence_interval_width=(
                estimate.confidence_interval_width * coverage**0.5
            ),
        )
    total_chunks = -(-rounds // chunk_size)
    runtime = RuntimeMetadata(
        backend="chunked",
        workers=1,
        portion_seeds=(),
        dropped_portions=total_chunks - len(per_round_chunks),
        dropped_rounds=dropped_rounds,
        cancelled=cancelled,
    )
    return AssessmentResult(
        plan=plan,
        estimate=estimate,
        per_round=per_round,
        sampled_components=sampled_components,
        elapsed_seconds=watch.elapsed(),
        runtime=runtime,
    )


class RequestExecutor:
    """One worker's execution engine for validated service requests.

    Owns a sequential assessor over the service's data center and turns
    an ``(kind, request)`` pair into the :class:`ServiceResponse` the
    scheduler's thread workers would produce on their chunked-sequential
    path — including the cancelled/error response shapes, so a shard
    worker process needs no extra mapping layer around it.
    """

    def __init__(
        self,
        topology,
        dependency_model,
        *,
        service_seed: int,
        default_rounds: int,
        chunks: int,
        worker_index: int = 0,
    ):
        self.topology = topology
        self.dependency_model = dependency_model
        self.service_seed = service_seed
        self.default_rounds = default_rounds
        self.chunks = chunks
        self.assessor = ReliabilityAssessor.from_config(
            topology,
            dependency_model,
            AssessmentConfig(
                rounds=default_rounds,
                rng=service_seed + 100 + worker_index,
            ),
        )

    # ------------------------------------------------------------------

    def seed_for(self, kind: str, handle: str) -> int:
        return request_seed(self.service_seed, kind, handle)

    def run(
        self,
        kind: str,
        request,
        *,
        request_id: str,
        token: CancellationToken,
        queue_seconds: float = 0.0,
        recovered: bool = False,
    ) -> ServiceResponse:
        """Execute one request, mapping cancellation/errors to responses."""
        watch = Stopwatch()
        try:
            if token.cancelled:
                return ServiceResponse(
                    request_id=request_id,
                    status="cancelled",
                    error={
                        "error": "cancelled",
                        "reason": token.reason,
                        "message": "cancelled before execution started",
                    },
                    queue_seconds=queue_seconds,
                )
            if kind == "assess":
                return self.run_assess(
                    request,
                    request_id=request_id,
                    token=token,
                    queue_seconds=queue_seconds,
                    recovered=recovered,
                    watch=watch,
                )
            return self.run_search(
                request,
                request_id=request_id,
                token=token,
                queue_seconds=queue_seconds,
                recovered=recovered,
                watch=watch,
            )
        except OperationCancelled as exc:
            return ServiceResponse(
                request_id=request_id,
                status="cancelled",
                error={
                    "error": "cancelled",
                    "reason": exc.reason,
                    "message": str(exc),
                },
                elapsed_seconds=watch.elapsed(),
                queue_seconds=queue_seconds,
            )
        except ReproError as exc:
            return ServiceResponse(
                request_id=request_id,
                status="error",
                error={"error": type(exc).__name__, "message": str(exc)},
                elapsed_seconds=watch.elapsed(),
                queue_seconds=queue_seconds,
            )

    # ------------------------------------------------------------------

    def run_assess(
        self,
        request: AssessRequest,
        *,
        request_id: str,
        token: CancellationToken,
        queue_seconds: float,
        recovered: bool,
        watch: Stopwatch,
    ) -> ServiceResponse:
        structure = ApplicationStructure.k_of_n(request.k, len(request.hosts))
        plan = DeploymentPlan.single_component(
            list(request.hosts), structure.components[0].name
        )
        rounds = request.rounds or self.default_rounds
        seed = self.seed_for("assess", request.idempotency_key or request_id)
        # Reseed per request: the stream is a pure function of the
        # request, not of which worker runs it or what ran before.
        self.assessor.rng = make_rng(seed)
        result = chunked_assess(
            self.assessor, plan, structure, rounds, self.chunks, token
        )
        if recovered and result.runtime is not None:
            result = replace(
                result, runtime=replace(result.runtime, recovered=True)
            )
        status = (
            "degraded"
            if result.degraded or (result.runtime and result.runtime.cancelled)
            else "ok"
        )
        return ServiceResponse(
            request_id=request_id,
            status=status,
            result=serialization.assessment_to_dict(result),
            elapsed_seconds=watch.elapsed(),
            queue_seconds=queue_seconds,
            backend="chunked-sequential",
        )

    def run_search(
        self,
        request: SearchRequest,
        *,
        request_id: str,
        token: CancellationToken,
        queue_seconds: float,
        recovered: bool,
        watch: Stopwatch,
    ) -> ServiceResponse:
        return execute_search(
            self.topology,
            self.dependency_model,
            request,
            request_id=request_id,
            seed=self.seed_for("search", request.idempotency_key or request_id),
            default_rounds=self.default_rounds,
            token=token,
            queue_seconds=queue_seconds,
            recovered=recovered,
            watch=watch,
        )


def execute_search(
    topology,
    dependency_model,
    request: SearchRequest,
    *,
    request_id: str,
    seed: int,
    default_rounds: int,
    token: CancellationToken,
    queue_seconds: float,
    recovered: bool,
    watch: Stopwatch,
) -> ServiceResponse:
    """One search request, end to end, on the incremental engine.

    The seed must come from :func:`request_seed` — a recovered search
    then explores the same trajectory regardless of which worker (thread
    or process) runs it.
    """
    structure = ApplicationStructure.k_of_n(request.k, request.n)
    search = DeploymentSearch.from_config(
        topology,
        dependency_model,
        AssessmentConfig(
            rounds=request.rounds or default_rounds,
            rng=seed,
            mode="incremental",
        ),
        rng=(seed + 1) % 2**63,
        cancel=token,
    )
    spec = SearchSpec(
        structure=structure,
        desired_reliability=request.desired_reliability,
        max_seconds=request.max_seconds,
        forbid_shared_rack=True,
    )
    result = search.search(spec)
    cut_short = token.cancelled
    status = "degraded" if cut_short else "ok"
    document = serialization.search_result_to_dict(result)
    if recovered:
        document["recovered"] = True
    if cut_short:
        document["cancelled"] = True
        document["cancel_reason"] = token.reason
    return ServiceResponse(
        request_id=request_id,
        status=status,
        result=document,
        elapsed_seconds=watch.elapsed(),
        queue_seconds=queue_seconds,
        backend="search",
    )
