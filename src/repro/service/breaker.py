"""Circuit breaker guarding the parallel assessment backend.

The worker pool is the service's least reliable substrate: worker
processes can crash or hang (that is the whole point of PR 1's
supervision), and when they do so *repeatedly* every request routed there
pays the retry/restart tax before degrading. The breaker converts that
repeated pain into a fast routing decision:

* **closed** — calls flow; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the breaker
  refuses calls (:class:`~repro.util.errors.CircuitOpen`) for
  ``recovery_seconds``; the scheduler routes to the sequential fallback
  without touching the sick pool.
* **half-open** — once the recovery window passes, up to
  ``half_open_probes`` trial calls are let through. A probe success
  closes the circuit; a probe failure re-opens it for another full
  window.

The clock is injectable so tests drive the state machine without
sleeping. All transitions are lock-protected — scheduler workers share
one breaker.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.util.errors import CircuitOpen
from repro.util.metrics import MetricsRegistry

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open recovery probing."""

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_seconds: float = 5.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
        name: str = "parallel",
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_seconds <= 0:
            raise ValueError(
                f"recovery_seconds must be positive, got {recovery_seconds}"
            )
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self.half_open_probes = half_open_probes
        self.name = name
        self._clock = clock
        self._metrics = metrics
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probes_in_flight = 0
        self._probe_successes = 0

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, folding in recovery-window expiry."""
        with self._lock:
            self._refresh_locked()
            return self._state

    def _refresh_locked(self) -> None:
        if self._state == OPEN and self._opened_at is not None:
            if self._clock() - self._opened_at >= self.recovery_seconds:
                self._state = HALF_OPEN
                self._probes_in_flight = 0
                self._probe_successes = 0

    def _set_gauge_locked(self) -> None:
        if self._metrics is not None:
            value = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}[self._state]
            self._metrics.set_gauge(f"breaker/{self.name}/state", value)

    # ------------------------------------------------------------------

    def before_call(self) -> None:
        """Gate a call: pass in closed, probe in half-open, refuse in open."""
        with self._lock:
            self._refresh_locked()
            if self._state == CLOSED:
                return
            if self._state == HALF_OPEN:
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    return
                raise CircuitOpen(
                    f"{self.name} circuit is half-open and its probe slots "
                    "are taken",
                    retry_after_seconds=self.recovery_seconds,
                )
            remaining = self.recovery_seconds
            if self._opened_at is not None:
                remaining = max(
                    0.0, self.recovery_seconds - (self._clock() - self._opened_at)
                )
            raise CircuitOpen(
                f"{self.name} circuit is open "
                f"({self._consecutive_failures} consecutive failures); "
                f"retry in {remaining:.1f}s",
                retry_after_seconds=remaining,
            )

    def record_success(self) -> None:
        with self._lock:
            self._refresh_locked()
            if self._state == HALF_OPEN:
                self._probe_successes += 1
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                if self._probe_successes >= self.half_open_probes:
                    self._state = CLOSED
                    self._consecutive_failures = 0
                    self._opened_at = None
                    if self._metrics is not None:
                        self._metrics.incr(f"breaker/{self.name}/closed")
            else:
                self._consecutive_failures = 0
            self._set_gauge_locked()

    def record_failure(self) -> None:
        with self._lock:
            self._refresh_locked()
            if self._state == HALF_OPEN:
                # A failed probe re-opens for a fresh recovery window.
                self._trip_locked()
            else:
                self._consecutive_failures += 1
                if (
                    self._state == CLOSED
                    and self._consecutive_failures >= self.failure_threshold
                ):
                    self._trip_locked()
            self._set_gauge_locked()

    def _trip_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._consecutive_failures = max(
            self._consecutive_failures, self.failure_threshold
        )
        if self._metrics is not None:
            self._metrics.incr(f"breaker/{self.name}/tripped")

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready state for health endpoints."""
        with self._lock:
            self._refresh_locked()
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "recovery_seconds": self.recovery_seconds,
            }
