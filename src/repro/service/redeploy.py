"""Degradation-triggered redeployment controller.

The paper's conclusion argues that 30-second searches make *periodic
recalculation* of a live deployment feasible. This module closes that
loop: a :class:`RedeploymentController` watches a deployed plan for
degradation — a zone outage injected by the chaos harness, a
failure-probability jump from operator telemetry, component wear-out on
the bathtub curve — and, when reliability drops, re-searches **from the
incumbent plan** (the incremental assessor and the batch-first loop make
that re-search near-free) and applies the winner only on a meaningful
reliability gain.

Controller crashes must not corrupt the deployment, so every decision is
journaled to an append-only, fsync'd JSONL log with an explicit commit
point:

``detected`` → ``search-attempt``/``search-failed``* → ``candidate``
(with ``apply: true|false`` — the commit record, carrying the full plan)
→ ``applied`` | ``rejected`` | ``abandoned``

The applied plan itself is persisted atomically to ``incumbent.json``
*after* the commit record and *before* the ``applied`` record. Recovery
(:meth:`RedeploymentController.recover`, run automatically on
construction) replays the journal: a decision committed but not yet
applied is completed exactly once — if ``incumbent.json`` already holds
the candidate the crash landed between persist and journal, so only the
missing ``applied`` record is written; otherwise the persist is redone.
Either way the plan cannot be applied twice and a half-made decision is
never lost. The optional ``apply_plan`` callback is an at-most-once
notification to external actuation; the authoritative committed plan is
always ``incumbent.json``.

Failed searches (errors, or results that violate the zone constraints)
are retried with exponential backoff up to ``max_retries`` before the
decision is journaled ``abandoned`` — degradation handling must degrade
gracefully itself.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.plan import DeploymentPlan, ZoneConstraints
from repro.core.search import DeploymentSearch, SearchSpec
from repro.drill.faultpoints import (
    SimulatedCrash,
    fault_hit,
    raise_if_crash,
    raise_if_crash_after,
)
from repro.util.errors import ConfigurationError

#: Journal file name inside the controller's state directory.
JOURNAL_NAME = "redeploy-journal.jsonl"

#: Atomically-replaced artifact holding the currently applied plan.
INCUMBENT_NAME = "incumbent.json"


@dataclass(frozen=True)
class DegradationEvent:
    """One observed degradation signal.

    ``kind`` is free-form ("zone-outage", "probability-jump", "wear-out",
    "score-drop", "constraint-violation", ...); ``zone`` names the
    affected zone when there is one; ``detail`` is a human-readable note.
    """

    kind: str
    detail: str = ""
    zone: str | None = None

    def to_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail, "zone": self.zone}

    @classmethod
    def from_dict(cls, payload: dict) -> "DegradationEvent":
        return cls(
            kind=str(payload["kind"]),
            detail=str(payload.get("detail", "")),
            zone=payload.get("zone"),
        )


@dataclass(frozen=True)
class RedeployDecision:
    """The outcome of one controller decision cycle."""

    decision_id: int
    event: DegradationEvent
    action: str  # "applied" | "rejected" | "abandoned"
    incumbent_score: float
    candidate_score: float | None = None
    gain: float | None = None
    search_attempts: int = 0
    plan: DeploymentPlan | None = None


@dataclass
class RecoveryReport:
    """What :meth:`RedeploymentController.recover` found and did."""

    decisions_seen: int = 0
    completed_applies: int = 0
    incumbent_restored: bool = False
    torn_records_dropped: int = 0
    details: list[str] = field(default_factory=list)


class DecisionJournal:
    """Append-only fsync'd JSONL record log with torn-tail tolerance.

    Each line is one JSON object with a ``record`` field. A crash can
    tear at most the final line; :meth:`scan` drops an undecodable tail
    (counting it) but raises on mid-file corruption, mirroring the
    service journal's loud-vs-tolerant split.
    """

    def __init__(self, path: str):
        self.path = os.fspath(path)

    def append(self, record: dict) -> None:
        data = (
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        # Drill seams: crash before the append, tear the line at a byte
        # offset, or crash after it is durable (no-op in production).
        command = fault_hit(
            "redeploy.journal", record=record.get("record"), path=self.path
        )
        raise_if_crash(command, "redeploy.journal")
        if command is not None and command.kind == "torn":
            cut = len(data) // 2 if command.arg is None else command.arg
            cut = max(1, min(int(cut), len(data) - 1))
            with open(self.path, "ab") as handle:
                handle.write(data[:cut])
                handle.flush()
                os.fsync(handle.fileno())
            raise SimulatedCrash("redeploy.journal")
        with open(self.path, "ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        raise_if_crash_after(command, "redeploy.journal")

    def scan(self, repair: bool = False) -> tuple[list[dict], int]:
        """All decodable records plus the number of torn tail lines.

        With ``repair=True`` a torn tail is also *truncated away*, so the
        next :meth:`append` starts on a clean line — without that, an
        append after a torn crash would concatenate onto the partial
        line and turn a tolerated tail into loud mid-file corruption.
        Recovery runs with repair; read-only inspection does not.
        """
        if not os.path.exists(self.path):
            return [], 0
        with open(self.path, "rb") as handle:
            data = handle.read()
        records: list[dict] = []
        torn = 0
        good_bytes = 0
        parts = data.split(b"\n")
        complete, remainder = parts[:-1], parts[-1]
        for index, raw in enumerate(complete):
            stripped = raw.strip()
            if stripped:
                try:
                    records.append(json.loads(stripped.decode("utf-8")))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    if index == len(complete) - 1 and not remainder:
                        torn += 1  # the crash interrupted this append
                        break
                    raise ConfigurationError(
                        f"redeploy journal {self.path!r} is corrupt at "
                        f"line {index + 1}"
                    )
            good_bytes += len(raw) + 1  # +1 for the real newline
        if remainder.strip():
            # An unterminated final line is torn *even when it parses*:
            # the newline is part of the record's durability, and only
            # truncation keeps the next append off the partial line.
            torn += 1
        if repair and torn and good_bytes < len(data):
            with open(self.path, "r+b") as handle:
                handle.truncate(good_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        return records, torn


class RedeploymentController:
    """Watches a deployed plan and re-searches on degradation.

    Args:
        search: A :class:`~repro.core.search.DeploymentSearch` built
            against the deployment's topology and dependency model. Its
            outer assessor provides the independent incumbent scoring;
            every re-search starts from the incumbent plan.
        structure: The deployed application structure.
        state_dir: Directory for the decision journal and the committed
            incumbent plan. Created if missing; recovery replays it.
        incumbent: The currently deployed plan. A committed plan found in
            ``state_dir`` takes precedence (crash recovery).
        zone_constraints: Constraints every redeployment must satisfy
            (and whose violation by the incumbent is itself a
            degradation signal).
        min_gain: Minimum reliability gain (candidate − incumbent) for a
            redeployment to be applied; smaller wins are journaled
            ``rejected`` — migration is not free, so tiny improvements
            do not justify moving instances.
        degradation_threshold: Score drop (vs the post-apply baseline)
            that :meth:`check` treats as degradation.
        search_seconds / search_iterations: Budget of each re-search.
        max_retries: Search attempts per decision before abandoning.
        backoff_seconds / backoff_factor: Exponential backoff between
            failed search attempts.
        apply_plan: Optional callback invoked with the newly applied
            plan (at-most-once; see the module docstring).
        sleep: Injectable sleep for deterministic tests.
    """

    def __init__(
        self,
        search: DeploymentSearch,
        structure,
        state_dir: str,
        incumbent: DeploymentPlan | None = None,
        zone_constraints: ZoneConstraints | None = None,
        min_gain: float = 0.002,
        degradation_threshold: float = 0.005,
        search_seconds: float = 5.0,
        search_iterations: int | None = None,
        max_retries: int = 3,
        backoff_seconds: float = 0.05,
        backoff_factor: float = 2.0,
        apply_plan: Callable[[DeploymentPlan], None] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if min_gain < 0:
            raise ConfigurationError(f"min_gain must be >= 0, got {min_gain}")
        if degradation_threshold <= 0:
            raise ConfigurationError(
                f"degradation_threshold must be positive, got {degradation_threshold}"
            )
        if max_retries < 1:
            raise ConfigurationError(f"max_retries must be >= 1, got {max_retries}")
        if backoff_seconds < 0 or backoff_factor < 1:
            raise ConfigurationError(
                "need backoff_seconds >= 0 and backoff_factor >= 1"
            )
        self.search = search
        self.structure = structure
        self.state_dir = os.fspath(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self.journal = DecisionJournal(os.path.join(self.state_dir, JOURNAL_NAME))
        self.incumbent_path = os.path.join(self.state_dir, INCUMBENT_NAME)
        self.zone_constraints = zone_constraints
        self.min_gain = min_gain
        self.degradation_threshold = degradation_threshold
        self.search_seconds = search_seconds
        self.search_iterations = search_iterations
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.backoff_factor = backoff_factor
        self.apply_plan = apply_plan
        self.sleep = sleep

        self.incumbent = incumbent
        self.baseline_score: float | None = None
        self._pending_events: list[DegradationEvent] = []
        self._next_decision = 1
        self.last_recovery = self.recover()
        if self.incumbent is None:
            raise ConfigurationError(
                "no incumbent plan: pass one or point state_dir at a recovered "
                "deployment"
            )

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Replay the journal; complete committed-but-unapplied decisions.

        Idempotent: a second call (or a second controller on the same
        state dir) finds nothing left to complete.
        """
        report = RecoveryReport()
        records, report.torn_records_dropped = self.journal.scan(repair=True)

        committed_plan = self._load_committed_incumbent()
        if committed_plan is not None:
            self.incumbent = committed_plan
            report.incumbent_restored = True

        commits: dict[int, dict] = {}
        terminal: set[int] = set()
        for record in records:
            decision = int(record.get("decision", 0))
            self._next_decision = max(self._next_decision, decision + 1)
            kind = record.get("record")
            if kind == "detected":
                report.decisions_seen += 1
            elif kind == "candidate" and record.get("apply"):
                commits[decision] = record
            elif kind in ("applied", "rejected", "abandoned"):
                terminal.add(decision)

        for decision in sorted(set(commits) - terminal):
            from repro import serialization

            candidate = serialization.plan_from_dict(commits[decision]["plan"])
            if self.incumbent is not None and (
                candidate.canonical_key() == self.incumbent.canonical_key()
            ):
                # Crash landed between the incumbent persist and the
                # ``applied`` record: the plan is already committed, so
                # only the journal completion is missing. Re-invoking
                # apply_plan here would be the double-apply this
                # recovery exists to prevent.
                report.details.append(
                    f"decision {decision}: commit already persisted, "
                    "journal completed"
                )
            else:
                self._persist_incumbent(candidate)
                self.incumbent = candidate
                if self.apply_plan is not None:
                    self.apply_plan(candidate)
                report.details.append(f"decision {decision}: apply completed")
            self.journal.append({"record": "applied", "decision": decision, "recovered": True})
            report.completed_applies += 1
            score = commits[decision].get("candidate_score")
            if score is not None:
                self.baseline_score = float(score)
        return report

    def _load_committed_incumbent(self) -> DeploymentPlan | None:
        from repro import serialization

        if not os.path.exists(self.incumbent_path):
            return None
        try:
            return serialization.plan_from_dict(
                serialization.load(self.incumbent_path)
            )
        except ConfigurationError:
            # A corrupt incumbent artifact cannot silently win over the
            # constructor-supplied plan; dump() is atomic so this only
            # happens on disk-level corruption.
            return None

    def _persist_incumbent(self, plan: DeploymentPlan) -> None:
        from repro import serialization

        # Drill seam: crash on either side of the commit-point persist.
        command = fault_hit("redeploy.persist", path=self.incumbent_path)
        raise_if_crash(command, "redeploy.persist")
        serialization.dump(
            serialization.plan_to_dict(plan), self.incumbent_path, checksum=True
        )
        raise_if_crash_after(command, "redeploy.persist")

    # ------------------------------------------------------------------
    # Degradation signals
    # ------------------------------------------------------------------

    def observe(self, event: DegradationEvent) -> None:
        """Push an externally detected degradation (chaos, telemetry)."""
        self._pending_events.append(event)

    def refresh(self) -> None:
        """Re-read failure probabilities after the substrate changed."""
        self.search.assessor.refresh_probabilities()

    def assess_incumbent(self) -> float:
        """Independent reliability score of the incumbent right now."""
        result = self.search.assessor.assess(self.incumbent, self.structure)
        return float(result.estimate.score)

    def check(self) -> DegradationEvent | None:
        """Poll for degradation: score drop or constraint violation.

        The first call establishes the baseline and reports nothing (a
        controller must observe a healthy deployment before it can call
        anything degraded).
        """
        self.refresh()
        score = self.assess_incumbent()
        if (
            self.zone_constraints is not None
            and not self.zone_constraints.satisfied_by(
                self.incumbent, self.search.assessor.topology
            )
        ):
            return DegradationEvent(
                kind="constraint-violation",
                detail="incumbent violates the zone constraints",
            )
        if self.baseline_score is None:
            self.baseline_score = score
            return None
        drop = self.baseline_score - score
        if drop >= self.degradation_threshold:
            return DegradationEvent(
                kind="score-drop",
                detail=(
                    f"reliability fell {drop:.4f} below the baseline "
                    f"{self.baseline_score:.4f}"
                ),
            )
        return None

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def step(self) -> RedeployDecision | None:
        """Process one degradation signal end to end, if there is one.

        Order: pushed events first (chaos/telemetry outrank polling),
        then a :meth:`check` poll. Returns the decision, or ``None``
        when nothing is degraded.
        """
        if self._pending_events:
            event = self._pending_events.pop(0)
            self.refresh()
        else:
            event = self.check()
            if event is None:
                return None
        return self._decide(event)

    def _decide(self, event: DegradationEvent) -> RedeployDecision:
        from repro import serialization

        decision = self._next_decision
        self._next_decision += 1
        incumbent_score = self.assess_incumbent()
        self.journal.append(
            {
                "record": "detected",
                "decision": decision,
                "event": event.to_dict(),
                "incumbent_score": incumbent_score,
            }
        )

        result = None
        attempts = 0
        for attempt in range(1, self.max_retries + 1):
            attempts = attempt
            self.journal.append(
                {"record": "search-attempt", "decision": decision, "attempt": attempt}
            )
            try:
                candidate_result = self.search.search(
                    self._spec(), initial_plan=self.incumbent
                )
                if (
                    self.zone_constraints is not None
                    and not self.zone_constraints.satisfied_by(
                        candidate_result.best_plan, self.search.assessor.topology
                    )
                ):
                    raise ConfigurationError(
                        "re-search result violates the zone constraints"
                    )
                result = candidate_result
                break
            except Exception as exc:  # noqa: BLE001 - journaled and retried
                self.journal.append(
                    {
                        "record": "search-failed",
                        "decision": decision,
                        "attempt": attempt,
                        "reason": f"{type(exc).__name__}: {exc}",
                    }
                )
                if attempt < self.max_retries:
                    self.sleep(
                        self.backoff_seconds * self.backoff_factor ** (attempt - 1)
                    )

        if result is None:
            self.journal.append({"record": "abandoned", "decision": decision})
            return RedeployDecision(
                decision_id=decision,
                event=event,
                action="abandoned",
                incumbent_score=incumbent_score,
                search_attempts=attempts,
            )

        candidate = result.best_plan
        candidate_score = float(result.best_assessment.estimate.score)
        gain = candidate_score - incumbent_score
        apply = gain >= self.min_gain
        self.journal.append(
            {
                "record": "candidate",
                "decision": decision,
                "plan": serialization.plan_to_dict(candidate),
                "candidate_score": candidate_score,
                "incumbent_score": incumbent_score,
                "gain": gain,
                "apply": apply,
            }
        )
        if not apply:
            self.journal.append({"record": "rejected", "decision": decision})
            # The degraded score is the new normal: without this reset a
            # permanent degradation would re-trigger on every poll even
            # though no better plan exists.
            self.baseline_score = incumbent_score
            return RedeployDecision(
                decision_id=decision,
                event=event,
                action="rejected",
                incumbent_score=incumbent_score,
                candidate_score=candidate_score,
                gain=gain,
                search_attempts=attempts,
                plan=candidate,
            )

        self._persist_incumbent(candidate)
        self.incumbent = candidate
        if self.apply_plan is not None:
            self.apply_plan(candidate)
        self.journal.append({"record": "applied", "decision": decision})
        self.baseline_score = candidate_score
        return RedeployDecision(
            decision_id=decision,
            event=event,
            action="applied",
            incumbent_score=incumbent_score,
            candidate_score=candidate_score,
            gain=gain,
            search_attempts=attempts,
            plan=candidate,
        )

    def run(
        self, cycles: int, poll_seconds: float = 0.0
    ) -> list[RedeployDecision]:
        """Run up to ``cycles`` watch cycles; returns the decisions made."""
        decisions = []
        for cycle in range(cycles):
            decision = self.step()
            if decision is not None:
                decisions.append(decision)
            if poll_seconds > 0 and cycle < cycles - 1:
                self.sleep(poll_seconds)
        return decisions

    def _spec(self) -> SearchSpec:
        return SearchSpec(
            structure=self.structure,
            desired_reliability=1.0,
            max_seconds=self.search_seconds,
            max_iterations=self.search_iterations,
            zone_constraints=self.zone_constraints,
        )
