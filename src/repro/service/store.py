"""Durable result store: one atomic, checksummed file per finished result.

The write-ahead journal remembers *that* a request finished; this store
remembers *what* it answered. Results are keyed by the client's
idempotency key, written with the same atomic checksummed writer the
search checkpoints use (:func:`repro.serialization.dump` — temp file,
fsync, rename, directory fsync), so a crash mid-write can never leave a
half-result behind and silent corruption is caught at read time.

Resubmitting a completed idempotency key is answered straight from here
without re-execution; entries older than the configured TTL are removed
by :meth:`compact`, which the scheduler folds into journal segment GC so
a key's stored answer and its journal memory age out together.
"""

from __future__ import annotations

import hashlib
import logging
import os
import time

from repro import serialization
from repro.drill.faultpoints import (
    fault_hit,
    raise_if_crash,
    raise_if_crash_after,
)
from repro.util.errors import ConfigurationError

logger = logging.getLogger("repro.service")

#: Artifact format stamped into every stored result file.
RESULT_FORMAT = "service-result"


def _filename_for(key: str) -> str:
    """Stable filesystem-safe name for an arbitrary idempotency key."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:40] + ".json"


class ResultStore:
    """Per-key durable storage of terminal service responses."""

    def __init__(self, directory):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, _filename_for(key))

    # ------------------------------------------------------------------

    def put(self, key: str, response: dict) -> None:
        """Durably store a terminal response document under ``key``."""
        # Drill seams: crash before/after the atomic write, or fail it
        # the way a full disk fails ``os.replace`` (no-op in production).
        command = fault_hit("store.put", key=key)
        raise_if_crash(command, "store.put")
        if command is not None and command.kind == "io_error":
            raise OSError(
                f"drill: simulated os.replace failure storing key {key!r}"
            )
        document = {
            "format": RESULT_FORMAT,
            "version": serialization.FORMAT_VERSION,
            "key": key,
            "stored_at": time.time(),
            "response": response,
        }
        serialization.dump(document, self._path(key), checksum=True)
        raise_if_crash_after(command, "store.put")

    def get(self, key: str) -> dict | None:
        """The stored response for ``key``, or ``None``.

        A corrupt or foreign file under the key's name is treated as
        absent (and logged): idempotent replay silently degrades to
        re-execution, which is always a correct answer.
        """
        path = self._path(key)
        if not os.path.exists(path):
            return None
        try:
            document = serialization.load(path)
        except ConfigurationError as exc:
            logger.warning("result store: dropping unreadable %s (%s)", path, exc)
            return None
        if (
            not isinstance(document, dict)
            or document.get("format") != RESULT_FORMAT
            or document.get("key") != key
        ):
            logger.warning("result store: %s does not hold key %r", path, key)
            return None
        response = document.get("response")
        return response if isinstance(response, dict) else None

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------

    def compact(self, ttl_seconds: float) -> list[str]:
        """Remove results stored longer than ``ttl_seconds`` ago.

        Unreadable files are removed too — they can never serve a replay,
        and leaving them would mask the corruption forever. Returns the
        removed paths.
        """
        removed: list[str] = []
        now = time.time()
        for name in os.listdir(self.directory):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.directory, name)
            try:
                document = serialization.load(path)
                stored_at = float(document["stored_at"])
            except Exception:
                stored_at = None
            if stored_at is None or now - stored_at >= ttl_seconds:
                try:
                    os.unlink(path)
                    removed.append(path)
                except OSError:
                    pass
        if removed:
            serialization.fsync_dir(self.directory)
            logger.info("result store: compacted %d entries", len(removed))
        return removed
