"""Request/response records crossing the assessment-service boundary.

Everything a client sends is validated *here*, before it costs a queue
slot: malformed requests get a field-level
:class:`~repro.util.errors.ValidationError` listing every problem at
once, and only well-formed work is ticketed. A :class:`Ticket` pairs the
request with its cancellation token and a future the client waits on; the
scheduler resolves the future with a :class:`ServiceResponse` — including
on deadline, where the response carries the *anytime* result rather than
an exception-shaped timeout.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field

from repro.util.cancel import CancellationToken
from repro.util.errors import ValidationError

#: Response statuses. ``degraded`` means a usable anytime estimate with
#: honestly widened bounds (deadline hit or portions dropped); it is a
#: success shape, not an error shape.
STATUSES = ("ok", "degraded", "cancelled", "rejected", "invalid", "error")

#: Longest accepted idempotency key. Keys land in journal records and
#: (hashed) in result-store filenames, so they must stay bounded.
MAX_IDEMPOTENCY_KEY_LENGTH = 128


def _validate_idempotency_key(
    key: str | None, errors: list[tuple[str, str]]
) -> None:
    if key is None:
        return
    if not isinstance(key, str) or not key:
        errors.append(("idempotency_key", "must be a non-empty string"))
        return
    if len(key) > MAX_IDEMPOTENCY_KEY_LENGTH:
        errors.append(
            (
                "idempotency_key",
                f"must be at most {MAX_IDEMPOTENCY_KEY_LENGTH} characters, "
                f"got {len(key)}",
            )
        )
    if not key.isprintable():
        errors.append(
            ("idempotency_key", "must not contain control characters")
        )


@dataclass(frozen=True)
class AssessRequest:
    """Assess one K-of-N plan on the service's data center.

    Attributes:
        hosts: Host component ids to deploy onto.
        k: Instances that must stay alive.
        rounds: Sampling rounds; ``None`` uses the service default.
        deadline_seconds: Per-request deadline. On expiry the service
            returns the anytime estimate built from the chunks/portions
            completed so far, flagged degraded.
        idempotency_key: Client-chosen retry handle. Requests sharing a
            key execute at most once: a resubmission while the original
            is queued or running joins its ticket, and a resubmission
            after completion returns the journaled/stored response
            without new work. The key also pins the request's random
            streams, so re-execution after a crash is bit-identical.
    """

    hosts: tuple[str, ...]
    k: int
    rounds: int | None = None
    deadline_seconds: float | None = None
    idempotency_key: str | None = None

    def validate(self, topology) -> None:
        """Raise :class:`ValidationError` listing every field problem."""
        errors: list[tuple[str, str]] = []
        _validate_idempotency_key(self.idempotency_key, errors)
        if not self.hosts:
            errors.append(("hosts", "at least one host is required"))
        else:
            unknown = [h for h in self.hosts if h not in topology.components]
            for host in unknown[:5]:
                errors.append(("hosts", f"unknown host {host!r}"))
            if len(unknown) > 5:
                errors.append(
                    ("hosts", f"... and {len(unknown) - 5} more unknown hosts")
                )
            if len(set(self.hosts)) != len(self.hosts):
                errors.append(("hosts", "host ids must be distinct"))
        if self.k < 1:
            errors.append(("k", f"k must be >= 1, got {self.k}"))
        elif self.hosts and self.k > len(self.hosts):
            errors.append(
                ("k", f"k={self.k} exceeds the {len(self.hosts)} hosts given")
            )
        if self.rounds is not None and self.rounds < 1:
            errors.append(("rounds", f"rounds must be >= 1, got {self.rounds}"))
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            errors.append(
                (
                    "deadline_seconds",
                    f"deadline must be positive, got {self.deadline_seconds}",
                )
            )
        if errors:
            raise ValidationError(errors)

    @classmethod
    def from_dict(cls, payload: dict) -> "AssessRequest":
        """Decode a JSON body; shape errors become field errors too."""
        errors: list[tuple[str, str]] = []
        hosts = payload.get("hosts")
        if isinstance(hosts, str):
            hosts = [h.strip() for h in hosts.split(",") if h.strip()]
        if not isinstance(hosts, (list, tuple)):
            errors.append(("hosts", "must be a list of host ids"))
            hosts = ()
        k = payload.get("k")
        if not isinstance(k, int) or isinstance(k, bool):
            errors.append(("k", "must be an integer"))
            k = 0
        rounds = payload.get("rounds")
        if rounds is not None and (not isinstance(rounds, int) or isinstance(rounds, bool)):
            errors.append(("rounds", "must be an integer or omitted"))
            rounds = None
        deadline = payload.get("deadline_seconds")
        if deadline is not None and not isinstance(deadline, (int, float)):
            errors.append(("deadline_seconds", "must be a number or omitted"))
            deadline = None
        key = payload.get("idempotency_key")
        if key is not None and not isinstance(key, str):
            errors.append(("idempotency_key", "must be a string or omitted"))
            key = None
        if errors:
            raise ValidationError(errors)
        return cls(
            hosts=tuple(str(h) for h in hosts),
            k=k,
            rounds=rounds,
            deadline_seconds=float(deadline) if deadline is not None else None,
            idempotency_key=key,
        )

    def to_dict(self) -> dict:
        """JSON-ready encoding; the journal stores exactly this."""
        document: dict = {"hosts": list(self.hosts), "k": self.k}
        if self.rounds is not None:
            document["rounds"] = self.rounds
        if self.deadline_seconds is not None:
            document["deadline_seconds"] = self.deadline_seconds
        if self.idempotency_key is not None:
            document["idempotency_key"] = self.idempotency_key
        return document


@dataclass(frozen=True)
class SearchRequest:
    """Search for a reliable K-of-N plan within a time budget.

    ``max_seconds`` is the annealing budget ``T_max``;
    ``deadline_seconds`` additionally bounds the whole request (queue
    wait included) and cuts the search off between moves, returning the
    best plan found so far.
    """

    k: int
    n: int
    max_seconds: float = 5.0
    desired_reliability: float = 1.0
    rounds: int | None = None
    deadline_seconds: float | None = None
    idempotency_key: str | None = None

    def validate(self, topology) -> None:
        errors: list[tuple[str, str]] = []
        _validate_idempotency_key(self.idempotency_key, errors)
        if self.k < 1:
            errors.append(("k", f"k must be >= 1, got {self.k}"))
        if self.n < 1:
            errors.append(("n", f"n must be >= 1, got {self.n}"))
        if self.k >= 1 and self.n >= 1 and self.k > self.n:
            errors.append(("k", f"k={self.k} exceeds n={self.n}"))
        host_count = sum(
            1 for cid in topology.components if cid.startswith("host")
        )
        if self.n >= 1 and self.n > host_count:
            errors.append(
                ("n", f"n={self.n} exceeds the {host_count} hosts available")
            )
        if self.max_seconds <= 0:
            errors.append(
                ("max_seconds", f"must be positive, got {self.max_seconds}")
            )
        if not 0.0 <= self.desired_reliability <= 1.0:
            errors.append(
                (
                    "desired_reliability",
                    f"must be in [0, 1], got {self.desired_reliability}",
                )
            )
        if self.rounds is not None and self.rounds < 1:
            errors.append(("rounds", f"rounds must be >= 1, got {self.rounds}"))
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            errors.append(
                (
                    "deadline_seconds",
                    f"deadline must be positive, got {self.deadline_seconds}",
                )
            )
        if errors:
            raise ValidationError(errors)

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchRequest":
        errors: list[tuple[str, str]] = []
        values: dict = {}
        for name, required, kinds in (
            ("k", True, int),
            ("n", True, int),
            ("max_seconds", False, (int, float)),
            ("desired_reliability", False, (int, float)),
            ("rounds", False, int),
            ("deadline_seconds", False, (int, float)),
        ):
            raw = payload.get(name)
            if raw is None:
                if required:
                    errors.append((name, "is required"))
                continue
            if not isinstance(raw, kinds) or isinstance(raw, bool):
                errors.append((name, f"must be a {getattr(kinds, '__name__', 'number')}"))
                continue
            values[name] = raw
        key = payload.get("idempotency_key")
        if key is not None and not isinstance(key, str):
            errors.append(("idempotency_key", "must be a string or omitted"))
            key = None
        if errors:
            raise ValidationError(errors)
        return cls(
            k=values["k"],
            n=values["n"],
            max_seconds=float(values.get("max_seconds", 5.0)),
            desired_reliability=float(values.get("desired_reliability", 1.0)),
            rounds=values.get("rounds"),
            deadline_seconds=(
                float(values["deadline_seconds"])
                if "deadline_seconds" in values
                else None
            ),
            idempotency_key=key,
        )

    def to_dict(self) -> dict:
        """JSON-ready encoding; the journal stores exactly this."""
        document: dict = {
            "k": self.k,
            "n": self.n,
            "max_seconds": self.max_seconds,
            "desired_reliability": self.desired_reliability,
        }
        if self.rounds is not None:
            document["rounds"] = self.rounds
        if self.deadline_seconds is not None:
            document["deadline_seconds"] = self.deadline_seconds
        if self.idempotency_key is not None:
            document["idempotency_key"] = self.idempotency_key
        return document


@dataclass
class Ticket:
    """One admitted request travelling through the service.

    ``recovered`` marks a ticket rebuilt from the write-ahead journal
    after a crash: it was accepted by a previous process and is being
    re-executed, which the result's runtime metadata discloses.
    ``shard`` is the owning shard under the supervised fleet
    (:mod:`repro.service.fleet`); the thread scheduler leaves it ``None``.
    """

    id: str
    kind: str  # "assess" | "search"
    request: AssessRequest | SearchRequest
    token: CancellationToken
    future: concurrent.futures.Future = field(
        default_factory=concurrent.futures.Future
    )
    enqueued_at: float = 0.0
    recovered: bool = False
    shard: int | None = None

    @property
    def idempotency_key(self) -> str | None:
        return self.request.idempotency_key

    def reject(self, response: "ServiceResponse") -> None:
        """Resolve the future with a terminal (non-executed) response."""
        if not self.future.done():
            self.future.set_result(response)


@dataclass(frozen=True)
class ServiceResponse:
    """What every request resolves to — errors included, typed, JSON-ready.

    ``replayed`` is set when the response was served from the durable
    result store for a previously-completed idempotency key, i.e. no new
    work ran for this submission.
    """

    request_id: str
    status: str
    result: dict | None = None
    error: dict | None = None
    elapsed_seconds: float = 0.0
    queue_seconds: float = 0.0
    backend: str | None = None
    replayed: bool = False

    def to_dict(self) -> dict:
        document = {
            "request_id": self.request_id,
            "status": self.status,
            "elapsed_seconds": self.elapsed_seconds,
            "queue_seconds": self.queue_seconds,
        }
        if self.backend is not None:
            document["backend"] = self.backend
        if self.result is not None:
            document["result"] = self.result
        if self.error is not None:
            document["error"] = self.error
        if self.replayed:
            document["replayed"] = True
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "ServiceResponse":
        """Rebuild a response from its :meth:`to_dict` encoding."""
        return cls(
            request_id=str(document.get("request_id", "")),
            status=str(document.get("status", "error")),
            result=document.get("result"),
            error=document.get("error"),
            elapsed_seconds=float(document.get("elapsed_seconds", 0.0)),
            queue_seconds=float(document.get("queue_seconds", 0.0)),
            backend=document.get("backend"),
            replayed=bool(document.get("replayed", False)),
        )

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "degraded")
