"""Write-ahead request journal: the service's crash-durable memory.

The paper's provider runs the assessment service continuously (§2.1), so
accepted work must survive a process crash. Every admitted request is
journaled *before* it costs any assessment work, and every lifecycle
transition is appended afterwards:

``accepted``   the request was validated and admitted (full request
               payload, idempotency key and fingerprint ride along, so a
               restart can re-execute it verbatim)
``started``    a scheduler worker began executing it
``completed``  it reached a stored terminal response (``ok``,
               ``degraded`` or ``error``)
``cancelled``  it ended without a stored result (client cancel before
               any work, or a graceful drain stranding it unstarted)

On startup :meth:`RequestJournal.replay` folds the records into a
:class:`JournalState`: requests that were accepted (or started) but never
reached a terminal record are *pending* and get re-enqueued by the
scheduler; terminal requests are left alone, and their idempotency keys
map to the durable result store.

Record framing is append-only, length-prefixed and checksummed::

    +----------------+----------------+------------------+
    | length (u32 BE)| crc32  (u32 BE)| payload (JSON)   |
    +----------------+----------------+------------------+

Appends are flushed and ``fsync``'d before the caller proceeds (the
write-ahead contract), and segment files are rotated at a byte threshold
so garbage collection can drop whole sealed segments instead of
rewriting. A fleet deployment gives every shard its own *segment family*
(``journal-sNN-*.waj``) in the shared directory: one single-writer file
per shard, a takeover scan that reads only the dead shard's family, and
per-shard GC that never touches a survivor's live segment. Opening the journal for writing truncates a *torn tail* — a
record half-written when the process died — back to the last intact
record; corruption anywhere in a sealed (fsync'd, rotated-away) segment
is loud :class:`~repro.util.errors.ConfigurationError`, never silent.
"""

from __future__ import annotations

import json
import logging
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field

from repro.drill.faultpoints import (
    SimulatedCrash,
    fault_hit,
    raise_if_crash,
    raise_if_crash_after,
)
from repro.serialization import fsync_dir
from repro.util.errors import ConfigurationError

logger = logging.getLogger("repro.service")

#: Record header: payload length and payload crc32, both big-endian u32.
_HEADER = struct.Struct(">II")

#: Events a journal record may carry.
EVENTS = ("accepted", "started", "completed", "cancelled")

#: Terminal events — a request with one of these needs no recovery.
TERMINAL_EVENTS = ("completed", "cancelled")

_SEGMENT_PREFIX = "journal-"
_SEGMENT_SUFFIX = ".waj"


def _segment_name(sequence: int, shard: int | None = None) -> str:
    """Segment filename; fleet shards get their own segment families.

    ``journal-00000001.waj`` (unsharded, the single-process service) or
    ``journal-s03-00000001.waj`` (shard 3 of a fleet). Per-shard segment
    families mean a worker failover replays *only the dead shard's*
    records, and shard GC never has to look at a survivor's live file.
    """
    if shard is None:
        return f"{_SEGMENT_PREFIX}{sequence:08d}{_SEGMENT_SUFFIX}"
    return f"{_SEGMENT_PREFIX}s{shard:02d}-{sequence:08d}{_SEGMENT_SUFFIX}"


def _segment_key(name: str) -> tuple[int | None, int] | None:
    """Parse a segment filename into ``(shard, sequence)``; None = not ours."""
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    body = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    shard: int | None = None
    if body.startswith("s") and "-" in body:
        shard_digits, _, body = body.partition("-")
        if not shard_digits[1:].isdigit():
            return None
        shard = int(shard_digits[1:])
    return (shard, int(body)) if body.isdigit() else None


def _segment_sequence(name: str) -> int | None:
    key = _segment_key(name)
    return None if key is None else key[1]


def encode_record(record: dict) -> bytes:
    """Frame one record: length + crc32 + canonical JSON payload."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def iter_records(data: bytes):
    """Yield ``(offset, record)`` pairs until the data ends or breaks.

    Stops at the first torn or corrupt record and reports where: returns
    via StopIteration-free protocol — callers use :func:`scan_segment`.
    """
    offset = 0
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            return offset, "torn header"
        length, checksum = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > len(data):
            return offset, "torn payload"
        payload = data[start:end]
        if zlib.crc32(payload) != checksum:
            return offset, "checksum mismatch"
        try:
            record = json.loads(payload)
        except json.JSONDecodeError:
            return offset, "payload is not valid JSON"
        yield offset, record
        offset = end
    return offset, None


def scan_segment(path: str) -> tuple[list[dict], int, str | None]:
    """Read one segment: ``(records, good_bytes, defect)``.

    ``good_bytes`` is the offset up to which the segment is intact;
    ``defect`` describes the first bad record (``None`` for a clean file).
    """
    with open(path, "rb") as handle:
        data = handle.read()
    records: list[dict] = []
    iterator = iter_records(data)
    while True:
        try:
            _, record = next(iterator)
        except StopIteration as stop:
            good_bytes, defect = stop.value
            return records, good_bytes, defect
        records.append(record)


@dataclass
class PendingRequest:
    """One journaled request that never reached a terminal record.

    ``shard`` is the fleet shard whose journal last accepted the request
    (``None`` for the unsharded single-process journal); a takeover moves
    a request to a survivor's shard by re-accepting it there.
    """

    request_id: str
    kind: str
    request: dict
    idempotency_key: str | None
    fingerprint: str | None
    started: bool = False
    shard: int | None = None


@dataclass
class JournalState:
    """What a replay pass learned from the journal.

    Attributes:
        pending: Accepted-but-unfinished requests, in admission order —
            the scheduler re-enqueues exactly these on startup.
        keys: ``idempotency_key -> (fingerprint, status)`` for every key
            that reached a terminal record (``status`` is the journaled
            response status, e.g. ``"ok"``); used to route resubmissions
            to the result store without re-execution.
        terminal_ids: Request ids that reached ``completed``/``cancelled``.
        max_request_number: Largest numeric suffix seen on ``req-N[-M]``
            ids, so a restarted service can keep ids unique per journal.
        segment_ids: Per segment path, the request ids whose ``accepted``
            record lives in it (drives segment GC).
        records: Total records replayed.
        events: Per request id, the lifecycle records seen (event name,
            timestamp and the distinguishing fields), in fold order —
            what ``repro journal inspect`` prints for post-mortems.
    """

    pending: list[PendingRequest] = field(default_factory=list)
    keys: dict[str, tuple[str | None, str]] = field(default_factory=dict)
    terminal_ids: set[str] = field(default_factory=set)
    max_request_number: int = 0
    segment_ids: dict[str, set[str]] = field(default_factory=dict)
    records: int = 0
    events: dict[str, list[dict]] = field(default_factory=dict)


def _fold(state: JournalState, record: dict, segment: str) -> None:
    event = record.get("event")
    request_id = record.get("id")
    if event not in EVENTS or not isinstance(request_id, str):
        raise ConfigurationError(
            f"journal segment {segment!r} holds a malformed record: {record!r}"
        )
    state.records += 1
    state.events.setdefault(request_id, []).append(
        {
            key: record[key]
            for key in ("event", "ts", "status", "reason", "shard", "kind")
            if key in record
        }
    )
    tail = request_id.rsplit("-", 1)[-1]
    if tail.isdigit():
        state.max_request_number = max(state.max_request_number, int(tail))
    if event == "accepted":
        state.segment_ids.setdefault(segment, set()).add(request_id)
        if request_id in state.terminal_ids:
            # A takeover re-acceptance whose terminal record folded first
            # (per-shard segment families are folded shard by shard, not
            # in global time order) — the request is done, stay done.
            return
        for entry in state.pending:
            if entry.request_id == request_id:
                # Same id accepted twice: a failover moved the request to
                # a surviving shard. One execution, latest ownership.
                entry.shard = record.get("shard")
                return
        state.pending.append(
            PendingRequest(
                request_id=request_id,
                kind=str(record.get("kind", "assess")),
                request=record.get("request") or {},
                idempotency_key=record.get("key"),
                fingerprint=record.get("fingerprint"),
                shard=record.get("shard"),
            )
        )
    elif event == "started":
        for entry in state.pending:
            if entry.request_id == request_id:
                entry.started = True
    else:  # terminal
        state.terminal_ids.add(request_id)
        for entry in list(state.pending):
            if entry.request_id == request_id:
                state.pending.remove(entry)
                if entry.idempotency_key is not None and event == "completed":
                    state.keys[entry.idempotency_key] = (
                        entry.fingerprint,
                        str(record.get("status", "ok")),
                    )


class RequestJournal:
    """Append-only, segment-rotated, fsync'd write-ahead journal.

    One instance owns a journal directory for writing; concurrent readers
    may :meth:`scan` the same directory read-only (the chaos harness does,
    while the service is live). All appends are serialized under a lock —
    the scheduler's worker threads and the admission path share one
    journal.
    """

    def __init__(
        self, directory, segment_bytes: int = 1 << 20, shard: int | None = None
    ):
        if segment_bytes < 1:
            raise ConfigurationError(
                f"segment_bytes must be >= 1, got {segment_bytes}"
            )
        self.directory = os.fspath(directory)
        self.segment_bytes = segment_bytes
        self.shard = shard
        self._lock = threading.Lock()
        self._handle = None
        os.makedirs(self.directory, exist_ok=True)
        self._state = self._open()

    # ------------------------------------------------------------------
    # Opening and replay
    # ------------------------------------------------------------------

    def _segments(self) -> list[str]:
        """This journal's own segment family, in sequence order."""
        entries = [
            (key[1], name)
            for name in os.listdir(self.directory)
            if (key := _segment_key(name)) is not None and key[0] == self.shard
        ]
        return [
            os.path.join(self.directory, name)
            for _, name in sorted(entries)
        ]

    def _open(self) -> JournalState:
        """Replay every segment, truncate a torn tail, open for append."""
        state = JournalState()
        segments = self._segments()
        for index, path in enumerate(segments):
            records, good_bytes, defect = scan_segment(path)
            if defect is not None:
                if index != len(segments) - 1:
                    raise ConfigurationError(
                        f"journal segment {path!r} is corrupt mid-stream "
                        f"({defect}); sealed segments were fsync'd, so this "
                        "is real corruption — refusing to guess"
                    )
                # Torn tail of the live segment: the process died
                # mid-append. Drop the partial record, keep the rest.
                logger.warning(
                    "journal %s: truncating torn tail (%s) at byte %d",
                    path,
                    defect,
                    good_bytes,
                )
                with open(path, "r+b") as handle:
                    handle.truncate(good_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
            for record in records:
                _fold(state, record, path)
        if segments:
            current = segments[-1]
            sequence = _segment_sequence(os.path.basename(current))
        else:
            sequence = 1
            current = os.path.join(
                self.directory, _segment_name(sequence, self.shard)
            )
        self._current_path = current
        self._sequence = sequence
        self._handle = open(current, "ab")
        fsync_dir(self.directory)
        return state

    def replay(self) -> JournalState:
        """The state folded from the records present at open time."""
        return self._state

    @staticmethod
    def scan(directory, shard=...) -> JournalState:
        """Read-only replay of a journal directory.

        Tolerates a torn tail (the writer may be mid-append) without
        truncating anything — safe to call against a *live* journal from
        another process, e.g. the crash-recovery harness. With the
        default ``shard=...`` every segment family in the directory is
        folded into one state (each family may carry its own torn live
        tail); ``shard=N`` (or ``shard=None`` for the unsharded family)
        restricts the scan to one family — the **takeover scan** a fleet
        supervisor runs against a dead worker's shard.
        """
        directory = os.fspath(directory)
        state = JournalState()
        families: dict[int | None, list[tuple[int, str]]] = {}
        for name in os.listdir(directory):
            key = _segment_key(name)
            if key is None:
                continue
            if shard is not ... and key[0] != shard:
                continue
            families.setdefault(key[0], []).append((key[1], name))
        for _, entries in sorted(
            families.items(), key=lambda item: (item[0] is None, item[0] or 0)
        ):
            entries.sort()
            for index, (_, name) in enumerate(entries):
                path = os.path.join(directory, name)
                records, _, defect = scan_segment(path)
                if defect is not None and index != len(entries) - 1:
                    raise ConfigurationError(
                        f"journal segment {path!r} is corrupt mid-stream "
                        f"({defect})"
                    )
                for record in records:
                    _fold(state, record, path)
        return state

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def _append(self, record: dict) -> None:
        if self.shard is not None and "shard" not in record:
            record = dict(record, shard=self.shard)
        data = encode_record(record)
        with self._lock:
            handle = self._handle
            if handle is None:
                raise ConfigurationError("journal is closed")
            # Drill seams (no-op unless a fault registry is armed): a
            # crash before the write, a write torn at an arbitrary byte
            # offset, a skipped fsync, or a crash after the append.
            command = fault_hit(
                "journal.append",
                event=record.get("event"),
                path=self._current_path,
            )
            raise_if_crash(command, "journal.append")
            durable = handle.tell()
            if command is not None and command.kind == "torn":
                cut = len(data) // 2 if command.arg is None else command.arg
                cut = max(1, min(int(cut), len(data) - 1))
                handle.write(data[:cut])
                handle.flush()
                os.fsync(handle.fileno())
                raise SimulatedCrash("journal.append")
            handle.write(data)
            handle.flush()
            fsync_command = fault_hit(
                "journal.fsync", path=self._current_path, durable=durable
            )
            if fsync_command is None or fsync_command.kind != "skip_fsync":
                os.fsync(handle.fileno())
            if record.get("event") == "accepted":
                # Keep the segment->ids map live for gc: this admission's
                # memory lives in the current segment until it is dropped.
                self._state.segment_ids.setdefault(
                    self._current_path, set()
                ).add(record["id"])
            if handle.tell() >= self.segment_bytes:
                self._rotate()
            raise_if_crash_after(command, "journal.append")

    def _rotate(self) -> None:
        """Seal the current segment and open the next (lock held)."""
        self._handle.close()
        self._sequence += 1
        self._current_path = os.path.join(
            self.directory, _segment_name(self._sequence, self.shard)
        )
        self._handle = open(self._current_path, "ab")
        fsync_dir(self.directory)

    def accepted(
        self,
        request_id: str,
        kind: str,
        request: dict,
        idempotency_key: str | None = None,
        fingerprint: str | None = None,
    ) -> None:
        """Durably record an admission *before* the request is enqueued."""
        self._append(
            {
                "event": "accepted",
                "id": request_id,
                "kind": kind,
                "request": request,
                "key": idempotency_key,
                "fingerprint": fingerprint,
                "ts": time.time(),
            }
        )

    def started(self, request_id: str) -> None:
        self._append({"event": "started", "id": request_id, "ts": time.time()})

    def completed(self, request_id: str, status: str) -> None:
        self._append(
            {
                "event": "completed",
                "id": request_id,
                "status": status,
                "ts": time.time(),
            }
        )

    def cancelled(
        self, request_id: str, reason: str, started: bool = False
    ) -> None:
        self._append(
            {
                "event": "cancelled",
                "id": request_id,
                "reason": reason,
                "started": started,
                "ts": time.time(),
            }
        )

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def gc(self, ttl_seconds: float, terminal_ids: set[str]) -> list[str]:
        """Drop sealed segments whose every request finished long ago.

        A segment is removable when it is not the live segment, every
        request whose ``accepted`` record lives in it is terminal, and the
        file has not been touched within ``ttl_seconds`` — the same TTL
        the result store compacts with, so a key's journal memory and its
        stored result age out together. Returns the removed paths.
        """
        removed: list[str] = []
        now = time.time()
        with self._lock:
            for path, ids in list(self._state.segment_ids.items()):
                if path == self._current_path:
                    continue
                if not os.path.exists(path):
                    continue
                if ids - terminal_ids:
                    continue
                if now - os.path.getmtime(path) < ttl_seconds:
                    continue
                os.unlink(path)
                removed.append(path)
                self._state.segment_ids.pop(path, None)
            if removed:
                fsync_dir(self.directory)
        for path in removed:
            logger.info("journal gc: removed sealed segment %s", path)
        return removed

    # ------------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            handle, self._handle = self._handle, None
            if handle is not None:
                handle.flush()
                os.fsync(handle.fileno())
                handle.close()

    def __enter__(self) -> "RequestJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
