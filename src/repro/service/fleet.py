"""Supervised multi-process worker fleet for the assessment service.

One :class:`FleetSupervisor` process owns admission, idempotency and the
write-ahead journals; N forked shard worker processes own execution. Each
worker owns one shard of the idempotency-key space via a consistent
:class:`HashRing`, so a key always lands on the same worker while it is
alive and moves deterministically to a survivor when it is not. Unkeyed
requests have no placement constraint and are stolen by whichever worker
goes idle first.

Supervision tree and failure handling:

* Every worker heartbeats over its pipe. A worker that **exits** is dead
  immediately; one that goes **silent** for ``heartbeat_misses``
  consecutive intervals is declared dead and SIGKILLed (a half-dead
  worker must not answer after its shard moved).
* On death the supervisor runs the **takeover scan** — a read-only
  replay of the dead worker's journal segment family — re-journals the
  orphaned requests into a survivor's segment family, and re-enqueues
  them (in-flight orphans at the *front*) with their journaled ids and
  ``recovered=True``. Because per-request seeds are a pure function of
  ``(service seed, kind, key-or-id)`` (:func:`~repro.service.executor.
  request_seed`), the replayed execution is bit-identical to what the
  dead worker would have answered.
* The dead worker is respawned with exponential backoff; a flapping
  worker is quarantined (:class:`~repro.service.heartbeat.RestartPolicy`)
  and its key range is served by the survivors.
* While **no** worker is alive, submissions are shed with a typed
  ``AdmissionRejected(reason="failover")`` — the HTTP layer turns that
  into 503 + Retry-After, and :class:`~repro.service.client.
  HttpServiceClient` retries keyed requests through the window.

The fleet requires the ``fork`` start method (workers inherit the built
topology and any test hooks); platforms without it get a
:class:`~repro.util.errors.ConfigurationError`.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import logging
import multiprocessing
import os
import queue as queue_module
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace

from repro.drill.faultpoints import fault_hit, raise_if_crash
from repro.service.executor import RequestExecutor
from repro.service.health import DRAINING, SERVING, STOPPED, HealthMonitor
from repro.service.heartbeat import HeartbeatTracker, RestartPolicy
from repro.service.journal import RequestJournal
from repro.service.requests import (
    AssessRequest,
    SearchRequest,
    ServiceResponse,
    Ticket,
)
from repro.service.scheduler import AssessmentService, ServiceConfig
from repro.service.store import ResultStore
from repro.util.cancel import CancellationToken
from repro.util.errors import (
    AdmissionRejected,
    ConfigurationError,
    ValidationError,
)
from repro.util.metrics import MetricsRegistry

logger = logging.getLogger("repro.service.fleet")

_TICKET_IDS = itertools.count(1)

#: How long a freshly forked worker may take to say hello before the
#: monitor gives up on it. Generous: topology builds are O(seconds) on a
#: loaded CI box and a false positive here causes a pointless respawn.
STARTUP_TIMEOUT_SECONDS = 60.0


def _fork_context():
    if "fork" not in multiprocessing.get_all_start_methods():
        raise ConfigurationError(
            "the worker fleet requires the 'fork' start method; "
            "this platform does not support it"
        )
    return multiprocessing.get_context("fork")


# ----------------------------------------------------------------------
# Consistent hashing
# ----------------------------------------------------------------------


class HashRing:
    """A consistent-hash ring over shard numbers.

    sha256-based so placement is stable across processes and runs
    (``hash()`` is salted per process). ``replicas`` virtual nodes per
    shard smooth the key distribution; ``owner`` walks clockwise from
    the key's point to the first *eligible* shard, so removing a shard
    moves only that shard's arc — the property that keeps failover from
    reshuffling keys that never touched the dead worker.
    """

    def __init__(self, shards: int, replicas: int = 64):
        self.shards = shards
        self._points: list[tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                self._points.append((self._hash(f"shard-{shard}#{replica}"), shard))
        self._points.sort()
        self._keys = [point for point, _ in self._points]

    @staticmethod
    def _hash(value: str) -> int:
        digest = hashlib.sha256(value.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def owner(self, key: str, eligible=None) -> int | None:
        """The shard owning ``key`` among ``eligible`` (default: all)."""
        if eligible is not None:
            eligible = set(eligible)
            if not eligible:
                return None
        start = bisect.bisect_right(self._keys, self._hash(key))
        for offset in range(len(self._points)):
            _, shard = self._points[(start + offset) % len(self._points)]
            if eligible is None or shard in eligible:
                return shard
        return None


# ----------------------------------------------------------------------
# Shard worker process
# ----------------------------------------------------------------------


def shard_worker_main(
    shard: int,
    conn,
    scale: str,
    seed: int,
    rounds: int,
    chunks: int,
    heartbeat_interval: float,
) -> None:
    """Entry point of one forked shard worker process.

    Three threads: a reader turning pipe messages into tasks and firing
    cancellation tokens, a heartbeat sender proving liveness every
    ``heartbeat_interval``, and the main loop executing one task at a
    time through the shared :class:`RequestExecutor` (same bits as the
    thread scheduler's sequential path). The worker exits on ``stop``,
    on pipe EOF, and when its parent disappears — an orphaned worker
    must never keep answering for a shard that has been failed over.
    """
    from repro.faults.inventory import build_paper_inventory
    from repro.topology.presets import paper_topology

    topology = paper_topology(scale, seed=seed)
    dependency_model = build_paper_inventory(topology, seed=seed + 1)
    executor = RequestExecutor(
        topology,
        dependency_model,
        service_seed=seed,
        default_rounds=rounds,
        chunks=chunks,
        worker_index=shard,
    )

    send_lock = threading.Lock()
    stop = threading.Event()
    tasks: queue_module.Queue = queue_module.Queue()
    tokens: dict[str, CancellationToken] = {}
    tokens_lock = threading.Lock()

    def send(message: dict) -> None:
        try:
            with send_lock:
                conn.send(message)
        except (OSError, ValueError, BrokenPipeError):
            # The supervisor is gone; there is nobody to answer to.
            os._exit(0)

    def reader() -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                stop.set()
                tasks.put(None)
                return
            kind = message.get("type")
            if kind == "task":
                token = CancellationToken(
                    deadline_seconds=message.get("deadline_seconds")
                )
                with tokens_lock:
                    tokens[message["id"]] = token
                tasks.put((message, token))
            elif kind == "cancel":
                with tokens_lock:
                    token = tokens.get(message["id"])
                if token is not None:
                    token.cancel(message.get("reason", "cancelled by supervisor"))
            elif kind == "stop":
                stop.set()
                tasks.put(None)
                return

    def heart() -> None:
        while not stop.wait(heartbeat_interval):
            if os.getppid() == 1:  # reparented to init: supervisor died
                os._exit(0)
            send(
                {
                    "type": "heartbeat",
                    "shard": shard,
                    "pid": os.getpid(),
                    "ts": time.time(),
                }
            )

    threading.Thread(target=reader, name="fleet-reader", daemon=True).start()
    threading.Thread(target=heart, name="fleet-heart", daemon=True).start()
    send({"type": "hello", "shard": shard, "pid": os.getpid()})

    while True:
        item = tasks.get()
        if item is None:
            break
        message, token = item
        request_id = message["id"]
        request_cls = (
            SearchRequest if message["kind"] == "search" else AssessRequest
        )
        # Drill seam: die or lose the protocol message at a chosen step
        # (no-op in production; a dropped "started" is harmless — the
        # journal simply never learns the request began executing).
        command = fault_hit(
            "fleet.worker.send", message="started", shard=shard
        )
        if command is not None and command.kind == "exit":
            os._exit(70)
        if command is None or command.kind != "drop":
            send({"type": "started", "id": request_id})
        try:
            request = request_cls.from_dict(message["request"])
            response = executor.run(
                message["kind"],
                request,
                request_id=request_id,
                token=token,
                queue_seconds=message.get("queue_seconds", 0.0),
                recovered=message.get("recovered", False),
            )
        except BaseException as exc:  # the worker must answer, not die
            response = ServiceResponse(
                request_id=request_id,
                status="error",
                error={"error": "internal", "message": str(exc)},
            )
        with tokens_lock:
            tokens.pop(request_id, None)
        # Drill seam: a lost response means a dead pipe, and a worker
        # with a dead pipe exits — both kinds end the process here.
        command = fault_hit(
            "fleet.worker.send", message="response", shard=shard
        )
        if command is not None and command.kind in ("exit", "drop"):
            os._exit(70)
        send({"type": "response", "id": request_id, "response": response.to_dict()})
    conn.close()


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------


@dataclass
class _WorkerSlot:
    """Supervisor-side state of one shard worker."""

    shard: int
    process: object = None
    conn: object = None
    reader: threading.Thread | None = None
    # starting | alive | dead | respawning | quarantined
    state: str = "starting"
    ready: bool = False
    inflight: Ticket | None = None
    spawned_at: float = 0.0
    respawn_at: float | None = None
    generation: int = 0
    send_lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def name(self) -> str:
        return f"shard-{self.shard}"

    def send(self, message: dict) -> bool:
        """Best-effort pipe send; a dead pipe is the monitor's problem."""
        conn = self.conn
        if conn is None:
            return False
        try:
            with self.send_lock:
                conn.send(message)
            return True
        except (OSError, ValueError, BrokenPipeError):
            return False


class FleetSupervisor:
    """Supervisor process of the worker fleet.

    Public surface mirrors :class:`~repro.service.scheduler.
    AssessmentService` (``start``/``drain``/``close``/``submit``/
    ``assess``/``search``/``cancel``/``status``, plus ``health``,
    ``metrics`` and ``heartbeats``) so the HTTP server and the clients
    cannot tell which deployment shape is behind them.
    """

    def __init__(self, config: ServiceConfig, clock=time.monotonic):
        if config.fleet_workers < 1:
            raise ConfigurationError(
                "FleetSupervisor requires fleet_workers >= 1"
            )
        self._ctx = _fork_context()
        self.config = config
        self._clock = clock
        from repro.faults.inventory import build_paper_inventory
        from repro.topology.presets import paper_topology

        self.topology = paper_topology(config.scale, seed=config.seed)
        self.dependency_model = build_paper_inventory(
            self.topology, seed=config.seed + 1
        )
        self.metrics = MetricsRegistry()
        self.health = HealthMonitor(clock)
        self.heartbeats = HeartbeatTracker(clock=clock)
        self.ring = HashRing(config.fleet_workers)
        self.restarts = RestartPolicy(
            backoff_seconds=config.respawn_backoff_seconds,
            backoff_cap_seconds=config.respawn_backoff_cap_seconds,
            quarantine_restarts=config.quarantine_restarts,
            quarantine_window_seconds=config.quarantine_window_seconds,
            clock=clock,
        )
        self._root_token = CancellationToken(clock=clock)
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._slots = [_WorkerSlot(shard=i) for i in range(config.fleet_workers)]
        self._queues: list[deque[Ticket]] = [
            deque() for _ in range(config.fleet_workers)
        ]
        self._tickets: dict[str, Ticket] = {}
        self._keys: dict[str, tuple[str, str | None, object]] = {}
        self._keys_lock = threading.Lock()
        self._journals: dict[int, RequestJournal] = {}
        self._store: ResultStore | None = None
        self._recovered_tickets: list[Ticket] = []
        self._id_offset = 0
        self._started = False
        self._draining = False
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        if config.journal_dir is not None:
            root = os.fspath(config.journal_dir)
            self._store = ResultStore(os.path.join(root, "results"))
            pending = []
            for shard in range(config.fleet_workers):
                journal = RequestJournal(
                    root,
                    segment_bytes=config.journal_segment_bytes,
                    shard=shard,
                )
                self._journals[shard] = journal
                state = journal.replay()
                self._id_offset = max(self._id_offset, state.max_request_number)
                for key, (fingerprint, status) in state.keys.items():
                    self._keys[key] = ("completed", fingerprint, status)
                pending.extend(state.pending)
            self._recovered_tickets = self._rebuild_pending(pending)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "FleetSupervisor":
        if self._started:
            return self
        self._started = True
        with self._lock:
            for slot in self._slots:
                self._spawn_locked(slot)
            for ticket in self._recovered_tickets:
                self._tickets[ticket.id] = ticket
                self._route_locked(ticket, front=True)
            if self._recovered_tickets:
                self.metrics.incr(
                    "service/recovered", len(self._recovered_tickets)
                )
                logger.info(
                    "fleet recovery: re-enqueued %d journaled request(s)",
                    len(self._recovered_tickets),
                )
            self._recovered_tickets = []
        if self._store is not None:
            self._store.compact(self.config.result_ttl_seconds)
        monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-monitor", daemon=True
        )
        dispatcher = threading.Thread(
            target=self._dispatch_loop, name="fleet-dispatch", daemon=True
        )
        monitor.start()
        dispatcher.start()
        self._threads = [monitor, dispatcher]
        self.health.transition(SERVING)
        logger.info(
            "fleet serving scale=%s shards=%d queue=%d journal=%s",
            self.config.scale,
            self.config.fleet_workers,
            self.config.queue_capacity,
            self.config.journal_dir or "-",
        )
        return self

    def drain(self, timeout_seconds: float | None = None) -> None:
        """Graceful shutdown: queued rejected, in-flight allowed to finish."""
        timeout = (
            self.config.drain_timeout_seconds
            if timeout_seconds is None
            else timeout_seconds
        )
        self.health.transition(DRAINING)
        with self._lock:
            self._draining = True
            stranded: list[Ticket] = []
            for shard_queue in self._queues:
                stranded.extend(shard_queue)
                shard_queue.clear()
        for ticket in stranded:
            ticket.reject(
                ServiceResponse(
                    request_id=ticket.id,
                    status="rejected",
                    error={
                        "error": "admission",
                        "reason": "draining",
                        "message": "service is draining; request was not started",
                    },
                )
            )
            journal = self._journal_for(ticket)
            if journal is not None:
                journal.cancelled(ticket.id, reason="draining", started=False)
            self._forget_inflight_key(ticket)
            with self._lock:
                self._tickets.pop(ticket.id, None)
        deadline = self._clock() + timeout
        for ticket in self._open_tickets():
            remaining = max(0.0, deadline - self._clock())
            try:
                ticket.future.result(timeout=remaining)
            except Exception:
                pass
        # Whatever is still running gets cancelled into an anytime result.
        with self._lock:
            for slot in self._slots:
                if slot.inflight is not None:
                    slot.send(
                        {
                            "type": "cancel",
                            "id": slot.inflight.id,
                            "reason": "service draining",
                        }
                    )
        for ticket in self._open_tickets():
            try:
                ticket.future.result(timeout=5.0)
            except Exception:
                pass
        self.close()

    def close(self) -> None:
        """Hard stop: stop workers, resolve stragglers, free resources."""
        self._root_token.cancel("service stopped")
        self._stop.set()
        with self._work:
            self._draining = True
            self._work.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []
        with self._lock:
            slots = list(self._slots)
        for slot in slots:
            slot.send({"type": "stop"})
        for slot in slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
            if slot.conn is not None:
                try:
                    slot.conn.close()
                except OSError:
                    pass
        for ticket in self._open_tickets():
            ticket.reject(
                ServiceResponse(
                    request_id=ticket.id,
                    status="rejected",
                    error={
                        "error": "admission",
                        "reason": "stopped",
                        "message": "service stopped before the request ran",
                    },
                )
            )
        for journal in self._journals.values():
            journal.close()
        self.health.transition(STOPPED)

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _open_tickets(self) -> list[Ticket]:
        with self._lock:
            return [t for t in self._tickets.values() if not t.future.done()]

    # ------------------------------------------------------------------
    # Admission (mirrors AssessmentService.submit, with shard routing)
    # ------------------------------------------------------------------

    def submit(self, kind: str, request) -> Ticket:
        """Validate, ticket, journal and enqueue on the owning shard.

        Sheds with ``AdmissionRejected(reason="failover")`` while no
        shard is alive — the supervisor is respawning; the client should
        retry after a beat. Idempotency semantics are identical to the
        thread scheduler's: a known key joins the live ticket or replays
        the stored response, and never executes twice.
        """
        if kind not in ("assess", "search"):
            raise ValidationError([("kind", f"unknown request kind {kind!r}")])
        request.validate(self.topology)
        key = request.idempotency_key
        fingerprint = (
            AssessmentService._fingerprint(request) if key is not None else None
        )
        if key is not None and self._journals:
            existing = self._resolve_key(kind, request, key, fingerprint)
            if existing is not None:
                return existing
        deadline = request.deadline_seconds
        if deadline is None:
            deadline = self.config.default_deadline_seconds
        token = self._root_token.child(deadline_seconds=deadline)
        ticket = Ticket(
            id=self._next_id(),
            kind=kind,
            request=request,
            token=token,
            enqueued_at=self._clock(),
        )
        if key is not None and self._journals:
            with self._keys_lock:
                if key in self._keys:
                    existing = self._resolve_key_locked(
                        kind, request, key, fingerprint
                    )
                    if existing is not None:
                        return existing
                self._keys[key] = ("inflight", fingerprint, ticket)
        with self._work:
            if self._draining or self._stop.is_set():
                self._forget_inflight_key(ticket)
                raise AdmissionRejected(
                    "service is draining and accepts no new requests",
                    reason="draining" if self._draining else "stopped",
                    queue_depth=self._depth_locked(),
                    capacity=self.config.queue_capacity,
                )
            routable = self._routable_shards_locked()
            if not routable:
                self._forget_inflight_key(ticket)
                self.metrics.incr("fleet/failover_sheds")
                raise AdmissionRejected(
                    "no shard worker is alive; failover in progress, retry",
                    reason="failover",
                    queue_depth=self._depth_locked(),
                    capacity=self.config.queue_capacity,
                )
            if self._depth_locked() >= self.config.queue_capacity:
                self._forget_inflight_key(ticket)
                self.metrics.incr("service/shed")
                raise AdmissionRejected(
                    f"admission queue is full ({self.config.queue_capacity} "
                    "queued); retry with backoff",
                    reason="queue_full",
                    queue_depth=self._depth_locked(),
                    capacity=self.config.queue_capacity,
                )
            self._tickets[ticket.id] = ticket
            self._route_locked(ticket)
            self.metrics.incr("service/admitted")
            self.metrics.incr("service/requests")
        logger.info(
            "request %s admitted kind=%s shard=%s", ticket.id, kind, ticket.shard
        )
        return ticket

    def assess(self, request, timeout: float | None = None) -> ServiceResponse:
        return self.submit("assess", request).future.result(timeout=timeout)

    def search(self, request, timeout: float | None = None) -> ServiceResponse:
        return self.submit("search", request).future.result(timeout=timeout)

    def cancel(self, request_id: str, reason: str = "cancelled by client") -> bool:
        with self._lock:
            ticket = self._tickets.get(request_id)
            if ticket is None:
                return False
            ticket.token.cancel(reason)
            for slot in self._slots:
                if slot.inflight is ticket:
                    slot.send(
                        {"type": "cancel", "id": request_id, "reason": reason}
                    )
        self.metrics.incr("service/cancel_requests")
        return True

    def _next_id(self) -> str:
        return f"req-{self._id_offset + next(_TICKET_IDS)}"

    def _depth_locked(self) -> int:
        return sum(len(q) for q in self._queues)

    def _routable_shards_locked(self) -> list[int]:
        """Shards that can accept work: alive now, or coming back."""
        return [
            slot.shard
            for slot in self._slots
            if slot.state in ("starting", "alive", "respawning")
        ]

    def _route_locked(self, ticket: Ticket, front: bool = False) -> None:
        """Pin the ticket to its owning shard's queue.

        Keyed tickets go to the ring owner among routable shards (so a
        key deterministically maps to a worker); unkeyed tickets go to
        the shortest queue and may later be stolen by any idle worker.
        """
        routable = self._routable_shards_locked()
        if not routable:
            # Everyone is quarantined: nothing will ever run this.
            ticket.reject(
                ServiceResponse(
                    request_id=ticket.id,
                    status="rejected",
                    error={
                        "error": "admission",
                        "reason": "failover",
                        "message": "all shard workers are quarantined",
                    },
                )
            )
            journal = self._journal_for(ticket)
            if journal is not None:
                journal.cancelled(ticket.id, reason="failover", started=False)
            self._forget_inflight_key(ticket)
            self._tickets.pop(ticket.id, None)
            return
        key = ticket.idempotency_key
        if key is not None:
            shard = self.ring.owner(key, routable)
        else:
            shard = min(routable, key=lambda s: len(self._queues[s]))
        previous = ticket.shard
        ticket.shard = shard
        journal = self._journals.get(shard)
        if journal is not None:
            # Write-ahead (or, on failover, re-accept into the new
            # owner's segment family) before the ticket can dispatch.
            journal.accepted(
                ticket.id,
                ticket.kind,
                ticket.request.to_dict(),
                key,
                AssessmentService._fingerprint(ticket.request)
                if key is not None
                else None,
            )
            # Drill seam: supervisor death between the write-ahead
            # record and the enqueue — the request must be recovered
            # from the journal alone.
            raise_if_crash(
                fault_hit("fleet.route.accepted", request=ticket.id),
                "fleet.route.accepted",
            )
        if front:
            self._queues[shard].appendleft(ticket)
        else:
            self._queues[shard].append(ticket)
        if previous is not None and previous != shard:
            logger.info(
                "request %s moved shard %s -> %s", ticket.id, previous, shard
            )
        self._work.notify_all()

    # ------------------------------------------------------------------
    # Idempotency (same semantics as the thread scheduler)
    # ------------------------------------------------------------------

    def _resolve_key(self, kind, request, key, fingerprint) -> Ticket | None:
        with self._keys_lock:
            return self._resolve_key_locked(kind, request, key, fingerprint)

    def _resolve_key_locked(self, kind, request, key, fingerprint) -> Ticket | None:
        entry = self._keys.get(key)
        if entry is None:
            return None
        state, known_fingerprint, payload = entry
        if known_fingerprint != fingerprint:
            raise ValidationError(
                [
                    (
                        "idempotency_key",
                        f"key {key!r} was already used with a different "
                        "request payload",
                    )
                ]
            )
        if state == "inflight":
            self.metrics.incr("service/idempotent_joins")
            return payload
        stored = self._store.get(key) if self._store is not None else None
        if stored is None:
            del self._keys[key]
            return None
        response = replace(ServiceResponse.from_dict(stored), replayed=True)
        ticket = Ticket(
            id=response.request_id or self._next_id(),
            kind=kind,
            request=request,
            token=CancellationToken(clock=self._clock),
            enqueued_at=self._clock(),
        )
        ticket.future.set_result(response)
        self.metrics.incr("service/idempotent_replays")
        return ticket

    def _forget_inflight_key(self, ticket: Ticket) -> None:
        key = ticket.idempotency_key
        if key is None:
            return
        with self._keys_lock:
            entry = self._keys.get(key)
            if entry is not None and entry[0] == "inflight" and entry[2] is ticket:
                del self._keys[key]

    def _journal_for(self, ticket: Ticket) -> RequestJournal | None:
        if ticket.shard is None:
            return self._journals.get(0)
        return self._journals.get(ticket.shard)

    def _rebuild_pending(self, pending) -> list[Ticket]:
        """Journal replay state -> re-executable tickets (full restart)."""
        tickets: list[Ticket] = []
        for entry in pending:
            try:
                if entry.kind == "search":
                    request = SearchRequest.from_dict(entry.request)
                else:
                    request = AssessRequest.from_dict(entry.request)
                request.validate(self.topology)
            except ValidationError as exc:
                logger.warning(
                    "fleet recovery: dropping journaled request %s (%s)",
                    entry.request_id,
                    exc,
                )
                journal = self._journals.get(entry.shard or 0)
                if journal is not None:
                    journal.cancelled(
                        entry.request_id,
                        reason="unrecoverable",
                        started=entry.started,
                    )
                continue
            deadline = request.deadline_seconds
            if deadline is None:
                deadline = self.config.default_deadline_seconds
            ticket = Ticket(
                id=entry.request_id,
                kind=entry.kind,
                request=request,
                token=self._root_token.child(deadline_seconds=deadline),
                enqueued_at=self._clock(),
                recovered=True,
                shard=entry.shard,
            )
            tickets.append(ticket)
            if entry.idempotency_key is not None:
                self._keys[entry.idempotency_key] = (
                    "inflight",
                    entry.fingerprint,
                    ticket,
                )
        return tickets

    # ------------------------------------------------------------------
    # Spawning and dispatch
    # ------------------------------------------------------------------

    def _spawn_locked(self, slot: _WorkerSlot) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        slot.generation += 1
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(
                slot.shard,
                child_conn,
                self.config.scale,
                self.config.seed,
                self.config.rounds,
                self.config.chunks,
                self.config.heartbeat_interval_seconds,
            ),
            name=f"repro-{slot.name}-g{slot.generation}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.state = "starting"
        slot.ready = False
        slot.inflight = None
        slot.respawn_at = None
        slot.spawned_at = self._clock()
        self.heartbeats.annotate(
            slot.name,
            shard=slot.shard,
            pid=process.pid,
            generation=slot.generation,
            status="starting",
        )
        reader = threading.Thread(
            target=self._reader_loop,
            args=(slot, slot.generation),
            name=f"fleet-reader-{slot.shard}",
            daemon=True,
        )
        reader.start()
        slot.reader = reader
        logger.info(
            "%s spawned pid=%d generation=%d",
            slot.name,
            process.pid,
            slot.generation,
        )

    def _reader_loop(self, slot: _WorkerSlot, generation: int) -> None:
        conn = slot.conn
        while not self._stop.is_set():
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return  # the monitor notices the dead process
            kind = message.get("type")
            with self._work:
                if slot.generation != generation:
                    return  # a respawn superseded this pipe
                if kind == "hello":
                    slot.ready = True
                    if slot.state == "starting":
                        slot.state = "alive"
                    self.heartbeats.beat(slot.name, busy=False)
                    self.heartbeats.annotate(slot.name, status="alive")
                    self._work.notify_all()
                elif kind == "heartbeat":
                    self.heartbeats.beat(
                        slot.name, busy=slot.inflight is not None
                    )
                elif kind == "started":
                    ticket = slot.inflight
                    if ticket is not None and ticket.id == message.get("id"):
                        journal = self._journal_for(ticket)
                        if journal is not None:
                            journal.started(ticket.id)
                elif kind == "response":
                    self._complete_locked(slot, message)

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            with self._work:
                dispatched = self._dispatch_once_locked()
                if not dispatched:
                    self._work.wait(timeout=0.05)

    def _dispatch_once_locked(self) -> bool:
        dispatched = False
        for slot in self._slots:
            if slot.state != "alive" or not slot.ready or slot.inflight is not None:
                continue
            ticket = self._pick_ticket_locked(slot.shard)
            if ticket is None:
                continue
            dispatched = True
            if ticket.future.done():
                self._tickets.pop(ticket.id, None)
                continue
            queue_seconds = max(0.0, self._clock() - ticket.enqueued_at)
            if ticket.token.cancelled:
                self._resolve_cancelled_locked(ticket, queue_seconds)
                continue
            self.metrics.observe("service/queue_wait", queue_seconds)
            slot.inflight = ticket
            sent = slot.send(
                {
                    "type": "task",
                    "id": ticket.id,
                    "kind": ticket.kind,
                    "request": ticket.request.to_dict(),
                    "deadline_seconds": ticket.token.remaining(),
                    "queue_seconds": queue_seconds,
                    "recovered": ticket.recovered,
                }
            )
            if not sent:
                # Dead pipe: put the work back; the monitor will fail
                # the worker over and this ticket rides along.
                slot.inflight = None
                self._queues[slot.shard].appendleft(ticket)
        return dispatched

    def _pick_ticket_locked(self, shard: int) -> Ticket | None:
        """Own queue first; otherwise steal the oldest *unkeyed* ticket.

        Keyed tickets are pinned to their ring owner (placement is what
        makes a key a key); unkeyed tickets belong to whoever is idle.
        """
        own = self._queues[shard]
        if own:
            return own.popleft()
        victim: deque | None = None
        for other, candidates in enumerate(self._queues):
            if other == shard or not candidates:
                continue
            if any(t.idempotency_key is None for t in candidates):
                if victim is None or len(candidates) > len(victim):
                    victim = candidates
        if victim is None:
            return None
        for index, ticket in enumerate(victim):
            if ticket.idempotency_key is None:
                del victim[index]
                self.metrics.incr("fleet/steals")
                return ticket
        return None

    def _resolve_cancelled_locked(
        self, ticket: Ticket, queue_seconds: float
    ) -> None:
        response = ServiceResponse(
            request_id=ticket.id,
            status="cancelled",
            error={
                "error": "cancelled",
                "reason": ticket.token.reason,
                "message": "cancelled before execution started",
            },
            queue_seconds=queue_seconds,
        )
        journal = self._journal_for(ticket)
        if journal is not None:
            journal.cancelled(
                ticket.id, reason=ticket.token.reason or "cancelled", started=False
            )
        self._forget_inflight_key(ticket)
        self.metrics.incr("service/status/cancelled")
        ticket.reject(response)
        self._tickets.pop(ticket.id, None)

    def _complete_locked(self, slot: _WorkerSlot, message: dict) -> None:
        ticket = slot.inflight
        if ticket is None or ticket.id != message.get("id"):
            return  # stale response from a superseded execution
        slot.inflight = None
        response = ServiceResponse.from_dict(message["response"])
        self._record_terminal(ticket, response)
        self.metrics.observe("service/latency", response.elapsed_seconds)
        self.metrics.incr(f"service/status/{response.status}")
        if not ticket.future.done():
            ticket.future.set_result(response)
        self._tickets.pop(ticket.id, None)
        logger.info(
            "request %s kind=%s status=%s shard=%d elapsed=%.3fs",
            ticket.id,
            ticket.kind,
            response.status,
            slot.shard,
            response.elapsed_seconds,
        )
        self._work.notify_all()

    def _record_terminal(self, ticket: Ticket, response: ServiceResponse) -> None:
        """Store + journal the outcome (same rules as the scheduler)."""
        journal = self._journal_for(ticket)
        if journal is None:
            return
        key = ticket.idempotency_key
        try:
            if response.status in ("ok", "degraded", "error"):
                if key is not None and self._store is not None:
                    self._store.put(key, response.to_dict())
                # Drill seam: supervisor death between the durable result
                # and the journal's terminal record — the request must
                # re-execute bit-identically after recovery.
                raise_if_crash(
                    fault_hit("fleet.record_terminal", request=ticket.id),
                    "fleet.record_terminal",
                )
                journal.completed(ticket.id, response.status)
                if key is not None:
                    with self._keys_lock:
                        self._keys[key] = (
                            "completed",
                            AssessmentService._fingerprint(ticket.request),
                            response.status,
                        )
            else:
                reason = (response.error or {}).get("reason", "cancelled")
                journal.cancelled(ticket.id, reason=reason, started=True)
                self._forget_inflight_key(ticket)
        except Exception:
            logger.exception(
                "request %s: failed to journal terminal state", ticket.id
            )

    # ------------------------------------------------------------------
    # Failure detection and failover
    # ------------------------------------------------------------------

    def _monitor_loop(self) -> None:
        interval = max(0.02, self.config.heartbeat_interval_seconds / 2)
        while not self._stop.wait(interval):
            with self._work:
                now = self._clock()
                for slot in self._slots:
                    if slot.state in ("starting", "alive"):
                        if not slot.process.is_alive():
                            self._fail_worker_locked(slot, "process exited")
                        elif slot.state == "alive" and self.heartbeats.missed(
                            slot.name,
                            self.config.heartbeat_interval_seconds,
                            self.config.heartbeat_misses,
                        ):
                            self._fail_worker_locked(
                                slot,
                                f"missed {self.config.heartbeat_misses} heartbeats",
                            )
                        elif (
                            slot.state == "starting"
                            and now - slot.spawned_at > STARTUP_TIMEOUT_SECONDS
                        ):
                            self._fail_worker_locked(slot, "startup timeout")
                    elif (
                        slot.state == "respawning"
                        and slot.respawn_at is not None
                        and now >= slot.respawn_at
                    ):
                        self._spawn_locked(slot)
                        self.metrics.incr("fleet/respawns")

    def _fail_worker_locked(self, slot: _WorkerSlot, why: str) -> None:
        """Declare a worker dead: kill, take over its shard, schedule respawn."""
        logger.warning("%s declared dead (%s)", slot.name, why)
        self.metrics.incr("fleet/worker_deaths")
        slot.state = "dead"
        slot.ready = False
        process = slot.process
        if process is not None and process.is_alive():
            # A silent worker must not come back to life and answer for
            # a shard that has been handed over.
            process.kill()
            process.join(timeout=1.0)
        if slot.conn is not None:
            try:
                slot.conn.close()
            except OSError:
                pass
            slot.conn = None
        self.heartbeats.annotate(slot.name, status="dead")
        self._takeover_locked(slot)
        delay = self.restarts.record_failure(slot.name)
        if delay is None:
            slot.state = "quarantined"
            self.metrics.incr("fleet/quarantined")
            self.heartbeats.annotate(slot.name, status="quarantined")
            logger.error(
                "%s quarantined after %d restarts; shard served by survivors",
                slot.name,
                self.restarts.total_restarts(slot.name),
            )
        else:
            slot.state = "respawning"
            slot.respawn_at = self._clock() + delay
            self.heartbeats.annotate(slot.name, status="respawning")
            logger.info("%s respawning in %.2fs", slot.name, delay)
        self._work.notify_all()

    def _takeover_locked(self, slot: _WorkerSlot) -> None:
        """Move the dead shard's work to the survivors.

        The write-ahead journal is the source of truth for *what the
        dead worker owed*: a read-only takeover scan of its segment
        family cross-checks the in-memory picture (and is what a freshly
        restarted supervisor would recover from). The live ticket
        objects — holding the futures clients are blocked on — are then
        re-routed: the orphaned in-flight request to the *front* of its
        new owner's queue flagged ``recovered`` (its journaled id keeps
        the seed, so the replay is bit-identical), queued tickets behind
        it in arrival order.
        """
        if self.config.journal_dir is not None:
            try:
                scan = RequestJournal.scan(
                    self.config.journal_dir, shard=slot.shard
                )
                orphans = len(scan.pending)
                self.metrics.incr("fleet/takeover_scans")
                logger.info(
                    "%s takeover scan: %d non-terminal journaled request(s)",
                    slot.name,
                    orphans,
                )
            except Exception:
                logger.exception("%s takeover scan failed", slot.name)
        orphan = slot.inflight
        slot.inflight = None
        moved = list(self._queues[slot.shard])
        self._queues[slot.shard].clear()
        if orphan is not None and not orphan.future.done():
            orphan.recovered = True
            self.metrics.incr("fleet/orphans_recovered")
            self._route_locked(orphan, front=True)
        for ticket in moved:
            if not ticket.future.done():
                self._route_locked(ticket)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """JSON-ready health + queue + fleet + per-worker snapshot."""
        with self._lock:
            shards = []
            for slot in self._slots:
                shards.append(
                    {
                        "shard": slot.shard,
                        "state": slot.state,
                        "pid": slot.process.pid if slot.process else None,
                        "generation": slot.generation,
                        "restarts": self.restarts.total_restarts(slot.name),
                        "window_restarts": self.restarts.restarts(slot.name),
                        "quarantined": self.restarts.is_quarantined(slot.name),
                        "lifetime_quarantines": self.restarts.total_quarantines(
                            slot.name
                        ),
                        "queue_depth": len(self._queues[slot.shard]),
                        "inflight": slot.inflight.id if slot.inflight else None,
                        "heartbeat_age_seconds": self.heartbeats.age(slot.name),
                    }
                )
            depth = self._depth_locked()
            inflight = sum(1 for s in self._slots if s.inflight is not None)
        return {
            "health": self.health.snapshot(),
            "queue": {
                "depth": depth,
                "capacity": self.config.queue_capacity,
                "draining": self._draining,
            },
            "inflight": inflight,
            "workers": self.heartbeats.snapshot(),
            "fleet": {
                "shards": shards,
                "alive": sum(1 for s in shards if s["state"] == "alive"),
                "quarantined": sum(1 for s in shards if s["state"] == "quarantined"),
                "lifetime_restarts": sum(s["restarts"] for s in shards),
                "lifetime_quarantines": sum(
                    s["lifetime_quarantines"] for s in shards
                ),
                "workers": self.config.fleet_workers,
            },
            "durability": {
                "journaling": bool(self._journals),
                "journal_dir": self.config.journal_dir,
                "known_keys": len(self._keys),
            },
            "drill": self._drill_verdict(),
        }

    def _drill_verdict(self) -> dict | None:
        """The last ``repro drill`` verdict written next to this journal,
        so ``/healthz`` shows whether the stack passed its latest failure
        drill (``None`` when no campaign has run against this state dir)."""
        if not self.config.journal_dir:
            return None
        from repro.drill.engine import load_verdict

        return load_verdict(self.config.journal_dir)
