"""Service lifecycle state and health/readiness reporting.

Kubernetes-style split: *liveness* ("the process is not wedged") is true
whenever the monitor answers at all, while *readiness* ("send me
traffic") is only true in the SERVING state — a draining service is
alive but must be taken out of rotation so its queued work can finish.
"""

from __future__ import annotations

import threading
import time

STARTING = "starting"
SERVING = "serving"
DRAINING = "draining"
STOPPED = "stopped"

_ORDER = (STARTING, SERVING, DRAINING, STOPPED)


class HealthMonitor:
    """Thread-safe lifecycle state machine with JSON-ready snapshots."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STARTING
        self._started_at = clock()
        self._transitions: list[tuple[str, float]] = [(STARTING, 0.0)]

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def transition(self, state: str) -> None:
        """Move lifecycle forward; backwards transitions are ignored."""
        if state not in _ORDER:
            raise ValueError(f"unknown service state {state!r}")
        with self._lock:
            if _ORDER.index(state) < _ORDER.index(self._state):
                return
            if state != self._state:
                self._state = state
                self._transitions.append(
                    (state, self._clock() - self._started_at)
                )

    @property
    def live(self) -> bool:
        """Liveness: anything but STOPPED answers 'alive'."""
        with self._lock:
            return self._state != STOPPED

    @property
    def ready(self) -> bool:
        """Readiness: only a SERVING service should receive traffic."""
        with self._lock:
            return self._state == SERVING

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "uptime_seconds": self._clock() - self._started_at,
                "transitions": [
                    {"state": s, "at_seconds": t} for s, t in self._transitions
                ],
            }
