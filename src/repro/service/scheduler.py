"""The assessment service core: admit → schedule → execute → respond.

One :class:`AssessmentService` owns a data center (topology + §4.1
inventory), a bounded :class:`~repro.service.queue.AdmissionQueue`, a
small pool of scheduler worker threads, and — optionally — a shared
:class:`~repro.runtime.mapreduce.ParallelAssessor` guarded by a
:class:`~repro.service.breaker.CircuitBreaker`.

Request lifecycle:

1. **Admit** — the request is validated (field-level
   :class:`~repro.util.errors.ValidationError`), gets a cancellation
   token (child of the service's root token, with the per-request
   deadline), and enters the bounded queue or is shed with a typed
   :class:`~repro.util.errors.AdmissionRejected`.
2. **Schedule** — a worker thread pops the ticket, records queue wait,
   and routes it: the parallel backend when it is configured, idle and
   the breaker allows; otherwise the chunked sequential path.
3. **Execute** — the cancellation token is threaded all the way down
   (sampler chunks, portion waits, annealing moves). A deadline firing
   mid-run does not raise: the service returns the **anytime result**
   built from the work completed so far, with honestly widened error
   bounds and ``status="degraded"``.
4. **Respond** — the ticket's future resolves with a
   :class:`~repro.service.requests.ServiceResponse`; per-request
   structured logs and latency/queue metrics are recorded.

Shutdown is graceful: ``drain()`` rejects the queued backlog with a
typed response, lets in-flight requests finish (cancelling them into
anytime results only if the drain timeout passes), then stops the
workers and tears down the pool.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import os
import threading
import time
from dataclasses import dataclass, replace

from repro import serialization
from repro.app.structure import ApplicationStructure
from repro.core.api import AssessmentConfig
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.core.result import AssessmentResult, RuntimeMetadata
from repro.service.breaker import CircuitBreaker
from repro.service.executor import chunked_assess, execute_search, request_seed
from repro.service.health import DRAINING, SERVING, STOPPED, HealthMonitor
from repro.service.heartbeat import HeartbeatTracker
from repro.service.journal import JournalState, RequestJournal
from repro.service.queue import AdmissionQueue
from repro.service.requests import (
    AssessRequest,
    SearchRequest,
    ServiceResponse,
    Ticket,
)
from repro.service.store import ResultStore
from repro.util.cancel import CancellationToken
from repro.util.errors import (
    AdmissionRejected,
    CircuitOpen,
    OperationCancelled,
    ReproError,
    ValidationError,
)
from repro.util.metrics import MetricsRegistry
from repro.util.rng import make_rng
from repro.util.timing import Stopwatch

logger = logging.getLogger("repro.service")

_TICKET_IDS = itertools.count(1)


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of the long-running assessment service.

    Attributes:
        scale: Preset data-center scale (Table 2) when no topology is
            injected.
        seed: Deterministic seed for topology, inventory and assessment
            randomness.
        rounds: Default sampling rounds per assess request.
        queue_capacity: Bounded admission-queue size; submits beyond it
            are shed with :class:`AdmissionRejected`.
        scheduler_workers: Worker threads executing requests.
        parallel_workers: Worker *processes* for the shared parallel
            backend; 0 disables it (chunked sequential only).
        chunks: Anytime granularity of the sequential path — rounds are
            assessed in about this many chunks with a cancellation check
            between chunks.
        default_deadline_seconds: Deadline applied when a request does
            not set one (``None`` = unbounded).
        breaker_failure_threshold / breaker_recovery_seconds /
        breaker_half_open_probes: Circuit-breaker tuning for the
            parallel backend.
        portion_timeout_seconds: Per-portion hang deadline inside the
            parallel backend.
        drain_timeout_seconds: How long ``drain()`` waits for in-flight
            requests before cancelling them into anytime results.
        journal_dir: Directory for the write-ahead request journal and
            the durable result store. ``None`` (the default) disables
            durability: no journaling, no crash recovery, no idempotent
            replay — requests still get per-request deterministic seeds.
        journal_segment_bytes: Rotation threshold for journal segments;
            sealed segments are the unit of journal GC.
        result_ttl_seconds: How long completed results (and the sealed
            journal segments remembering them) are retained for
            idempotent replay. Default one week.
        fleet_workers: Shard worker *processes* for the supervised fleet
            (:mod:`repro.service.fleet`); 0 keeps the single-process
            thread scheduler. Only ``repro serve --workers N`` and the
            fleet supervisor read this.
        heartbeat_interval_seconds / heartbeat_misses: Fleet failure
            detection — a worker that misses ``heartbeat_misses``
            consecutive intervals (or whose process exits) is declared
            dead and failed over.
        respawn_backoff_seconds / respawn_backoff_cap_seconds: Base and
            cap of the exponential backoff between respawns of a dead
            shard worker.
        quarantine_restarts / quarantine_window_seconds: A worker
            restarted more than ``quarantine_restarts`` times within the
            window is quarantined — no further respawns; its key range
            is served by the surviving shards.
    """

    scale: str = "tiny"
    seed: int = 1
    rounds: int = 10_000
    queue_capacity: int = 8
    scheduler_workers: int = 2
    parallel_workers: int = 0
    chunks: int = 8
    default_deadline_seconds: float | None = None
    breaker_failure_threshold: int = 3
    breaker_recovery_seconds: float = 5.0
    breaker_half_open_probes: int = 1
    portion_timeout_seconds: float | None = 30.0
    drain_timeout_seconds: float = 30.0
    journal_dir: str | None = None
    journal_segment_bytes: int = 1 << 20
    result_ttl_seconds: float = 7 * 24 * 3600.0
    fleet_workers: int = 0
    heartbeat_interval_seconds: float = 0.25
    heartbeat_misses: int = 8
    respawn_backoff_seconds: float = 0.25
    respawn_backoff_cap_seconds: float = 5.0
    quarantine_restarts: int = 5
    quarantine_window_seconds: float = 30.0


class AssessmentService:
    """A long-running, overload-safe front to the assessment engines."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        topology=None,
        dependency_model=None,
        clock=time.monotonic,
    ):
        self.config = config or ServiceConfig()
        self._clock = clock
        if topology is None:
            from repro.faults.inventory import build_paper_inventory
            from repro.topology.presets import paper_topology

            topology = paper_topology(self.config.scale, seed=self.config.seed)
            dependency_model = build_paper_inventory(
                topology, seed=self.config.seed + 1
            )
        self.topology = topology
        self.dependency_model = dependency_model
        self.metrics = MetricsRegistry()
        self.queue = AdmissionQueue(self.config.queue_capacity, self.metrics)
        self.health = HealthMonitor(clock)
        self.heartbeats = HeartbeatTracker(clock=clock)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            recovery_seconds=self.config.breaker_recovery_seconds,
            half_open_probes=self.config.breaker_half_open_probes,
            clock=clock,
            metrics=self.metrics,
        )
        self._root_token = CancellationToken(clock=clock)
        self._tickets: dict[str, Ticket] = {}
        self._tickets_lock = threading.Lock()
        self._workers: list[threading.Thread] = []
        self._started = False
        self._parallel = None
        self._parallel_lock = threading.Lock()
        # Durability: write-ahead journal + result store + idempotency map.
        # ``_keys`` maps idempotency_key -> ("inflight", fingerprint, Ticket)
        # while a submission is live, or ("completed", fingerprint, status)
        # once its response is durably stored.
        self._journal: RequestJournal | None = None
        self._store: ResultStore | None = None
        self._keys: dict[str, tuple[str, str | None, object]] = {}
        self._keys_lock = threading.Lock()
        self._recovered_tickets: list[Ticket] = []
        self._id_offset = 0
        if self.config.journal_dir is not None:
            root = os.fspath(self.config.journal_dir)
            self._journal = RequestJournal(
                root, segment_bytes=self.config.journal_segment_bytes
            )
            self._store = ResultStore(os.path.join(root, "results"))
            state = self._journal.replay()
            # New ids start past every journaled id, so a restart can
            # never hand out an id the journal already knows.
            self._id_offset = state.max_request_number
            for key, (fingerprint, status) in state.keys.items():
                self._keys[key] = ("completed", fingerprint, status)
            self._recovered_tickets = self._rebuild_pending(state)
        if self.config.parallel_workers > 0:
            from repro.runtime.mapreduce import ParallelAssessor, RetryPolicy

            self._parallel = ParallelAssessor.from_config(
                self.topology,
                self.dependency_model,
                AssessmentConfig(
                    mode="parallel",
                    rounds=self.config.rounds,
                    workers=self.config.parallel_workers,
                    rng=self.config.seed + 2,
                    partial_ok=True,
                    retry_policy=RetryPolicy(
                        timeout_seconds=self.config.portion_timeout_seconds
                    ),
                ),
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "AssessmentService":
        if self._started:
            return self
        self._started = True
        if self._recovered_tickets:
            # Journaled-but-unfinished work from a previous process goes
            # back to the front of the queue (capacity-exempt: it was
            # already admitted once) before any worker starts.
            with self._tickets_lock:
                for ticket in self._recovered_tickets:
                    self._tickets[ticket.id] = ticket
            self.queue.restore(self._recovered_tickets)
            self.metrics.incr("service/recovered", len(self._recovered_tickets))
            logger.info(
                "recovery: re-enqueued %d journaled request(s)",
                len(self._recovered_tickets),
            )
            self._recovered_tickets = []
        if self._journal is not None:
            state = self._journal.replay()
            self._journal.gc(self.config.result_ttl_seconds, state.terminal_ids)
        if self._store is not None:
            self._store.compact(self.config.result_ttl_seconds)
        for index in range(self.config.scheduler_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)
        self.health.transition(SERVING)
        logger.info(
            "service serving scale=%s workers=%d queue=%d parallel=%d",
            self.config.scale,
            self.config.scheduler_workers,
            self.config.queue_capacity,
            self.config.parallel_workers,
        )
        return self

    def drain(self, timeout_seconds: float | None = None) -> None:
        """Graceful shutdown: queued rejected, in-flight allowed to finish.

        After ``timeout_seconds`` (default from config) the still-running
        requests are *cancelled*, which turns them into anytime results —
        they resolve normally, just degraded.
        """
        timeout = (
            self.config.drain_timeout_seconds
            if timeout_seconds is None
            else timeout_seconds
        )
        self.health.transition(DRAINING)
        stranded = self.queue.drain()
        for ticket in stranded:
            ticket.reject(
                ServiceResponse(
                    request_id=ticket.id,
                    status="rejected",
                    error={
                        "error": "admission",
                        "reason": "draining",
                        "message": "service is draining; request was not started",
                    },
                )
            )
            # The journal must agree the request ended unstarted, or the
            # next process would re-execute work the client saw rejected.
            if self._journal is not None:
                self._journal.cancelled(ticket.id, reason="draining", started=False)
            self._forget_inflight_key(ticket)
            self._log_response(ticket, "rejected", 0.0, 0.0, None)
        deadline = self._clock() + timeout
        for ticket in self._open_tickets():
            remaining = max(0.0, deadline - self._clock())
            try:
                ticket.future.result(timeout=remaining)
            except Exception:
                pass
        # Whatever is still running gets cancelled into an anytime result.
        self._root_token.cancel("service draining")
        for ticket in self._open_tickets():
            try:
                ticket.future.result(timeout=5.0)
            except Exception:
                pass
        self.close()

    def close(self) -> None:
        """Hard stop: cancel everything, stop workers, free the pool."""
        self._root_token.cancel("service stopped")
        self.queue.stop()
        for thread in self._workers:
            thread.join(timeout=5.0)
        self._workers.clear()
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None
        if self._journal is not None:
            self._journal.close()
        self.health.transition(STOPPED)

    def __enter__(self) -> "AssessmentService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _open_tickets(self) -> list[Ticket]:
        with self._tickets_lock:
            return [t for t in self._tickets.values() if not t.future.done()]

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def submit(self, kind: str, request) -> Ticket:
        """Validate, ticket, journal and enqueue a request.

        Raises :class:`ValidationError` for malformed requests and
        :class:`AdmissionRejected` under overload or drain — both *before*
        any assessment work is spent. With a journal configured, a
        request carrying an already-known idempotency key is never
        executed twice: it joins the live ticket (still queued/running)
        or resolves immediately with the stored response (completed).
        """
        if kind not in ("assess", "search"):
            raise ValidationError([("kind", f"unknown request kind {kind!r}")])
        request.validate(self.topology)
        key = request.idempotency_key
        fingerprint = self._fingerprint(request) if key is not None else None
        if key is not None and self._journal is not None:
            existing = self._resolve_key(kind, request, key, fingerprint)
            if existing is not None:
                return existing
        deadline = request.deadline_seconds
        if deadline is None:
            deadline = self.config.default_deadline_seconds
        token = self._root_token.child(deadline_seconds=deadline)
        ticket = Ticket(
            id=self._next_id(),
            kind=kind,
            request=request,
            token=token,
            enqueued_at=self._clock(),
        )
        if key is not None and self._journal is not None:
            with self._keys_lock:
                if key in self._keys:
                    # Lost a submit race for this key; join the winner.
                    existing = self._resolve_key_locked(
                        kind, request, key, fingerprint
                    )
                    if existing is not None:
                        return existing
                self._keys[key] = ("inflight", fingerprint, ticket)
        with self._tickets_lock:
            self._tickets[ticket.id] = ticket
        if self._journal is not None:
            # Write-ahead: the admission is durable before the ticket can
            # reach a worker, so a crash at any later point replays it.
            self._journal.accepted(
                ticket.id, kind, request.to_dict(), key, fingerprint
            )
        try:
            self.queue.submit(ticket)
        except AdmissionRejected:
            with self._tickets_lock:
                self._tickets.pop(ticket.id, None)
            self._forget_inflight_key(ticket)
            if self._journal is not None:
                self._journal.cancelled(ticket.id, reason="shed", started=False)
            self.metrics.incr("service/rejected")
            raise
        self.metrics.incr("service/requests")
        logger.info("request %s admitted kind=%s", ticket.id, kind)
        return ticket

    def _next_id(self) -> str:
        return f"req-{self._id_offset + next(_TICKET_IDS)}"

    @staticmethod
    def _fingerprint(request) -> str:
        """Canonical digest of the request payload, key excluded.

        Two submissions under one idempotency key must describe the same
        work; the fingerprint is how a reuse-with-different-payload is
        caught instead of silently answered with the other request's
        result.
        """
        document = dict(request.to_dict())
        document.pop("idempotency_key", None)
        canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _request_seed(self, ticket: Ticket) -> int:
        """Deterministic per-request stream seed (see :func:`request_seed`)."""
        handle = ticket.idempotency_key or ticket.id
        return request_seed(self.config.seed, ticket.kind, handle)

    def _resolve_key(
        self, kind: str, request, key: str, fingerprint: str
    ) -> Ticket | None:
        """Route a known idempotency key; ``None`` means proceed fresh.

        Raises :class:`ValidationError` when the key was used with a
        different payload. An inflight key returns the live ticket; a
        completed key returns a pre-resolved ticket replaying the stored
        response. A completed key whose stored result has aged out (or
        was unreadable) is forgotten and re-executed.
        """
        with self._keys_lock:
            return self._resolve_key_locked(kind, request, key, fingerprint)

    def _resolve_key_locked(
        self, kind: str, request, key: str, fingerprint: str
    ) -> Ticket | None:
        entry = self._keys.get(key)
        if entry is None:
            return None
        state, known_fingerprint, payload = entry
        if known_fingerprint != fingerprint:
            raise ValidationError(
                [
                    (
                        "idempotency_key",
                        f"key {key!r} was already used with a different "
                        "request payload",
                    )
                ]
            )
        if state == "inflight":
            self.metrics.incr("service/idempotent_joins")
            logger.info(
                "request with key %s joined inflight %s", key, payload.id
            )
            return payload
        stored = self._store.get(key) if self._store is not None else None
        if stored is None:
            # Result compacted away or unreadable: honest fallback is
            # re-execution (deterministic under the key anyway).
            del self._keys[key]
            return None
        response = replace(ServiceResponse.from_dict(stored), replayed=True)
        ticket = Ticket(
            id=response.request_id or self._next_id(),
            kind=kind,
            request=request,
            token=CancellationToken(clock=self._clock),
            enqueued_at=self._clock(),
        )
        ticket.future.set_result(response)
        self.metrics.incr("service/idempotent_replays")
        logger.info(
            "request with key %s replayed stored %s (status=%s)",
            key,
            response.request_id,
            response.status,
        )
        return ticket

    def _forget_inflight_key(self, ticket: Ticket) -> None:
        """Drop the key->ticket binding when ``ticket`` ended unstored."""
        key = ticket.idempotency_key
        if key is None:
            return
        with self._keys_lock:
            entry = self._keys.get(key)
            if entry is not None and entry[0] == "inflight" and entry[2] is ticket:
                del self._keys[key]

    def _rebuild_pending(self, state: JournalState) -> list[Ticket]:
        """Turn journal replay state into re-executable tickets.

        Recovered tickets keep their journaled ids (the seed derivation
        and any client polling depend on that) and are flagged so the
        result's runtime metadata discloses the re-execution. A journaled
        request that no longer validates (topology changed under it) is
        journaled cancelled rather than crashing the service.
        """
        tickets: list[Ticket] = []
        for entry in state.pending:
            try:
                if entry.kind == "search":
                    request = SearchRequest.from_dict(entry.request)
                else:
                    request = AssessRequest.from_dict(entry.request)
                request.validate(self.topology)
            except ValidationError as exc:
                logger.warning(
                    "recovery: dropping journaled request %s (%s)",
                    entry.request_id,
                    exc,
                )
                self._journal.cancelled(
                    entry.request_id, reason="unrecoverable", started=entry.started
                )
                continue
            deadline = request.deadline_seconds
            if deadline is None:
                deadline = self.config.default_deadline_seconds
            ticket = Ticket(
                id=entry.request_id,
                kind=entry.kind,
                request=request,
                token=self._root_token.child(deadline_seconds=deadline),
                enqueued_at=self._clock(),
                recovered=True,
            )
            tickets.append(ticket)
            if entry.idempotency_key is not None:
                self._keys[entry.idempotency_key] = (
                    "inflight",
                    entry.fingerprint,
                    ticket,
                )
        return tickets

    def assess(
        self, request: AssessRequest, timeout: float | None = None
    ) -> ServiceResponse:
        """Submit an assess request and wait for its response."""
        return self.submit("assess", request).future.result(timeout=timeout)

    def search(
        self, request: SearchRequest, timeout: float | None = None
    ) -> ServiceResponse:
        """Submit a search request and wait for its response."""
        return self.submit("search", request).future.result(timeout=timeout)

    def cancel(self, request_id: str, reason: str = "cancelled by client") -> bool:
        """Fire a request's token; returns False for unknown ids."""
        with self._tickets_lock:
            ticket = self._tickets.get(request_id)
        if ticket is None:
            return False
        ticket.token.cancel(reason)
        self.metrics.incr("service/cancel_requests")
        return True

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _worker_loop(self, index: int) -> None:
        name = f"worker-{index}"
        assessor = ReliabilityAssessor.from_config(
            self.topology,
            self.dependency_model,
            AssessmentConfig(
                rounds=self.config.rounds,
                rng=self.config.seed + 100 + index,
            ),
        )
        self.heartbeats.beat(name)
        while True:
            ticket = self.queue.pop(timeout=0.1)
            # Thread workers beat between requests; during a long
            # execution the age grows, which status() reports honestly
            # (an operator sees a busy worker, not a dead one — liveness
            # of *threads* is the process's own liveness).
            self.heartbeats.beat(name, busy=ticket is not None)
            if ticket is None:
                if self._root_token.cancelled:
                    return
                continue
            try:
                self._execute(ticket, assessor, index)
            except BaseException as exc:  # never kill a worker thread
                logger.exception("request %s worker crash", ticket.id)
                ticket.reject(
                    ServiceResponse(
                        request_id=ticket.id,
                        status="error",
                        error={"error": "internal", "message": str(exc)},
                    )
                )
            finally:
                self.heartbeats.beat(name, busy=False)

    def _execute(self, ticket: Ticket, assessor, worker_index: int) -> None:
        queue_seconds = max(0.0, self._clock() - ticket.enqueued_at)
        self.metrics.observe("service/queue_wait", queue_seconds)
        watch = Stopwatch()
        backend = None
        execution_started = False
        try:
            if ticket.token.cancelled:
                response = ServiceResponse(
                    request_id=ticket.id,
                    status="cancelled",
                    error={
                        "error": "cancelled",
                        "reason": ticket.token.reason,
                        "message": "cancelled before execution started",
                    },
                    queue_seconds=queue_seconds,
                )
            else:
                if self._journal is not None:
                    self._journal.started(ticket.id)
                execution_started = True
                if ticket.kind == "assess":
                    response, backend = self._run_assess(
                        ticket, assessor, queue_seconds, watch
                    )
                else:
                    response, backend = self._run_search(
                        ticket, queue_seconds, watch, worker_index
                    )
        except OperationCancelled as exc:
            response = ServiceResponse(
                request_id=ticket.id,
                status="cancelled",
                error={
                    "error": "cancelled",
                    "reason": exc.reason,
                    "message": str(exc),
                },
                elapsed_seconds=watch.elapsed(),
                queue_seconds=queue_seconds,
            )
        except ReproError as exc:
            response = ServiceResponse(
                request_id=ticket.id,
                status="error",
                error={"error": type(exc).__name__, "message": str(exc)},
                elapsed_seconds=watch.elapsed(),
                queue_seconds=queue_seconds,
            )
        self._record_terminal(ticket, response, execution_started)
        self.metrics.observe("service/latency", response.elapsed_seconds)
        self.metrics.incr(f"service/status/{response.status}")
        if not ticket.future.done():
            ticket.future.set_result(response)
        with self._tickets_lock:
            self._tickets.pop(ticket.id, None)
        self._log_response(
            ticket, response.status, response.elapsed_seconds, queue_seconds, backend
        )

    def _record_terminal(
        self, ticket: Ticket, response: ServiceResponse, started: bool
    ) -> None:
        """Make the request's outcome durable before the client sees it.

        ``ok``/``degraded``/``error`` responses are stored (when keyed)
        and journaled ``completed`` — a resubmission replays them.
        ``cancelled`` is journaled without a stored result — a
        resubmission re-executes, which is what a client cancelling and
        retrying means. Journal trouble never blocks the response: the
        client still gets its answer, durability is logged as lost.
        """
        if self._journal is None:
            return
        key = ticket.idempotency_key
        try:
            if response.status in ("ok", "degraded", "error"):
                if key is not None and self._store is not None:
                    self._store.put(key, response.to_dict())
                self._journal.completed(ticket.id, response.status)
                if key is not None:
                    with self._keys_lock:
                        self._keys[key] = (
                            "completed",
                            self._fingerprint(ticket.request),
                            response.status,
                        )
            else:
                reason = (response.error or {}).get("reason", "cancelled")
                self._journal.cancelled(ticket.id, reason=reason, started=started)
                self._forget_inflight_key(ticket)
        except Exception:
            logger.exception(
                "request %s: failed to journal terminal state", ticket.id
            )

    @staticmethod
    def _log_response(ticket, status, elapsed, queue_seconds, backend) -> None:
        logger.info(
            "request %s kind=%s status=%s backend=%s elapsed=%.3fs queue=%.3fs",
            ticket.id,
            ticket.kind,
            status,
            backend or "-",
            elapsed,
            queue_seconds,
        )

    # ------------------------------------------------------------------
    # Assess execution
    # ------------------------------------------------------------------

    def _run_assess(
        self, ticket: Ticket, assessor, queue_seconds: float, watch: Stopwatch
    ) -> tuple[ServiceResponse, str]:
        request: AssessRequest = ticket.request
        structure = ApplicationStructure.k_of_n(request.k, len(request.hosts))
        plan = DeploymentPlan.single_component(
            list(request.hosts), structure.components[0].name
        )
        rounds = request.rounds or self.config.rounds
        seed = self._request_seed(ticket)

        result = None
        backend = "chunked-sequential"
        if self._parallel is not None and self._parallel_lock.acquire(blocking=False):
            try:
                self.breaker.before_call()
            except CircuitOpen:
                self._parallel_lock.release()
                self.metrics.incr("service/breaker_fallbacks")
            else:
                try:
                    # Reseed under the backend lock: portion seeds become a
                    # pure function of the request, not of execution order.
                    self._parallel.rng = make_rng(seed)
                    result = self._parallel.assess(
                        plan, structure, rounds=rounds, cancel=ticket.token
                    )
                except OperationCancelled:
                    # Not a backend fault: the caller's deadline fired
                    # before any portion finished.
                    raise
                except ReproError as exc:
                    self.breaker.record_failure()
                    logger.warning(
                        "request %s parallel backend failed (%s); "
                        "falling back to chunked sequential",
                        ticket.id,
                        exc,
                    )
                    result = None
                else:
                    if self._runtime_sick(result.runtime):
                        self.breaker.record_failure()
                    else:
                        self.breaker.record_success()
                    backend = "parallel"
                finally:
                    self._parallel_lock.release()
        if result is None and backend != "parallel":
            assessor.rng = make_rng(seed)
            result = self._chunked_assess(
                assessor, plan, structure, rounds, ticket.token
            )
            backend = "chunked-sequential"

        if ticket.recovered and result.runtime is not None:
            result = replace(
                result, runtime=replace(result.runtime, recovered=True)
            )
        status = (
            "degraded"
            if result.degraded or (result.runtime and result.runtime.cancelled)
            else "ok"
        )
        response = ServiceResponse(
            request_id=ticket.id,
            status=status,
            result=serialization.assessment_to_dict(result),
            elapsed_seconds=watch.elapsed(),
            queue_seconds=queue_seconds,
            backend=backend,
        )
        return response, backend

    @staticmethod
    def _runtime_sick(runtime: RuntimeMetadata | None) -> bool:
        """Did the substrate misbehave, even if the result recovered?

        Cancellation is the *caller's* doing and never counts; crashes,
        hangs, worker errors and pool restarts do — a backend that keeps
        recovering inline is a backend about to fail for real.
        """
        if runtime is None:
            return False
        substrate_failures = [
            f for f in runtime.failures if f.kind != "cancelled"
        ]
        if substrate_failures:
            return True
        if runtime.recovered_inline > 0:
            return True
        return runtime.pool_restarts > 0 and not runtime.cancelled

    def _chunked_assess(
        self,
        assessor,
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        rounds: int,
        token: CancellationToken,
    ) -> AssessmentResult:
        """Sequential anytime execution (shared with the fleet workers).

        The fallback (and default) backend; the single implementation
        lives in :func:`repro.service.executor.chunked_assess` so thread
        workers and shard worker processes stay bit-identical.
        """
        return chunked_assess(
            assessor, plan, structure, rounds, self.config.chunks, token
        )

    # ------------------------------------------------------------------
    # Search execution
    # ------------------------------------------------------------------

    def _run_search(
        self, ticket: Ticket, queue_seconds: float, watch: Stopwatch, worker_index: int
    ) -> tuple[ServiceResponse, str]:
        response = execute_search(
            self.topology,
            self.dependency_model,
            ticket.request,
            request_id=ticket.id,
            seed=self._request_seed(ticket),
            default_rounds=self.config.rounds,
            token=ticket.token,
            queue_seconds=queue_seconds,
            recovered=ticket.recovered,
            watch=watch,
        )
        return response, "search"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """JSON-ready health + queue + breaker + per-worker snapshot."""
        return {
            "health": self.health.snapshot(),
            "queue": {
                "depth": len(self.queue),
                "capacity": self.queue.capacity,
                "draining": self.queue.draining,
            },
            "breaker": self.breaker.snapshot(),
            "inflight": len(self._open_tickets()),
            "workers": self.heartbeats.snapshot(),
            "durability": {
                "journaling": self._journal is not None,
                "journal_dir": self.config.journal_dir,
                "known_keys": len(self._keys),
            },
            "drill": self._drill_verdict(),
        }

    def _drill_verdict(self) -> dict | None:
        """The last ``repro drill`` verdict written next to this journal
        (``None`` when no campaign has run against this state dir)."""
        if not self.config.journal_dir:
            return None
        from repro.drill.engine import load_verdict

        return load_verdict(self.config.journal_dir)
